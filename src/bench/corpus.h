#ifndef CSXA_BENCH_CORPUS_H_
#define CSXA_BENCH_CORPUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace csxa::bench {

/// Deterministic, seeded corpus generator in the shape of the paper's
/// Table 2 datasets plus adversarial families, so every optimization is
/// measured against workloads it could actually lose on — not one hand-
/// built 21 KB document. Same spec → byte-identical corpus, on any
/// platform (the generator uses its own splitmix64, never libc rand), so
/// benchmarks, property tests and the load harness all reproduce exactly.
enum class CorpusFamily : uint8_t {
  /// Hospital records (Table 2): deep repeated folders — bulky protected
  /// administrative islets, medical acts with rare Protocol needles,
  /// trailing Clearance evidence guarding each folder's dominant subtree.
  kHospital,
  /// WSU course catalog (Table 2): wide and flat — thousands of small
  /// sibling records with one-line fields, a rare bulky Footnote, and a
  /// Credit field placed after Title so guarded rules buffer pending parts.
  kWsu,
  /// Sigmod Record bibliography (Table 2): issues holding article lists
  /// with author sub-lists; trailing per-issue Scope evidence.
  kSigmod,
  /// Adversarial: one long spine of nested sections per record — stresses
  /// checkpoint depth, the navigator frame stack and O(depth) seeks.
  kDeepNest,
  /// Adversarial: every case's dominant Body guarded by evidence that
  /// arrives only after it, with nested per-paragraph guards — the
  /// pending-buffer/deferral storm.
  kPredicateStorm,
  /// Adversarial: skip-hostile flat prose where almost everything is
  /// granted — the workload where stream-all must win and skip machinery
  /// must cost (almost) nothing.
  kFlatText,
};

const char* FamilyName(CorpusFamily family);
Result<CorpusFamily> ParseFamily(std::string_view name);
/// All six families; the paper's Table 2 shapes are the first three.
std::vector<CorpusFamily> AllFamilies();
std::vector<CorpusFamily> PaperFamilies();

/// The matched rule-set families every corpus ships with.
enum class RuleFamily : uint8_t {
  kClosedWorld,     ///< Child-axis grants only: size fields alone prune.
  kNeedle,          ///< One descendant-axis grant of a rare tag: bitmap work.
  kGuarded,         ///< Predicate whose evidence trails the guarded subtree.
  kPredicateHeavy,  ///< Mixed signs, re-grants inside denials, comparisons.
};

const char* RuleFamilyName(RuleFamily family);
std::vector<RuleFamily> AllRuleFamilies();

struct CorpusSpec {
  CorpusFamily family = CorpusFamily::kHospital;
  /// Content seed: bumping it yields a same-shape, different-content
  /// corpus — the load harness derives version v's content from seed + v.
  uint64_t seed = 1;
  /// Generation appends whole records until the document reaches this size
  /// (so the actual size overshoots by at most one record).
  uint64_t target_bytes = 1 << 20;
  /// Element nesting depth of kDeepNest records; 0 = family default (48).
  /// Ignored by the other families (their depth is part of the shape).
  uint32_t depth = 0;
};

struct Corpus {
  CorpusSpec spec;
  std::string xml;
  uint64_t records = 0;    ///< Top-level records generated.
  uint32_t max_depth = 0;  ///< Deepest element nesting in the document.
};

/// Pure synthesis — cannot fail; same spec yields byte-identical output.
Corpus GenerateCorpus(const CorpusSpec& spec);

/// What StreamCorpus learned while emitting (everything Corpus carries
/// except the bytes themselves).
struct CorpusSummary {
  CorpusSpec spec;
  uint64_t total_bytes = 0;
  uint64_t records = 0;
  uint32_t max_depth = 0;
};

/// Bounded piece of corpus text, in document order. Pieces are whole
/// syntactic units (the root open tag, one record, the closing material),
/// never a split tag.
using CorpusSink = std::function<void(std::string_view piece)>;

/// Streaming synthesis: emits the same bytes GenerateCorpus would — in
/// record-sized pieces through `sink` — while holding only one record in
/// memory. This is how soak-scale corpora reach a file or a SAX parser
/// without a gigabyte string in between; GenerateCorpus is now the
/// degenerate sink that concatenates.
CorpusSummary StreamCorpus(const CorpusSpec& spec, const CorpusSink& sink);

/// The rule set of `rules` matched to `family`'s tag vocabulary.
/// `extra_absent_rules` appends that many descendant-axis grants of tags
/// absent from the corpus — the rule-set-size axis of the paper's
/// complexity experiment (the automata grow, the view must not change).
std::string RulesFor(CorpusFamily family, RuleFamily rules,
                     int extra_absent_rules = 0);

}  // namespace csxa::bench

#endif  // CSXA_BENCH_CORPUS_H_
