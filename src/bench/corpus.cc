#include "bench/corpus.h"

#include <algorithm>

namespace csxa::bench {

namespace {

/// splitmix64: tiny, seedable, identical on every platform. The corpus
/// must be a pure function of the spec — libc rand() is neither.
struct Rng {
  uint64_t state;

  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }
};

const char* const kLexicon[] = {
    "amoxicillin", "baseline",  "cardiology", "dosage",    "episodic",
    "followup",    "gradual",   "hematology", "interim",   "juncture",
    "kinetics",    "lab",       "margin",     "nominal",   "oncology",
    "protocol",    "quarterly", "renal",      "screening", "titration",
    "uptake",      "vitals",    "watchful",   "xenograft", "yield",
    "zone",        "acute",     "benign",     "chronic",   "diffuse",
};
constexpr size_t kLexiconSize = sizeof(kLexicon) / sizeof(kLexicon[0]);

std::string Words(Rng* rng, int n) {
  std::string s;
  for (int i = 0; i < n; ++i) {
    if (i > 0) s += ' ';
    s += kLexicon[rng->Below(kLexiconSize)];
  }
  return s;
}

std::string Name(Rng* rng) {
  const char* const names[] = {"alva",  "bodin", "chen",  "doyle", "eriks",
                               "fujii", "garza", "haley", "iwata", "joule"};
  return names[rng->Below(10)];
}

std::string Tagged(const std::string& tag, const std::string& text) {
  return "<" + tag + ">" + text + "</" + tag + ">";
}

// --- Family record builders ----------------------------------------------
// Each appends one top-level record to *xml; generation loops records until
// the target size is reached, so corpus size scales by record count while
// the shape (and thus the per-record rule semantics) stays fixed.

void HospitalRecord(Rng* rng, uint64_t f, std::string* xml) {
  *xml += "<Folder><Admin>";
  *xml += Tagged("Name", Name(rng) + "-" + std::to_string(f));
  *xml += Tagged("SSN", std::to_string(100000000 + rng->Below(900000000)));
  *xml += Tagged("Insurance", Words(rng, 14));
  *xml += "<Billing>";
  for (int b = 0; b < 3; ++b) *xml += Tagged("Item", Words(rng, 7));
  *xml += "</Billing></Admin><MedActs>";
  for (int c = 0; c < 3; ++c) {
    *xml += "<Consult>";
    *xml += Tagged("Date", "2004-0" + std::to_string(1 + rng->Below(9)) +
                               "-" + std::to_string(10 + rng->Below(18)));
    *xml += Tagged("Diagnostic", Words(rng, 6));
    // The protected islet: a rare tag deep inside mostly-denied bulk.
    if (rng->Chance(1, 8)) *xml += Tagged("Protocol", Words(rng, 4));
    *xml += Tagged("Prescription", "rx-" + std::to_string(rng->Below(9999)) +
                                       " " + Words(rng, 3));
    *xml += "</Consult>";
  }
  for (int a = 0; a < 2; ++a) {
    std::string type = Tagged("Type", rng->Chance(1, 3) ? "G3" : "G2");
    std::string chol =
        Tagged("Cholesterol", std::to_string(150 + 10 * rng->Below(12)));
    std::string comments = Tagged("Comments", Words(rng, 9));
    // Type after Comments half the time: the comparison predicate stays
    // pending across the comments, which must be buffered as parts.
    *xml += "<Analysis>";
    *xml += rng->Chance(1, 2) ? type + chol + comments
                              : comments + chol + type;
    *xml += "</Analysis>";
  }
  *xml += "</MedActs>";
  // Evidence after the bulk it guards — the deferral workload.
  *xml += Tagged("Clearance", rng->Chance(1, 2) ? "open" : "closed");
  *xml += "</Folder>";
}

void WsuRecord(Rng* rng, uint64_t i, std::string* xml) {
  *xml += "<Course>";
  *xml += Tagged("Sln", std::to_string(1000 + i));
  *xml += Tagged("Prefix", rng->Chance(1, 2) ? "CS" : "EE");
  *xml += Tagged("Num", std::to_string(100 + rng->Below(500)));
  *xml += Tagged("Title", Words(rng, 4));
  *xml += Tagged("Instructor", Name(rng));
  *xml += Tagged("Days", rng->Chance(1, 2) ? "MWF" : "TTH");
  *xml += "<Place>";
  *xml += Tagged("Bldg", Words(rng, 1));
  *xml += Tagged("Room", std::to_string(100 + rng->Below(300)));
  *xml += "</Place>";
  // Credit *after* Title/Instructor: [Credit = 4] guards already-seen parts.
  *xml += Tagged("Credit", std::to_string(1 + rng->Below(4)));
  // The rare bulky subtree the needle rule hunts.
  if (rng->Chance(1, 12)) *xml += Tagged("Footnote", Words(rng, 24));
  *xml += "</Course>";
}

void SigmodRecord(Rng* rng, uint64_t i, std::string* xml) {
  *xml += "<Issue>";
  *xml += Tagged("Volume", std::to_string(11 + i / 4));
  *xml += Tagged("Number", std::to_string(1 + i % 4));
  *xml += "<Articles>";
  const int articles = 2 + static_cast<int>(rng->Below(3));
  int page = 1;
  for (int a = 0; a < articles; ++a) {
    *xml += "<Article>";
    *xml += Tagged("Title", Words(rng, 6));
    *xml += Tagged("InitPage", std::to_string(page));
    page += 1 + static_cast<int>(rng->Below(30));
    *xml += Tagged("EndPage", std::to_string(page - 1));
    *xml += "<Authors>";
    const int authors = 1 + static_cast<int>(rng->Below(3));
    for (int u = 0; u < authors; ++u) *xml += Tagged("Author", Name(rng));
    *xml += "</Authors>";
    if (rng->Chance(1, 3)) *xml += Tagged("Abstract", Words(rng, 28));
    *xml += "</Article>";
  }
  *xml += "</Articles>";
  *xml += Tagged("Scope", rng->Chance(2, 3) ? "public" : "internal");
  *xml += "</Issue>";
}

void DeepNestRecord(Rng* rng, uint32_t depth, std::string* xml) {
  *xml += "<Tree>";
  *xml += Tagged("Meta", Words(rng, 5));
  for (uint32_t d = 0; d < depth; ++d) {
    *xml += "<S>";
    *xml += Tagged("Label", rng->Chance(1, 16) ? "zzsecret"
                                               : Words(rng, 1));
  }
  *xml += Tagged("Leaf", Words(rng, 6));
  for (uint32_t d = 0; d < depth; ++d) *xml += "</S>";
  *xml += Tagged("Key", rng->Chance(1, 2) ? "open" : "closed");
  *xml += "</Tree>";
}

void PredicateStormRecord(Rng* rng, std::string* xml) {
  *xml += "<Case><Body>";
  const int paras = 3 + static_cast<int>(rng->Below(3));
  for (int p = 0; p < paras; ++p) {
    *xml += "<Para>";
    *xml += Tagged("Text", Words(rng, 12));
    if (rng->Chance(1, 5)) *xml += Tagged("Cite", Words(rng, 3));
    // Per-paragraph evidence after the paragraph's content: nested
    // pendings inside a pending Body.
    *xml += Tagged("Flag", rng->Chance(1, 4) ? "hot" : "cold");
    *xml += "</Para>";
  }
  *xml += "</Body>";
  *xml += Tagged("Verdict", rng->Chance(1, 2) ? "grant" : "deny");
  *xml += "</Case>";
}

void FlatTextRecord(Rng* rng, uint64_t i, std::string* xml) {
  if (i % 64 == 63) {
    *xml += Tagged("Note", Words(rng, 8));
    return;
  }
  *xml += "<P>";
  *xml += Words(rng, 18);
  *xml += Tagged("K", rng->Chance(1, 6) ? "d" : "f");
  *xml += "</P>";
}

const char* RootTag(CorpusFamily family) {
  switch (family) {
    case CorpusFamily::kHospital: return "Hospital";
    case CorpusFamily::kWsu: return "Catalog";
    case CorpusFamily::kSigmod: return "SigmodRecord";
    case CorpusFamily::kDeepNest: return "Deep";
    case CorpusFamily::kPredicateStorm: return "Docket";
    case CorpusFamily::kFlatText: return "Text";
  }
  return "Doc";
}

/// Incremental element-depth scanner: pieces are whole syntactic units
/// (no tag straddles a boundary), so carrying the open-element depth
/// across pieces reproduces exactly what one pass over the concatenation
/// would compute.
struct DepthScanner {
  uint32_t depth = 0;
  uint32_t max_depth = 0;

  void Scan(std::string_view piece) {
    for (size_t i = 0; i + 1 < piece.size(); ++i) {
      if (piece[i] != '<') continue;
      if (piece[i + 1] == '/') {
        if (depth > 0) --depth;
      } else {
        max_depth = std::max(max_depth, ++depth);
      }
    }
  }
};

}  // namespace

const char* FamilyName(CorpusFamily family) {
  switch (family) {
    case CorpusFamily::kHospital: return "hospital";
    case CorpusFamily::kWsu: return "wsu";
    case CorpusFamily::kSigmod: return "sigmod";
    case CorpusFamily::kDeepNest: return "deep_nest";
    case CorpusFamily::kPredicateStorm: return "predicate_storm";
    case CorpusFamily::kFlatText: return "flat_text";
  }
  return "?";
}

Result<CorpusFamily> ParseFamily(std::string_view name) {
  for (CorpusFamily family : AllFamilies()) {
    if (name == FamilyName(family)) return family;
  }
  return Status::InvalidArgument("unknown corpus family: " +
                                 std::string(name));
}

std::vector<CorpusFamily> AllFamilies() {
  return {CorpusFamily::kHospital,       CorpusFamily::kWsu,
          CorpusFamily::kSigmod,         CorpusFamily::kDeepNest,
          CorpusFamily::kPredicateStorm, CorpusFamily::kFlatText};
}

std::vector<CorpusFamily> PaperFamilies() {
  return {CorpusFamily::kHospital, CorpusFamily::kWsu, CorpusFamily::kSigmod};
}

const char* RuleFamilyName(RuleFamily family) {
  switch (family) {
    case RuleFamily::kClosedWorld: return "closed_world";
    case RuleFamily::kNeedle: return "needle";
    case RuleFamily::kGuarded: return "guarded";
    case RuleFamily::kPredicateHeavy: return "predicate_heavy";
  }
  return "?";
}

std::vector<RuleFamily> AllRuleFamilies() {
  return {RuleFamily::kClosedWorld, RuleFamily::kNeedle, RuleFamily::kGuarded,
          RuleFamily::kPredicateHeavy};
}

CorpusSummary StreamCorpus(const CorpusSpec& spec, const CorpusSink& sink) {
  CorpusSummary summary;
  summary.spec = spec;
  // Mix the family into the seed so two families at one seed do not share
  // a record stream shape-by-accident.
  Rng rng{spec.seed * 0x100000001b3ULL +
          static_cast<uint64_t>(spec.family) * 0x9e3779b9ULL};
  const uint32_t depth = spec.depth != 0 ? spec.depth : 48;

  DepthScanner scanner;
  std::string piece;
  auto flush = [&]() {
    summary.total_bytes += piece.size();
    scanner.Scan(piece);
    sink(piece);
    piece.clear();
  };

  piece += "<";
  piece += RootTag(spec.family);
  piece += ">";
  flush();
  const std::string closing =
      std::string("</") + RootTag(spec.family) + ">";
  // kFlatText's guarded rule needs its evidence as the *last* child, so
  // its record loop stops one Lang element short of the target.
  const uint64_t reserve =
      closing.size() +
      (spec.family == CorpusFamily::kFlatText ? 16 : 0);
  while (summary.total_bytes + reserve < spec.target_bytes ||
         summary.records == 0) {
    switch (spec.family) {
      case CorpusFamily::kHospital:
        HospitalRecord(&rng, summary.records, &piece);
        break;
      case CorpusFamily::kWsu:
        WsuRecord(&rng, summary.records, &piece);
        break;
      case CorpusFamily::kSigmod:
        SigmodRecord(&rng, summary.records, &piece);
        break;
      case CorpusFamily::kDeepNest:
        DeepNestRecord(&rng, depth, &piece);
        break;
      case CorpusFamily::kPredicateStorm:
        PredicateStormRecord(&rng, &piece);
        break;
      case CorpusFamily::kFlatText:
        FlatTextRecord(&rng, summary.records, &piece);
        break;
    }
    ++summary.records;
    flush();
  }
  if (spec.family == CorpusFamily::kFlatText) {
    // Root-level evidence after every paragraph: the guarded rule set
    // holds the entire document pending until its very last element.
    piece += Tagged("Lang", "en");
  }
  piece += closing;
  flush();
  summary.max_depth = scanner.max_depth;
  return summary;
}

Corpus GenerateCorpus(const CorpusSpec& spec) {
  Corpus corpus;
  corpus.xml.reserve(spec.target_bytes + 4096);
  CorpusSummary summary = StreamCorpus(spec, [&corpus](std::string_view p) {
    corpus.xml.append(p.data(), p.size());
  });
  corpus.spec = summary.spec;
  corpus.records = summary.records;
  corpus.max_depth = summary.max_depth;
  return corpus;
}

std::string RulesFor(CorpusFamily family, RuleFamily rules,
                     int extra_absent_rules) {
  std::string text;
  switch (family) {
    case CorpusFamily::kHospital:
      switch (rules) {
        case RuleFamily::kClosedWorld:
          text = "+ /Hospital/Folder/MedActs\n";
          break;
        case RuleFamily::kNeedle:
          text = "+ //Protocol\n";
          break;
        case RuleFamily::kGuarded:
          text = "+ /Hospital/Folder[Clearance = open]/MedActs\n";
          break;
        case RuleFamily::kPredicateHeavy:
          text =
              "+ /Hospital/Folder\n"
              "- /Hospital/Folder/Admin\n"
              "+ /Hospital/Folder/Admin/Name\n"
              "- //Analysis[Type = G3]/Comments\n";
          break;
      }
      break;
    case CorpusFamily::kWsu:
      switch (rules) {
        case RuleFamily::kClosedWorld:
          text = "+ /Catalog/Course/Title\n+ /Catalog/Course/Instructor\n";
          break;
        case RuleFamily::kNeedle:
          text = "+ //Footnote\n";
          break;
        case RuleFamily::kGuarded:
          text = "+ /Catalog/Course[Credit = 4]/Title\n";
          break;
        case RuleFamily::kPredicateHeavy:
          text =
              "+ /Catalog/Course\n"
              "- /Catalog/Course/Footnote\n"
              "+ //Course[Credit = 3]/Footnote\n"
              "- /Catalog/Course/Sln\n";
          break;
      }
      break;
    case CorpusFamily::kSigmod:
      switch (rules) {
        case RuleFamily::kClosedWorld:
          text = "+ /SigmodRecord/Issue/Articles\n";
          break;
        case RuleFamily::kNeedle:
          text = "+ //Author\n";
          break;
        case RuleFamily::kGuarded:
          text = "+ /SigmodRecord/Issue[Scope = public]/Articles\n";
          break;
        case RuleFamily::kPredicateHeavy:
          text =
              "+ /SigmodRecord/Issue\n"
              "- //Article/Abstract\n"
              "+ //Article[InitPage = 1]/Abstract\n";
          break;
      }
      break;
    case CorpusFamily::kDeepNest:
      switch (rules) {
        case RuleFamily::kClosedWorld:
          text = "+ /Deep/Tree/Meta\n";
          break;
        case RuleFamily::kNeedle:
          text = "+ //Leaf\n";
          break;
        case RuleFamily::kGuarded:
          text = "+ /Deep/Tree[Key = open]/S\n";
          break;
        case RuleFamily::kPredicateHeavy:
          text =
              "+ /Deep/Tree\n"
              "- //S[Label = zzsecret]\n";
          break;
      }
      break;
    case CorpusFamily::kPredicateStorm:
      switch (rules) {
        case RuleFamily::kClosedWorld:
          text = "+ /Docket/Case/Body\n";
          break;
        case RuleFamily::kNeedle:
          text = "+ //Cite\n";
          break;
        case RuleFamily::kGuarded:
          text = "+ /Docket/Case[Verdict = grant]/Body\n";
          break;
        case RuleFamily::kPredicateHeavy:
          text =
              "+ /Docket/Case[Verdict = grant]/Body\n"
              "- //Para[Flag = hot]\n"
              "+ //Para[Flag = hot]/Cite\n";
          break;
      }
      break;
    case CorpusFamily::kFlatText:
      switch (rules) {
        case RuleFamily::kClosedWorld:
          text = "+ /Text/P\n";
          break;
        case RuleFamily::kNeedle:
          text = "+ //Note\n";
          break;
        case RuleFamily::kGuarded:
          text = "+ /Text[Lang = en]/P\n";
          break;
        case RuleFamily::kPredicateHeavy:
          text = "+ /Text/P\n- //P[K = d]\n";
          break;
      }
      break;
  }
  for (int i = 0; i < extra_absent_rules; ++i) {
    text += "+ //AbsentTag" + std::to_string(i) + "\n";
  }
  return text;
}

}  // namespace csxa::bench
