#include "bench/load_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "net/fault_proxy.h"
#include "net/remote_source.h"
#include "net/terminal_server.h"
#include "pipeline/secure_pipeline.h"
#include "server/document_service.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace csxa::bench {

namespace {

/// Same splitmix64 as the corpus generator: worker schedules must be a
/// pure function of (seed, thread) so two runs differ only by OS timing.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

crypto::TripleDes::Key LoadKey(uint64_t seed) {
  crypto::TripleDes::Key key{};
  Rng rng{seed ^ 0x5ca1ab1eULL};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(rng.Next());
  }
  return key;
}

/// The single-session reference: a direct SAX pass over the plaintext
/// through the same evaluator/serializer — no store, no crypto, no
/// concurrency. What every served view is byte-checked against.
Result<std::string> DirectView(const std::string& xml,
                               const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CSXA_RETURN_NOT_OK(xml::SaxParser::Parse(xml, &eval));
  CSXA_RETURN_NOT_OK(eval.Finish());
  return ser.output();
}

/// Role ranks ordered by intended popularity: the cheap read-mostly roles
/// dominate (needle, closed world), the expensive predicate roles tail.
const RuleFamily kRoleByRank[] = {
    RuleFamily::kNeedle, RuleFamily::kClosedWorld, RuleFamily::kGuarded,
    RuleFamily::kPredicateHeavy};
constexpr int kRoles = 4;

/// Zipf-ish sampler over the 4 role ranks: P(rank r) ∝ 1/(r+1)^s.
struct ZipfRoles {
  double cumulative[kRoles];

  explicit ZipfRoles(double s) {
    double total = 0;
    for (int r = 0; r < kRoles; ++r) total += 1.0 / std::pow(r + 1, s);
    double acc = 0;
    for (int r = 0; r < kRoles; ++r) {
      acc += 1.0 / std::pow(r + 1, s) / total;
      cumulative[r] = acc;
    }
    cumulative[kRoles - 1] = 1.0;
  }
  int Pick(Rng* rng) const {
    const double u =
        static_cast<double>(rng->Below(1u << 30)) / (1u << 30);
    for (int r = 0; r < kRoles; ++r) {
      if (u < cumulative[r]) return r;
    }
    return kRoles - 1;
  }
};

uint64_t Percentile(const std::vector<uint64_t>& sorted, int p) {
  if (sorted.empty()) return 0;
  const size_t idx = (sorted.size() - 1) * static_cast<size_t>(p) / 100;
  return sorted[idx];
}

void AppendField(std::string* out, const char* name, uint64_t v,
                 bool comma = true) {
  *out += std::string("\"") + name + "\": " + std::to_string(v);
  if (comma) *out += ", ";
}

}  // namespace

uint64_t ReadPeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

Result<LoadReport> RunLoad(const LoadConfig& config) {
  if (config.families.empty() || config.threads <= 0 ||
      config.serves_per_thread <= 0) {
    return Status::InvalidArgument("load config needs families and threads");
  }
  const int versions = config.version_bumps + 1;

  // ---- Publish phase: corpora, references, version 0 -------------------
  struct Doc {
    std::string id;
    CorpusFamily family;
    std::vector<std::string> version_xml;  ///< [version]
    uint64_t max_depth = 0;
    std::vector<access::AccessRule> roles[kRoles];
    /// views[version][role]: the single-session reference matrix.
    std::vector<std::vector<std::string>> views;
  };
  std::vector<Doc> docs;
  server::DocumentService service;
  for (CorpusFamily family : config.families) {
    Doc doc;
    doc.id = FamilyName(family);
    doc.family = family;
    for (int v = 0; v < versions; ++v) {
      Corpus corpus = GenerateCorpus(
          {family, config.seed + static_cast<uint64_t>(v),
           config.target_bytes, /*depth=*/0});
      if (v == 0) doc.max_depth = corpus.max_depth;
      doc.version_xml.push_back(std::move(corpus.xml));
    }
    for (int r = 0; r < kRoles; ++r) {
      CSXA_ASSIGN_OR_RETURN(
          doc.roles[r],
          access::ParseRuleList(RulesFor(family, kRoleByRank[r])));
    }
    doc.views.resize(versions);
    for (int v = 0; v < versions; ++v) {
      for (int r = 0; r < kRoles; ++r) {
        CSXA_ASSIGN_OR_RETURN(std::string view,
                              DirectView(doc.version_xml[v], doc.roles[r]));
        doc.views[v].push_back(std::move(view));
      }
    }
    server::DocumentConfig cfg;
    cfg.variant = config.variant;
    cfg.layout = config.layout;
    cfg.key = LoadKey(config.seed);
    cfg.shared_cache_capacity = config.shared_cache_capacity;
    cfg.backend = config.backend;
    CSXA_RETURN_NOT_OK(service.Publish(doc.id, doc.version_xml[0], cfg));
    docs.push_back(std::move(doc));
  }

  // ---- Remote transport: a real TCP boundary under every serve ---------
  // The terminal server exposes the same live entries the in-process path
  // reads; the proxy (when weather is requested) sits between it and each
  // document's RemoteBatchSource. Geometry, keys and the shared digest
  // cache stay local, so nothing the wire mangles can change what a serve
  // will accept — only whether it completes.
  const bool faults_active = config.remote && config.fault_count > 0;
  std::unique_ptr<net::TerminalServer> terminal;
  std::unique_ptr<net::FaultProxy> proxy;
  if (config.remote) {
    terminal = std::make_unique<net::TerminalServer>();
    for (const Doc& doc : docs) {
      CSXA_ASSIGN_OR_RETURN(auto link, service.TerminalLink(doc.id));
      terminal->RegisterDocument(doc.id, std::move(link));
    }
    CSXA_RETURN_NOT_OK(terminal->Start());
    uint16_t attach_port = terminal->port();
    if (faults_active || config.rtt_ns > 0) {
      net::FaultProxy::Options popts;
      popts.upstream_port = terminal->port();
      popts.rtt_ns = config.rtt_ns;
      if (faults_active) {
        popts.program = net::FaultProxy::SeededProgram(
            config.fault_seed, config.fault_count, config.fault_horizon);
      }
      proxy = std::make_unique<net::FaultProxy>(std::move(popts));
      CSXA_RETURN_NOT_OK(proxy->Start());
      attach_port = proxy->port();
    }
    for (size_t d = 0; d < docs.size(); ++d) {
      net::RemoteBatchSource::Options ropts;
      ropts.port = attach_port;
      ropts.doc_id = docs[d].id;
      ropts.deadline_ns = 1'000'000'000;
      ropts.max_attempts = 6;
      ropts.backoff_initial_ns = 1'000'000;
      ropts.backoff_max_ns = 50'000'000;
      ropts.jitter_seed = config.seed * 1000003ULL + d;
      CSXA_RETURN_NOT_OK(service.AttachTransport(
          docs[d].id, std::make_shared<net::RemoteBatchSource>(ropts)));
    }
  }

  // ---- Racing phase: worker pool vs churn thread -----------------------
  // Cross-thread results: scalar tallies are atomics; everything that
  // cannot be (the latency samples, the per-document breakdowns) lives
  // behind one annotated mutex, so the clang thread-safety job proves no
  // worker touches a vector without it.
  struct RaceCounters {
    Mutex mu;
    std::vector<uint64_t> latencies CSXA_GUARDED_BY(mu);
    std::vector<uint64_t> doc_completed CSXA_GUARDED_BY(mu);
    std::vector<uint64_t> doc_rejections CSXA_GUARDED_BY(mu);
    std::atomic<uint64_t> attempted{0}, completed{0}, rejections{0};
    std::atomic<uint64_t> wrong_errors{0}, mismatches{0}, wire_total{0};
    std::atomic<uint64_t> decrypt_bytes{0}, decrypt_ns{0};
    std::atomic<uint64_t> hash_bytes{0}, hash_ns{0}, fetched_bytes{0};
    std::atomic<uint64_t> retries{0}, reconnects{0}, transport_rejected{0};
  } race;
  {
    MutexLock lock(&race.mu);
    race.doc_completed.assign(docs.size(), 0);
    race.doc_rejections.assign(docs.size(), 0);
  }
  const ZipfRoles zipf(config.zipf_s);

  auto serve_once = [&](size_t d, int role, uint64_t budget,
                        bool racing) {
    Doc& doc = docs[d];
    pipeline::ServeOptions opts;
    opts.pending_buffer_budget = budget;
    race.attempted.fetch_add(1);
    const uint64_t t0 = NowNs();
    auto report = service.Serve(doc.id, doc.roles[role], opts);
    const uint64_t dt = NowNs() - t0;
    if (report.ok()) {
      race.completed.fetch_add(1);
      race.wire_total.fetch_add(report.value().wire_bytes);
      race.decrypt_bytes.fetch_add(report.value().soe.bytes_decrypted +
                              report.value().soe.digest_bytes_decrypted);
      race.decrypt_ns.fetch_add(report.value().soe.decrypt_ns);
      race.hash_bytes.fetch_add(report.value().soe.bytes_hashed);
      race.hash_ns.fetch_add(report.value().soe.hash_ns);
      race.fetched_bytes.fetch_add(report.value().bytes_fetched);
      race.retries.fetch_add(report.value().retries);
      race.reconnects.fetch_add(report.value().reconnects);
      bool known = false;
      for (int v = 0; v < versions && !known; ++v) {
        known = report.value().view == doc.views[v][role];
      }
      MutexLock lock(&race.mu);
      race.latencies.push_back(dt);
      race.doc_completed[d]++;
      if (!known) race.mismatches.fetch_add(1);
    } else if ((racing || faults_active) &&
               report.status().code() == StatusCode::kIntegrityError) {
      // A bump raced this serve — or a tampering-class fault (truncated /
      // corrupted frame) hit it: failing closed is the contract.
      race.rejections.fetch_add(1);
      MutexLock lock(&race.mu);
      race.doc_rejections[d]++;
    } else if (faults_active &&
               (report.status().code() == StatusCode::kUnavailable ||
                report.status().code() == StatusCode::kDeadlineExceeded)) {
      // Programmed weather outlasted the retry ladder: a typed transport
      // failure is the contracted outcome, never a view.
      race.transport_rejected.fetch_add(1);
    } else {
      // Outside a race, or with a non-integrity code, a failure is a bug.
      // Surface the first offending status: a wrong-class count alone is
      // undiagnosable once the run ends.
      if (race.wrong_errors.fetch_add(1) == 0) {
        MutexLock lock(&race.mu);
        std::fprintf(stderr, "load: wrong-class failure: %s\n",
                     report.status().ToString().c_str());
      }
    }
  };

  const uint64_t wall0 = NowNs();
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng{config.seed * 31 + static_cast<uint64_t>(t) * 7919};
      for (int i = 0; i < config.serves_per_thread; ++i) {
        const size_t d = rng.Below(docs.size());
        const int role = zipf.Pick(&rng);
        // Every third serve runs under a tight deferral budget, mixing
        // the skip-now-reread-later strategy into the traffic.
        const uint64_t budget =
            rng.Below(3) == 0 ? uint64_t{4096} : UINT64_MAX;
        serve_once(d, role, budget, /*racing=*/true);
      }
    });
  }
  std::thread churn([&]() {
    // Spread the bumps across the racing phase so early and late serves
    // see different versions; failures here are programming errors, not
    // load outcomes, so they surface as race.wrong_errors.
    for (int v = 1; v < versions; ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      for (Doc& doc : docs) {
        if (!service.Update(doc.id, doc.version_xml[v]).ok()) {
          race.wrong_errors.fetch_add(1);
        }
      }
    }
  });
  for (std::thread& w : workers) w.join();
  churn.join();

  // ---- Warm sweep: deterministic, single-threaded, final version -------
  if (config.warm_sweep) {
    for (size_t d = 0; d < docs.size(); ++d) {
      for (int r = 0; r < kRoles; ++r) {
        serve_once(d, r, UINT64_MAX, /*racing=*/false);
        serve_once(d, r, UINT64_MAX, /*racing=*/false);
      }
    }
  }
  const uint64_t wall = NowNs() - wall0;

  // ---- Remote teardown (before reporting, so fault tallies are final) --
  uint64_t faults_fired = 0;
  if (proxy != nullptr) {
    faults_fired = proxy->faults_fired();
    proxy->Stop();
  }
  if (terminal != nullptr) terminal->Stop();
  if (config.remote) {
    // Detaching releases each RemoteBatchSource, joining its reader.
    for (const Doc& doc : docs) {
      CSXA_RETURN_NOT_OK(service.AttachTransport(doc.id, nullptr));
    }
  }

  // ---- Report ----------------------------------------------------------
  // Workers and churn are joined; the lock is uncontended but still taken
  // so the guarded vectors' single reader is the one the analysis proves.
  MutexLock report_lock(&race.mu);
  LoadReport report;
  report.corpus_bytes = config.target_bytes;
  report.threads = config.threads;
  report.serves_per_thread = config.serves_per_thread;
  report.version_bumps = config.version_bumps;
  report.serves_attempted = race.attempted.load();
  report.serves_completed = race.completed.load();
  report.integrity_rejections = race.rejections.load();
  report.wrong_errors = race.wrong_errors.load();
  report.view_mismatches = race.mismatches.load();
  report.remote = config.remote;
  report.rtt_ns = config.rtt_ns;
  report.transport_retries = race.retries.load();
  report.transport_reconnects = race.reconnects.load();
  report.transport_rejections = race.transport_rejected.load();
  report.faults_programmed = faults_active ? config.fault_count : 0;
  report.faults_fired = faults_fired;
  report.wall_ns = wall;
  report.serves_per_sec =
      wall == 0 ? 0.0
                : static_cast<double>(race.completed.load()) * 1e9 /
                      static_cast<double>(wall);
  std::sort(race.latencies.begin(), race.latencies.end());
  report.p50_ns = Percentile(race.latencies, 50);
  report.p95_ns = Percentile(race.latencies, 95);
  report.p99_ns = Percentile(race.latencies, 99);
  report.wire_bytes_total = race.wire_total.load();
  report.peak_rss_kb = ReadPeakRssKb();
  report.backend = crypto::CipherBackendKindName(config.backend);
  report.backend_hardware =
      crypto::CipherBackendHardwareAccelerated(config.backend);
  report.hash_impl = crypto::Sha1::ImplementationName();
  auto mb_s = [](uint64_t bytes, uint64_t ns) {
    return ns == 0 ? 0.0
                   : static_cast<double>(bytes) * 1e9 /
                         (static_cast<double>(ns) * 1e6);
  };
  report.decrypt_mb_s = mb_s(race.decrypt_bytes.load(), race.decrypt_ns.load());
  report.hash_mb_s = mb_s(race.hash_bytes.load(), race.hash_ns.load());
  report.serve_mb_s = mb_s(race.fetched_bytes.load(), wall);

  uint64_t hits = 0, misses = 0;
  for (size_t d = 0; d < docs.size(); ++d) {
    LoadReport::DocReport dr;
    dr.family = docs[d].id;
    dr.document_bytes = docs[d].version_xml[0].size();
    dr.max_depth = docs[d].max_depth;
    dr.serves_completed = race.doc_completed[d];
    dr.integrity_rejections = race.doc_rejections[d];
    auto version = service.CurrentVersion(docs[d].id);
    dr.versions = version.ok() ? version.value() + 1 : 0;
    auto stats = service.CacheStats(docs[d].id);
    if (stats.ok()) {
      dr.cache = stats.value();
      hits += dr.cache.bare_hits;
      misses += dr.cache.misses;
    }
    report.docs.push_back(std::move(dr));
  }
  report.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return report;
}

void LoadReport::AppendJson(std::string* out,
                            const std::string& indent) const {
  char buf[128];
  *out += "{\n" + indent + "  ";
  AppendField(out, "corpus_bytes", corpus_bytes);
  AppendField(out, "threads", static_cast<uint64_t>(threads));
  AppendField(out, "serves_per_thread",
              static_cast<uint64_t>(serves_per_thread));
  AppendField(out, "version_bumps", static_cast<uint64_t>(version_bumps),
              false);
  *out += ",\n" + indent + "  ";
  AppendField(out, "serves_attempted", serves_attempted);
  AppendField(out, "serves_completed", serves_completed);
  AppendField(out, "integrity_rejections", integrity_rejections);
  AppendField(out, "wrong_errors", wrong_errors);
  AppendField(out, "view_mismatches", view_mismatches, false);
  *out += ",\n" + indent + "  ";
  *out += std::string("\"remote\": ") + (remote ? "true" : "false") + ", ";
  AppendField(out, "rtt_ns", rtt_ns);
  AppendField(out, "transport_retries", transport_retries);
  AppendField(out, "transport_reconnects", transport_reconnects);
  AppendField(out, "transport_rejections", transport_rejections);
  AppendField(out, "faults_programmed", faults_programmed);
  AppendField(out, "faults_fired", faults_fired, false);
  *out += ",\n" + indent + "  ";
  AppendField(out, "wall_ns", wall_ns);
  std::snprintf(buf, sizeof(buf), "\"serves_per_sec\": %.2f, ",
                serves_per_sec);
  *out += buf;
  AppendField(out, "p50_ns", p50_ns);
  AppendField(out, "p95_ns", p95_ns);
  AppendField(out, "p99_ns", p99_ns, false);
  *out += ",\n" + indent + "  ";
  AppendField(out, "wire_bytes_total", wire_bytes_total);
  std::snprintf(buf, sizeof(buf), "\"cache_hit_rate\": %.3f, ",
                cache_hit_rate);
  *out += buf;
  AppendField(out, "peak_rss_kb", peak_rss_kb, false);
  *out += ",\n" + indent + "  ";
  *out += "\"backend\": \"" + backend + "\", ";
  *out += std::string("\"backend_hardware\": ") +
          (backend_hardware ? "true" : "false") + ", ";
  *out += "\"hash_impl\": \"" + hash_impl + "\", ";
  std::snprintf(buf, sizeof(buf),
                "\"decrypt_mb_s\": %.2f, \"hash_mb_s\": %.2f, "
                "\"serve_mb_s\": %.2f",
                decrypt_mb_s, hash_mb_s, serve_mb_s);
  *out += buf;
  *out += ",\n" + indent + "  \"documents\": [\n";
  for (size_t d = 0; d < docs.size(); ++d) {
    const DocReport& dr = docs[d];
    *out += indent + "    {\"family\": \"" + dr.family + "\", ";
    AppendField(out, "document_bytes", dr.document_bytes);
    AppendField(out, "max_depth", dr.max_depth);
    AppendField(out, "versions", dr.versions);
    AppendField(out, "serves_completed", dr.serves_completed);
    AppendField(out, "integrity_rejections", dr.integrity_rejections);
    AppendField(out, "cache_bare_hits", dr.cache.bare_hits);
    AppendField(out, "cache_misses", dr.cache.misses);
    AppendField(out, "cache_records", dr.cache.records);
    AppendField(out, "cache_evictions", dr.cache.evictions, false);
    *out += "}";
    *out += d + 1 < docs.size() ? ",\n" : "\n";
  }
  *out += indent + "  ]\n" + indent + "}";
}

}  // namespace csxa::bench
