#ifndef CSXA_BENCH_LOAD_HARNESS_H_
#define CSXA_BENCH_LOAD_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bench/corpus.h"
#include "common/status.h"
#include "crypto/digest_cache.h"
#include "crypto/secure_store.h"
#include "index/encoded_document.h"

namespace csxa::bench {

/// Service-level load harness: publishes one generated corpus per family
/// into a DocumentService, then drives a thread pool of mixed-role
/// sessions against it — role choice follows a Zipf-ish popularity curve
/// (a few roles dominate, as they do when millions of users collapse into
/// few roles) — while a churn thread races concurrent Update() version
/// bumps against the live serves. Every completed serve is byte-checked
/// against a single-session reference (a direct SAX pass over the
/// plaintext of *some published version*); every failed serve must be a
/// clean IntegrityError (a stale session failing closed mid-bump). Any
/// other outcome — a mismatched view, a crash-class error — is the
/// regression the harness exists to catch.
struct LoadConfig {
  std::vector<CorpusFamily> families = PaperFamilies();
  /// Per-document corpus size (each family gets its own document).
  uint64_t target_bytes = 1 << 20;
  uint64_t seed = 1;
  int threads = 8;
  int serves_per_thread = 3;
  /// Concurrent Update() bumps per document during the racing phase
  /// (version v's content derives from seed + v: same shape, new text).
  int version_bumps = 2;
  /// Zipf exponent of the role-popularity curve (0 = uniform).
  double zipf_s = 1.1;
  index::Variant variant = index::Variant::kTcsbr;
  crypto::ChunkLayout layout;  ///< Defaults match the bench (1024/64)...
  /// ...except the shared cache, sized for corpus-scale chunk counts.
  size_t shared_cache_capacity = 4096;
  /// Post-churn deterministic sweep (two serves per document × role) so
  /// the final version's shared-cache hit rate is schedule-independent —
  /// the gateable part of the cache economics.
  bool warm_sweep = true;
  /// Cipher backend every published document is encrypted under.
  crypto::CipherBackendKind backend = crypto::CipherBackendKind::k3Des;

  /// Remote transport mode: every serve reads its batches over a real TCP
  /// round trip — each document entry is registered on an in-process
  /// net::TerminalServer and re-attached through a net::RemoteBatchSource,
  /// optionally through a fault-injecting proxy. The serve contract widens
  /// only when faults are programmed: a serve may then also fail with the
  /// retryable transport classes (kUnavailable / kDeadlineExceeded) once
  /// the retry ladder runs dry — still typed, still never a wrong view.
  bool remote = false;
  uint64_t rtt_ns = 0;  ///< Injected round-trip time (0 = none).
  /// Seeded fault events programmed into the proxy (0 = clean pipe).
  uint64_t fault_count = 0;
  uint64_t fault_seed = 42;
  /// Response horizon the fault events are spread over.
  uint64_t fault_horizon = 96;
};

struct LoadReport {
  struct DocReport {
    std::string family;
    uint64_t document_bytes = 0;   ///< Version-0 corpus size.
    uint64_t max_depth = 0;
    uint32_t versions = 0;         ///< 1 + bumps actually applied.
    uint64_t serves_completed = 0;
    uint64_t integrity_rejections = 0;
    /// Final version's shared verified-digest cache.
    crypto::VerifiedDigestCache::Stats cache;
  };

  // Config echo (what the numbers were measured under).
  uint64_t corpus_bytes = 0;  ///< Per-document target.
  int threads = 0;
  int serves_per_thread = 0;
  int version_bumps = 0;

  uint64_t serves_attempted = 0;
  uint64_t serves_completed = 0;
  /// Stale sessions failing closed during a racing bump — expected > 0
  /// under churn, and the *only* acceptable failure class.
  uint64_t integrity_rejections = 0;
  uint64_t wrong_errors = 0;     ///< Failures outside the contract. Gate: 0.
  uint64_t view_mismatches = 0;  ///< Completed view matches no version. Gate: 0.

  // Remote-transport telemetry (zeros when remote mode is off).
  bool remote = false;
  uint64_t rtt_ns = 0;
  uint64_t transport_retries = 0;     ///< Typed retries across all serves.
  uint64_t transport_reconnects = 0;  ///< Fresh connections after teardowns.
  /// Serves that failed with a contracted retryable transport class
  /// (kUnavailable / kDeadlineExceeded) after the ladder ran dry — only
  /// acceptable (and only counted here) when faults were programmed.
  uint64_t transport_rejections = 0;
  uint64_t faults_programmed = 0;
  uint64_t faults_fired = 0;

  uint64_t wall_ns = 0;  ///< Serve phase only (publishing excluded).
  double serves_per_sec = 0.0;
  uint64_t p50_ns = 0, p95_ns = 0, p99_ns = 0;
  uint64_t wire_bytes_total = 0;
  /// bare_hits / (bare_hits + misses) over the final per-document caches.
  double cache_hit_rate = 0.0;
  uint64_t peak_rss_kb = 0;  ///< VmHWM of the whole process; 0 if unknown.

  /// Crypto configuration of the run and its aggregate stage rates:
  /// bytes decrypted / hashed across all completed serves over the wall
  /// clock each stage burned (MB/s; the serve-level numbers live in the
  /// per-serve reports).
  std::string backend;
  bool backend_hardware = false;
  std::string hash_impl;
  double decrypt_mb_s = 0.0;
  double hash_mb_s = 0.0;
  /// Aggregate plaintext serve rate: plaintext bytes materialized across
  /// completed serves over the racing-phase wall clock.
  double serve_mb_s = 0.0;

  std::vector<DocReport> docs;

  /// Appends this report as a JSON object (no trailing newline); `indent`
  /// prefixes every line, matching the bench's hand-rolled emitter.
  void AppendJson(std::string* out, const std::string& indent) const;
};

Result<LoadReport> RunLoad(const LoadConfig& config);

/// Peak resident set of this process in kB (Linux VmHWM); 0 elsewhere.
uint64_t ReadPeakRssKb();

}  // namespace csxa::bench

#endif  // CSXA_BENCH_LOAD_HARNESS_H_
