#include "net/fault_proxy.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace csxa::net {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void SleepNs(uint64_t ns) {
  if (ns != 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace

std::vector<FaultProxy::FaultEvent> FaultProxy::SeededProgram(
    uint64_t seed, uint64_t count, uint64_t horizon) {
  uint64_t state = seed ^ 0xC5A1C5A1C5A1C5A1ULL;
  std::vector<FaultEvent> program;
  program.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FaultEvent ev;
    ev.fault = static_cast<Fault>(
        1 + SplitMix64(&state) % 6);  // the six injectable faults
    ev.response_index = horizon == 0 ? i : SplitMix64(&state) % horizon;
    switch (ev.fault) {
      case Fault::kDropAfterBytes:
        ev.arg = 1 + SplitMix64(&state) % 48;
        break;
      case Fault::kCorruptByte:
        ev.arg = SplitMix64(&state) % 64;
        break;
      case Fault::kStall:
        // Long enough to trip any sane per-request deadline, short
        // enough that a retried smoke run still finishes.
        ev.arg = 300'000'000ULL + SplitMix64(&state) % 300'000'000ULL;
        break;
      default:
        ev.arg = 0;
        break;
    }
    program.push_back(ev);
  }
  std::sort(program.begin(), program.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.response_index < b.response_index;
            });
  return program;
}

Status FaultProxy::Start() {
  MutexLock lock(&mu_);
  if (running_) {
    // csxa-lint: allow(error-taxonomy) double Start is caller misuse.
    return Status::InvalidArgument("fault proxy already started");
  }
  uint16_t bound = 0;
  CSXA_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.listen_port, &bound));
  port_ = bound;
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FaultProxy::Stop() {
  std::thread accept_thread;
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    if (!running_ && !accept_thread_.joinable()) return;
    running_ = false;
    ShutdownFd(listen_fd_);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    for (int fd : conn_fds_) ShutdownFd(fd);
    accept_thread = std::move(accept_thread_);
    workers = std::move(workers_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

uint16_t FaultProxy::port() const {
  MutexLock lock(&mu_);
  return port_;
}

uint64_t FaultProxy::responses_seen() const {
  MutexLock lock(&mu_);
  return response_counter_;
}

uint64_t FaultProxy::faults_fired() const {
  MutexLock lock(&mu_);
  return faults_fired_;
}

FaultProxy::FaultEvent FaultProxy::NextResponseFault() {
  MutexLock lock(&mu_);
  const uint64_t index = response_counter_++;
  for (const FaultEvent& ev : options_.program) {
    if (ev.response_index == index && ev.fault != Fault::kNone) {
      ++faults_fired_;
      return ev;
    }
  }
  return FaultEvent{Fault::kNone, index, 0};
}

void FaultProxy::Deregister(int fd) {
  MutexLock lock(&mu_);
  auto it = std::find(conn_fds_.begin(), conn_fds_.end(), fd);
  if (it != conn_fds_.end()) conn_fds_.erase(it);
}

void FaultProxy::PacingSleep(size_t bytes) const {
  SleepNs(options_.rtt_ns / 2);
  if (options_.bandwidth_bytes_per_s != 0) {
    SleepNs(static_cast<uint64_t>(bytes) * 1'000'000'000ULL /
            options_.bandwidth_bytes_per_s);
  }
}

void FaultProxy::AcceptLoop() {
  while (true) {
    int listen_fd;
    {
      MutexLock lock(&mu_);
      if (!running_) return;
      listen_fd = listen_fd_;
    }
    Result<int> conn = AcceptConn(listen_fd);
    if (!conn.ok()) return;
    const int client_fd = conn.value();
    Result<int> upstream =
        ConnectTcp(options_.upstream_host, options_.upstream_port);
    if (!upstream.ok()) {
      // Upstream down: the client sees its connection reset — exactly
      // the refused/disconnect class it must retry through.
      CloseFd(client_fd);
      continue;
    }
    const int server_fd = upstream.value();
    MutexLock lock(&mu_);
    if (!running_) {
      CloseFd(client_fd);
      CloseFd(server_fd);
      return;
    }
    conn_fds_.push_back(client_fd);
    conn_fds_.push_back(server_fd);
    workers_.emplace_back([this, client_fd, server_fd] {
      // The reverse pump runs in its own thread; this thread owns the
      // response direction (where the fault program aims).
      std::thread forward([this, client_fd, server_fd] {
        PumpClientToServer(client_fd, server_fd);
        ShutdownFd(client_fd);
        ShutdownFd(server_fd);
      });
      PumpServerToClient(server_fd, client_fd);
      ShutdownFd(client_fd);
      ShutdownFd(server_fd);
      forward.join();
      Deregister(client_fd);
      Deregister(server_fd);
      CloseFd(client_fd);
      CloseFd(server_fd);
    });
  }
}

void FaultProxy::PumpClientToServer(int client_fd, int server_fd) {
  std::vector<uint8_t> buf;
  while (true) {
    Result<Record> rec = ReadRecord(client_fd);
    if (!rec.ok()) return;
    buf.clear();
    AppendRecord(&buf, rec.value().kind, rec.value().id,
                 rec.value().payload.data(), rec.value().payload.size());
    PacingSleep(buf.size());
    if (!WriteBytes(server_fd, buf.data(), buf.size()).ok()) return;
  }
}

void FaultProxy::PumpServerToClient(int server_fd, int client_fd) {
  std::vector<uint8_t> buf;
  while (true) {
    Result<Record> rec = ReadRecord(server_fd);
    if (!rec.ok()) return;
    const Record& record = rec.value();
    buf.clear();
    AppendRecord(&buf, record.kind, record.id, record.payload.data(),
                 record.payload.size());
    const FaultEvent ev = NextResponseFault();
    PacingSleep(buf.size());
    switch (ev.fault) {
      case Fault::kNone:
        if (!WriteBytes(client_fd, buf.data(), buf.size()).ok()) return;
        break;
      case Fault::kDropAfterBytes: {
        const size_t keep = std::min<size_t>(ev.arg, buf.size());
        if (keep != 0 && !WriteBytes(client_fd, buf.data(), keep).ok()) {
          return;
        }
        // Go silent: swallow further responses (keeping the server
        // unblocked) until either side tears the connection down. The
        // client's deadline turns the silence into a typed timeout.
        while (ReadRecord(server_fd).ok()) {
        }
        return;
      }
      case Fault::kTruncateFrame: {
        const size_t cut = record.payload.size() / 2;
        std::vector<uint8_t> mangled;
        AppendRecord(&mangled, record.kind, record.id, record.payload.data(),
                     cut);
        if (!WriteBytes(client_fd, mangled.data(), mangled.size()).ok()) {
          return;
        }
        break;
      }
      case Fault::kCorruptByte: {
        if (record.payload.empty()) {
          // Nothing beneath the envelope: corrupt the length field
          // instead (a desynchronized stream, retryable at the client).
          buf[kRecordHeaderBytes - 1] ^= 0x5A;
        } else {
          buf[kRecordHeaderBytes + ev.arg % record.payload.size()] ^= 0x5A;
        }
        if (!WriteBytes(client_fd, buf.data(), buf.size()).ok()) return;
        break;
      }
      case Fault::kStall: {
        SleepNs(ev.arg == 0 ? 400'000'000ULL : ev.arg);
        if (!WriteBytes(client_fd, buf.data(), buf.size()).ok()) return;
        break;
      }
      case Fault::kCloseMidResponse: {
        const size_t half = std::max<size_t>(1, buf.size() / 2);
        (void)WriteBytes(client_fd, buf.data(), half);
        return;  // Pump exit shuts down both directions.
      }
      case Fault::kDuplicateResponse: {
        if (!WriteBytes(client_fd, buf.data(), buf.size()).ok()) return;
        if (!WriteBytes(client_fd, buf.data(), buf.size()).ok()) return;
        break;
      }
    }
  }
}

}  // namespace csxa::net
