#ifndef CSXA_NET_FAULT_PROXY_H_
#define CSXA_NET_FAULT_PROXY_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace csxa::net {

/// Deterministic network weather between RemoteBatchSource and
/// TerminalServer: a record-aware TCP proxy that injects latency,
/// bandwidth limits, and a *programmed* schedule of faults. Determinism
/// is the point — like the corpus generator, a proxy is a pure function
/// of its options (plus a seed for generated programs), so a fault run
/// that fails replays exactly.
///
/// The proxy parses the record framing in both directions (it must, to
/// aim faults at response boundaries) but understands nothing of the
/// payloads: it is the untrusted network made flesh, and everything it
/// mangles must come out of the client as a typed retry or a terminal
/// IntegrityError — never a view.
class FaultProxy {
 public:
  /// What to do to one server->client response record.
  enum class Fault : uint32_t {
    kNone = 0,
    /// Forward the first `arg` bytes of the serialized record, then go
    /// silent (swallow everything further on this connection). The
    /// client's deadline fires; its retry dials a fresh connection.
    kDropAfterBytes,
    /// Halve the record's payload and rewrite the length header to
    /// match: a well-framed record whose frame no longer parses — the
    /// client must fail terminally (IntegrityError), not retry.
    kTruncateFrame,
    /// XOR one payload byte (position `arg` mod length): wire tampering;
    /// terminal IntegrityError at frame decode or digest verification.
    kCorruptByte,
    /// Sleep `arg` ns before forwarding (default: 3x the record's usual
    /// path). Past the client deadline this means timeout -> retry; the
    /// late record arrives on a torn-down connection and evaporates.
    kStall,
    /// Forward the first half of the record, then close both sides:
    /// mid-response disconnect -> retryable -> reconnect and re-verify.
    kCloseMidResponse,
    /// Forward the record twice; the duplicate must be discarded by the
    /// client demux (no waiter), proving replayed responses are inert.
    kDuplicateResponse,
  };

  struct FaultEvent {
    Fault fault = Fault::kNone;
    /// Which server->client response record (0-based, counted across the
    /// proxy's lifetime) the fault hits.
    uint64_t response_index = 0;
    /// Fault argument: bytes for kDropAfterBytes, ns for kStall, byte
    /// position for kCorruptByte; unused otherwise.
    uint64_t arg = 0;
  };

  struct Options {
    uint16_t listen_port = 0;  ///< 0 = ephemeral loopback port.
    std::string upstream_host = "127.0.0.1";
    uint16_t upstream_port = 0;
    /// Round-trip time to inject: each record pays rtt_ns/2 per
    /// direction, so one request/response round trip pays the full RTT.
    uint64_t rtt_ns = 0;
    /// Bytes per second per direction (0 = unlimited): each record adds
    /// size/bandwidth of serialization delay.
    uint64_t bandwidth_bytes_per_s = 0;
    std::vector<FaultEvent> program;
  };

  /// A reproducible mixed-fault program: `count` events spread over the
  /// first `horizon` responses, fault kinds and arguments drawn with
  /// splitmix64 from `seed` — the proxy analogue of the corpus
  /// generator's seeded families.
  static std::vector<FaultEvent> SeededProgram(uint64_t seed, uint64_t count,
                                               uint64_t horizon);

  FaultProxy() = default;
  explicit FaultProxy(Options options) : options_(std::move(options)) {}
  ~FaultProxy() { Stop(); }
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  Status Start() CSXA_EXCLUDES(mu_);
  void Stop() CSXA_EXCLUDES(mu_);
  uint16_t port() const CSXA_EXCLUDES(mu_);

  /// Responses forwarded (or mangled) so far, and faults actually fired.
  uint64_t responses_seen() const CSXA_EXCLUDES(mu_);
  uint64_t faults_fired() const CSXA_EXCLUDES(mu_);

 private:
  void AcceptLoop();
  void PumpClientToServer(int client_fd, int server_fd);
  void PumpServerToClient(int server_fd, int client_fd);
  /// Claims the global index for the next response record and the fault
  /// (if any) programmed for it.
  FaultEvent NextResponseFault() CSXA_EXCLUDES(mu_);
  void Deregister(int fd) CSXA_EXCLUDES(mu_);
  void PacingSleep(size_t bytes) const;

  Options options_;
  mutable Mutex mu_;
  int listen_fd_ CSXA_GUARDED_BY(mu_) = -1;
  uint16_t port_ CSXA_GUARDED_BY(mu_) = 0;
  bool running_ CSXA_GUARDED_BY(mu_) = false;
  std::vector<int> conn_fds_ CSXA_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ CSXA_GUARDED_BY(mu_);
  std::thread accept_thread_ CSXA_GUARDED_BY(mu_);
  uint64_t response_counter_ CSXA_GUARDED_BY(mu_) = 0;
  uint64_t faults_fired_ CSXA_GUARDED_BY(mu_) = 0;
};

}  // namespace csxa::net

#endif  // CSXA_NET_FAULT_PROXY_H_
