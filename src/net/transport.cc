#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace csxa::net {

namespace {

constexpr uint8_t kMagic[4] = {'C', 'S', 'X', 'R'};

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

/// read() the full span or report why not. Distinguishes clean EOF at a
/// record boundary only by where it happens (callers pass context).
Status ReadFully(int fd, uint8_t* buf, size_t len, const char* what) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("connection lost reading ") + what);
  }
  return Status::OK();
}

Status WriteFully(int fd, const uint8_t* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer reset must surface as a Status, not SIGPIPE.
    ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable("connection lost writing record");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: losing NODELAY costs latency, never correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed for connect");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    // csxa-lint: allow(error-taxonomy) a malformed host string is caller
    // misuse, not a transport condition worth retrying.
    return Status::InvalidArgument("terminal host is not an IPv4 literal");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    CloseFd(fd);
    return Status::Unavailable("terminal connection refused or unreachable");
  }
  SetNoDelay(fd);
  return fd;
}

Result<int> ListenTcp(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed for listen");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    CloseFd(fd);
    return Status::Unavailable("bind() failed (port in use?)");
  }
  if (::listen(fd, 64) < 0) {
    CloseFd(fd);
    return Status::Unavailable("listen() failed");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      CloseFd(fd);
      return Status::Unavailable("getsockname() failed");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<int> AcceptConn(int listen_fd) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable("listener shut down");
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) (void)::close(fd);
}

void SetRecvTimeoutNs(int fd, uint64_t ns) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ns / 1000000000ULL);
  tv.tv_usec = static_cast<suseconds_t>((ns % 1000000000ULL) / 1000ULL);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void AppendRecord(std::vector<uint8_t>* out, RecordKind kind, uint64_t id,
                  const uint8_t* payload, size_t len) {
  out->reserve(out->size() + kRecordHeaderBytes + len);
  out->insert(out->end(), kMagic, kMagic + 4);
  PutU32(out, static_cast<uint32_t>(kind));
  PutU64(out, id);
  PutU32(out, static_cast<uint32_t>(len));
  if (len != 0) out->insert(out->end(), payload, payload + len);
}

Status WriteBytes(int fd, const uint8_t* data, size_t len) {
  return WriteFully(fd, data, len);
}

Status WriteRecord(int fd, RecordKind kind, uint64_t id,
                   const uint8_t* payload, size_t len) {
  if (len > kMaxRecordPayload) {
    // csxa-lint: allow(error-taxonomy) oversized frames are produced by
    // our own encoder, so this is caller misuse, not a wire condition.
    return Status::InvalidArgument("record payload exceeds transport cap");
  }
  std::vector<uint8_t> buf;
  AppendRecord(&buf, kind, id, payload, len);
  return WriteFully(fd, buf.data(), buf.size());
}

Result<Record> ReadRecord(int fd) {
  uint8_t header[kRecordHeaderBytes];
  CSXA_RETURN_NOT_OK(ReadFully(fd, header, sizeof(header), "record header"));
  if (std::memcmp(header, kMagic, 4) != 0) {
    return Status::Unavailable(
        "transport stream desynchronized (bad record magic)");
  }
  const uint32_t kind = GetU32(header + 4);
  if (kind < static_cast<uint32_t>(RecordKind::kBind) ||
      kind > static_cast<uint32_t>(RecordKind::kError)) {
    return Status::Unavailable(
        "transport stream desynchronized (unknown record kind)");
  }
  const uint32_t len = GetU32(header + 16);
  if (len > kMaxRecordPayload) {
    return Status::Unavailable(
        "transport stream desynchronized (implausible record length)");
  }
  Record rec;
  rec.kind = static_cast<RecordKind>(kind);
  rec.id = GetU64(header + 8);
  rec.payload.resize(len);
  if (len != 0) {
    CSXA_RETURN_NOT_OK(ReadFully(fd, rec.payload.data(), len,
                                 "record payload"));
  }
  return rec;
}

std::vector<uint8_t> EncodeErrorPayload(const Status& status) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(status.code()));
  const std::string& msg = status.message();
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

Status ReadErrorPayload(const std::vector<uint8_t>& payload) {
  if (payload.size() < 4) {
    return Status::Unavailable("terminal sent an unparseable error record");
  }
  const uint32_t code = GetU32(payload.data());
  std::string msg(payload.begin() + 4, payload.end());
  if (code == static_cast<uint32_t>(StatusCode::kIntegrityError)) {
    return Status::IntegrityError(std::move(msg));
  }
  if (code == static_cast<uint32_t>(StatusCode::kInvalidArgument)) {
    // csxa-lint: allow(error-taxonomy) relaying the server's own
    // caller-misuse verdict (misaligned runs etc.) without changing class.
    return Status::InvalidArgument(std::move(msg));
  }
  // Anything else the (untrusted) terminal claims — including kOk — is
  // treated as a transient server-side failure: retry, then re-verify.
  return Status::Unavailable("terminal reported a transient error: " + msg);
}

}  // namespace csxa::net
