#ifndef CSXA_NET_TRANSPORT_H_
#define CSXA_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// Byte-level transport under the batched verified-fetch protocol.
///
/// The crypto/wire_format frames ('QXSC' request / 'RXSC' response) are
/// length-explicit but carry no outer delimiter — they were built for an
/// in-process round trip that hands the peer an exact span. A TCP stream
/// needs reassembly and, for pipelining, correlation; both live in a thin
/// *record* envelope around each frame:
///
///   offset size  field
///   0      4     magic 'C' 'S' 'X' 'R'
///   4      4     kind (RecordKind, u32 LE)
///   8      8     id   (request-correlation id, u64 LE; echoed in the
///                      response so in-flight requests may complete out
///                      of order)
///   16     4     payload length (u32 LE, <= kMaxRecordPayload)
///   20     ...   payload
///
/// Trust model: the envelope is *untrusted framing*, nothing more. A
/// garbled envelope (bad magic, implausible length, short read) means the
/// stream can no longer be attributed to any request — the connection is
/// torn down and the caller sees a retryable kUnavailable; whatever a
/// retry fetches re-verifies through the digest chain, so transport
/// anomalies can cost time, never trust. Payload integrity is judged only
/// by crypto/wire_format decoding plus Merkle verification, whose failures
/// stay terminal IntegrityErrors.
namespace csxa::net {

enum class RecordKind : uint32_t {
  kBind = 1,          ///< Client -> server: payload is the document id.
  kBindAck = 2,       ///< Server -> client: bind accepted (empty payload).
  kBatchRequest = 3,  ///< Client -> server: one 'QXSC' frame.
  kBatchResponse = 4, ///< Server -> client: one 'RXSC' frame.
  kError = 5,         ///< Server -> client: u32 StatusCode + message text.
};

/// Ceiling on one record's payload. Far above any real frame (a whole
/// 1 GB-spec document streams in ~64 KB fragment runs); its real job is
/// cutting desynchronized-stream reads short before they allocate.
inline constexpr size_t kMaxRecordPayload = size_t{1} << 26;  // 64 MiB

inline constexpr size_t kRecordHeaderBytes = 20;

struct Record {
  RecordKind kind = RecordKind::kError;
  uint64_t id = 0;
  std::vector<uint8_t> payload;
};

/// -- Socket plumbing (POSIX, loopback-friendly) ----------------------
/// Every failure is a retryable Status::Unavailable naming the operation;
/// no raw errno value ever escapes as an error class.

/// Connects to host:port (TCP_NODELAY set — the protocol is latency-bound
/// small frames). Returns the connected fd.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// Opens a listening socket on 127.0.0.1:`port` (0 picks an ephemeral
/// port); `*bound_port` receives the actual port.
Result<int> ListenTcp(uint16_t port, uint16_t* bound_port);

/// Blocking accept; Unavailable once the listener is shut down.
Result<int> AcceptConn(int listen_fd);

/// Wakes any thread blocked on the fd, then releases it. Safe to call
/// with -1 (no-op).
void ShutdownFd(int fd);
void CloseFd(int fd);

/// Arms (ns > 0) or clears (ns == 0) a receive timeout on the fd; a
/// timed-out read surfaces as the usual retryable Unavailable.
void SetRecvTimeoutNs(int fd, uint64_t ns);

/// -- Record I/O ------------------------------------------------------

/// Writes one record (header + payload) fully; Unavailable on any short
/// write or peer reset (SIGPIPE suppressed).
Status WriteRecord(int fd, RecordKind kind, uint64_t id,
                   const uint8_t* payload, size_t len);

/// Writes a raw span fully (the fault proxy forwards — and mangles —
/// pre-serialized records).
Status WriteBytes(int fd, const uint8_t* data, size_t len);

/// Reads exactly one record. Unavailable on EOF, reset, bad magic,
/// unknown kind or implausible length — all conditions after which the
/// stream has no attributable next byte.
Result<Record> ReadRecord(int fd);

/// Serializes a record into `out` (the fault proxy rewrites these).
void AppendRecord(std::vector<uint8_t>* out, RecordKind kind, uint64_t id,
                  const uint8_t* payload, size_t len);

/// -- kError payload --------------------------------------------------

/// Encodes a Status as an error-record payload (u32 code + message).
std::vector<uint8_t> EncodeErrorPayload(const Status& status);

/// Maps an error payload back to a Status. The terminal is untrusted, so
/// only the error classes the serve contract knows survive the trip:
/// kIntegrityError and kInvalidArgument relay as themselves (a stale
/// session must fail with the same class remotely as in-process); every
/// other — or unparseable — claim degrades to retryable kUnavailable.
Status ReadErrorPayload(const std::vector<uint8_t>& payload);

}  // namespace csxa::net

#endif  // CSXA_NET_TRANSPORT_H_
