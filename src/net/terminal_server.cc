#include "net/terminal_server.h"

#include <algorithm>
#include <utility>

#include "crypto/wire_format.h"

namespace csxa::net {

void TerminalServer::RegisterDocument(
    const std::string& doc_id,
    std::shared_ptr<const crypto::BatchSource> source) {
  MutexLock lock(&mu_);
  docs_[doc_id] = std::move(source);
}

std::shared_ptr<const crypto::BatchSource> TerminalServer::Find(
    const std::string& doc_id) const {
  MutexLock lock(&mu_);
  auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : it->second;
}

Status TerminalServer::Start() {
  MutexLock lock(&mu_);
  if (running_) {
    // csxa-lint: allow(error-taxonomy) double Start is caller misuse.
    return Status::InvalidArgument("terminal server already started");
  }
  uint16_t bound = 0;
  CSXA_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.port, &bound));
  port_ = bound;
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TerminalServer::Stop() {
  std::thread accept_thread;
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    if (!running_ && !accept_thread_.joinable()) return;
    running_ = false;
    ShutdownFd(listen_fd_);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    for (int fd : conn_fds_) ShutdownFd(fd);
    accept_thread = std::move(accept_thread_);
    workers = std::move(workers_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  // Handlers close their own fds on exit; now they all have.
  MutexLock lock(&mu_);
  conn_fds_.clear();
}

uint16_t TerminalServer::port() const {
  MutexLock lock(&mu_);
  return port_;
}

uint64_t TerminalServer::requests_served() const {
  MutexLock lock(&mu_);
  return requests_served_;
}

void TerminalServer::AcceptLoop() {
  while (true) {
    int listen_fd;
    {
      MutexLock lock(&mu_);
      if (!running_) return;
      listen_fd = listen_fd_;
    }
    Result<int> conn = AcceptConn(listen_fd);
    if (!conn.ok()) return;  // Listener shut down.
    MutexLock lock(&mu_);
    if (!running_) {
      CloseFd(conn.value());
      return;
    }
    const int fd = conn.value();
    conn_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TerminalServer::ServeConnection(int fd) {
  std::shared_ptr<const crypto::BatchSource> bound;
  std::vector<uint8_t> frame;
  while (true) {
    Result<Record> rec = ReadRecord(fd);
    if (!rec.ok()) break;  // EOF/reset/desync: the peer retries elsewhere.
    Record& record = rec.value();
    Status reply_error = Status::OK();
    frame.clear();
    switch (record.kind) {
      case RecordKind::kBind: {
        std::string doc_id(record.payload.begin(), record.payload.end());
        bound = Find(doc_id);
        if (bound == nullptr) {
          // csxa-lint: allow(error-taxonomy) unknown id is client misuse.
          reply_error = Status::InvalidArgument(
              "terminal holds no document under this id");
        }
        break;
      }
      case RecordKind::kBatchRequest: {
        if (bound == nullptr) {
          // csxa-lint: allow(error-taxonomy) request before bind.
          reply_error = Status::InvalidArgument(
              "batch request on a connection not bound to a document");
          break;
        }
        Result<crypto::BatchRequest> request = crypto::DecodeBatchRequest(
            record.payload.data(), record.payload.size());
        if (!request.ok()) {
          reply_error = request.status();
          break;
        }
        Result<crypto::BatchResponse> response =
            bound->ReadBatch(request.value());
        if (!response.ok()) {
          reply_error = response.status();
          break;
        }
        crypto::EncodeBatchResponse(response.value(), &frame);
        MutexLock lock(&mu_);
        ++requests_served_;
        break;
      }
      default:
        // A client must not send server-role records; the stream is
        // suspect, drop the connection.
        reply_error = Status::Unavailable(
            "unexpected record kind from client");
        break;
    }
    Status write_status;
    if (!reply_error.ok()) {
      std::vector<uint8_t> payload = EncodeErrorPayload(reply_error);
      write_status = WriteRecord(fd, RecordKind::kError, record.id,
                                 payload.data(), payload.size());
    } else if (record.kind == RecordKind::kBind) {
      write_status =
          WriteRecord(fd, RecordKind::kBindAck, record.id, nullptr, 0);
    } else {
      write_status = WriteRecord(fd, RecordKind::kBatchResponse, record.id,
                                 frame.data(), frame.size());
    }
    if (!write_status.ok()) break;
  }
  // Deregister before closing: the fd number may be recycled by the OS
  // the instant it closes, and Stop() must never shut down a stranger.
  {
    MutexLock lock(&mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  CloseFd(fd);
}

}  // namespace csxa::net
