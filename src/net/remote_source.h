#ifndef CSXA_NET_REMOTE_SOURCE_H_
#define CSXA_NET_REMOTE_SOURCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "crypto/secure_store.h"
#include "net/transport.h"

namespace csxa::net {

/// The SOE's async terminal link: a crypto::BatchSource whose ReadBatch
/// crosses a TCP connection to a TerminalServer (or csxa_stored). One
/// instance is shared by every session of a document; concurrent
/// ReadBatch calls pipeline on a single connection — each request is
/// tagged with a correlation id, a dedicated reader thread demultiplexes
/// responses to their waiters, so N sessions keep N requests in flight
/// over one socket instead of N sockets idling on round trips.
///
/// Failure semantics (the robustness contract this layer exists for):
///  - *Retryable, typed*: connect refused, per-request deadline elapsed,
///    mid-stream disconnect, desynchronized stream. Each triggers
///    bounded exponential backoff with deterministic jitter, a fresh
///    connection when the old one is suspect, and a re-sent request —
///    up to max_attempts, then the last kUnavailable/kDeadlineExceeded
///    surfaces to the serve, which fails closed.
///  - *Terminal*: a response record that parses as a frame but fails
///    crypto::DecodeBatchResponse, and any server-relayed
///    kIntegrityError/kInvalidArgument. Never retried — wire tampering
///    is indistinguishable from corruption and must fail the serve.
///
/// Reconnect re-verifies, never re-trusts: this class hands bytes to the
/// caller's SoeDecryptor exactly like an in-process source, so a chunk
/// re-fetched after a reconnect passes the same digest chain (or, warm,
/// the shared verified-digest cache authenticates it bare) as the first
/// attempt. A terminal that answers a retry with different bytes fails
/// verification; it cannot split the view.
class RemoteBatchSource : public crypto::BatchSource {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string doc_id;
    /// Per-attempt response deadline. 0 means wait forever (tests only).
    uint64_t deadline_ns = 2'000'000'000;
    /// Total tries per ReadBatch (first attempt + retries).
    uint32_t max_attempts = 4;
    /// Exponential backoff between retries: initial << attempt, capped,
    /// scaled by a deterministic jitter in [1/2, 1) (splitmix64 over
    /// jitter_seed — seeded like the corpus generator, so a failing run
    /// replays byte-for-byte).
    uint64_t backoff_initial_ns = 1'000'000;
    uint64_t backoff_max_ns = 100'000'000;
    uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
  };

  explicit RemoteBatchSource(Options options) : options_(std::move(options)) {}
  ~RemoteBatchSource() override;
  RemoteBatchSource(const RemoteBatchSource&) = delete;
  RemoteBatchSource& operator=(const RemoteBatchSource&) = delete;

  /// One batched round trip with the full retry ladder. Thread-safe;
  /// const because BatchSource reads are logically pure — the mutable
  /// machinery below is connection state, not document state.
  Result<crypto::BatchResponse> ReadBatch(
      const crypto::BatchRequest& request) const override;

  /// Retries/reconnects so far plus the configured deadline (the
  /// fetcher's per-serve counters are deltas of this).
  TransportStats transport_stats() const override CSXA_EXCLUDES(mu_);

 private:
  /// One request waiting for its response record.
  struct Waiter {
    bool done = false;
    Status error = Status::OK();       ///< Set when the attempt failed.
    std::vector<uint8_t> payload;      ///< Response frame when it did not.
  };

  /// Ensures a live, document-bound connection; joins parked reader
  /// threads (outside mu_) before dialing a new one.
  Status EnsureConnected() const CSXA_EXCLUDES(mu_);
  /// Dials and binds a fresh connection to options_.doc_id (the bind
  /// round trip runs under a receive timeout so a stalled link cannot
  /// wedge the dialer).
  Result<int> DialAndBind() const;
  /// Reader thread body: demultiplexes response records to waiters until
  /// the connection dies, then fails every pending waiter (retryable).
  void ReaderLoop(int fd, uint64_t my_epoch) const CSXA_EXCLUDES(mu_);
  /// Wakes the reader with shutdown(), marks the connection gone, parks
  /// the reader handle for joining, and fails pending waiters so their
  /// callers retry. The reader itself closes the fd when it unblocks —
  /// single-owner close, so a recycled fd number can never be hit.
  void DropConnectionLocked(const char* why) const CSXA_REQUIRES(mu_);
  /// Fails every pending waiter with a retryable error.
  void FailWaitersLocked(const char* why) const CSXA_REQUIRES(mu_);
  /// Deterministic backoff pause before retry number `attempt` (>= 1).
  void BackoffPause(uint32_t attempt) const CSXA_EXCLUDES(mu_);

  const Options options_;

  mutable Mutex mu_;
  mutable CondVar cv_;
  mutable int fd_ CSXA_GUARDED_BY(mu_) = -1;
  /// Bumped on every teardown; a reader learns it is stale by comparing.
  mutable uint64_t epoch_ CSXA_GUARDED_BY(mu_) = 0;
  mutable uint64_t next_id_ CSXA_GUARDED_BY(mu_) = 1;
  mutable std::map<uint64_t, Waiter*> waiters_ CSXA_GUARDED_BY(mu_);
  mutable std::thread reader_ CSXA_GUARDED_BY(mu_);
  /// Reader handles of torn-down connections, joined (never under mu_ —
  /// a parked reader may still need one last mu_ acquisition to learn it
  /// is stale) by the next dial or the destructor.
  mutable std::vector<std::thread> parked_ CSXA_GUARDED_BY(mu_);
  mutable bool ever_connected_ CSXA_GUARDED_BY(mu_) = false;
  mutable uint64_t jitter_state_ CSXA_GUARDED_BY(mu_) = 0;
  mutable uint64_t retries_ CSXA_GUARDED_BY(mu_) = 0;
  mutable uint64_t reconnects_ CSXA_GUARDED_BY(mu_) = 0;
};

}  // namespace csxa::net

#endif  // CSXA_NET_REMOTE_SOURCE_H_
