#include "net/remote_source.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/bytes.h"
#include "common/clock.h"
#include "crypto/wire_format.h"

namespace csxa::net {

namespace {

/// splitmix64 — the corpus generator's PRNG, reused so a backoff schedule
/// is a pure function of the seed and the retry sequence.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

RemoteBatchSource::~RemoteBatchSource() {
  std::vector<std::thread> parked;
  {
    MutexLock lock(&mu_);
    if (fd_ >= 0) DropConnectionLocked("terminal link shutting down");
    parked.swap(parked_);
  }
  for (std::thread& t : parked) {
    if (t.joinable()) t.join();
  }
}

crypto::BatchSource::TransportStats RemoteBatchSource::transport_stats()
    const {
  MutexLock lock(&mu_);
  return {retries_, reconnects_, options_.deadline_ns};
}

void RemoteBatchSource::FailWaitersLocked(const char* why) const {
  for (auto& [id, waiter] : waiters_) {
    (void)id;
    waiter->error = Status::Unavailable(why);
    waiter->done = true;
  }
  waiters_.clear();
  cv_.SignalAll();
}

void RemoteBatchSource::DropConnectionLocked(const char* why) const {
  ShutdownFd(fd_);  // Wakes the reader; the reader closes the fd.
  fd_ = -1;
  ++epoch_;
  if (reader_.joinable()) parked_.push_back(std::move(reader_));
  FailWaitersLocked(why);
}

Result<int> RemoteBatchSource::DialAndBind() const {
  CSXA_ASSIGN_OR_RETURN(int fd, ConnectTcp(options_.host, options_.port));
  // The bind round trip runs before the reader thread exists, so it must
  // bound its own blocking read: a link that stalls inside the handshake
  // is as dead as one that refuses the connection.
  if (options_.deadline_ns != 0) SetRecvTimeoutNs(fd, options_.deadline_ns);
  Status st =
      WriteRecord(fd, RecordKind::kBind, /*id=*/0,
                  common::AsBytes(options_.doc_id), options_.doc_id.size());
  if (!st.ok()) {
    CloseFd(fd);
    return st;
  }
  Result<Record> ack = ReadRecord(fd);
  if (!ack.ok()) {
    CloseFd(fd);
    return ack.status();
  }
  if (ack.value().kind == RecordKind::kError) {
    Status relayed = ReadErrorPayload(ack.value().payload);
    CloseFd(fd);
    return relayed;
  }
  if (ack.value().kind != RecordKind::kBindAck) {
    CloseFd(fd);
    return Status::Unavailable("terminal answered bind with a non-ack record");
  }
  SetRecvTimeoutNs(fd, 0);  // Steady-state deadlines are per-waiter.
  return fd;
}

Status RemoteBatchSource::EnsureConnected() const {
  std::vector<std::thread> parked;
  {
    MutexLock lock(&mu_);
    if (fd_ >= 0) return Status::OK();
    parked.swap(parked_);
  }
  for (std::thread& t : parked) {
    if (t.joinable()) t.join();
  }
  CSXA_ASSIGN_OR_RETURN(int fd, DialAndBind());
  MutexLock lock(&mu_);
  if (fd_ >= 0) {
    // Another caller won the dial race; use its connection.
    CloseFd(fd);
    return Status::OK();
  }
  fd_ = fd;
  const uint64_t my_epoch = epoch_;
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  reader_ = std::thread([this, fd, my_epoch] { ReaderLoop(fd, my_epoch); });
  return Status::OK();
}

void RemoteBatchSource::ReaderLoop(int fd, uint64_t my_epoch) const {
  while (true) {
    Result<Record> rec = ReadRecord(fd);
    MutexLock lock(&mu_);
    if (epoch_ != my_epoch) break;  // Torn down under us; already parked.
    if (!rec.ok()) {
      // The connection died mid-stream (EOF, reset, desync): park
      // ourselves and fail the in-flight requests retryably — their
      // retries re-verify everything through the digest chain.
      fd_ = -1;
      ++epoch_;
      if (reader_.joinable()) parked_.push_back(std::move(reader_));
      FailWaitersLocked("terminal connection lost mid-stream");
      break;
    }
    Record& record = rec.value();
    auto it = waiters_.find(record.id);
    if (it == waiters_.end()) continue;  // Duplicate or abandoned: dropped.
    Waiter* waiter = it->second;
    waiters_.erase(it);
    switch (record.kind) {
      case RecordKind::kBatchResponse:
        waiter->payload = std::move(record.payload);
        break;
      case RecordKind::kError:
        waiter->error = ReadErrorPayload(record.payload);
        break;
      default:
        waiter->error =
            Status::Unavailable("terminal answered with a mislabeled record");
        break;
    }
    waiter->done = true;
    cv_.SignalAll();
  }
  CloseFd(fd);
}

void RemoteBatchSource::BackoffPause(uint32_t attempt) const {
  uint64_t base = options_.backoff_initial_ns
                  << std::min(attempt - 1, uint32_t{20});
  base = std::min(std::max<uint64_t>(base, 2), options_.backoff_max_ns);
  uint64_t draw;
  {
    MutexLock lock(&mu_);
    if (jitter_state_ == 0) jitter_state_ = options_.jitter_seed | 1;
    draw = SplitMix64(&jitter_state_);
  }
  // Jitter in [base/2, base): decorrelates clients without ever zeroing
  // the pause.
  const uint64_t ns = base / 2 + draw % (base - base / 2);
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

Result<crypto::BatchResponse> RemoteBatchSource::ReadBatch(
    const crypto::BatchRequest& request) const {
  std::vector<uint8_t> frame;
  crypto::EncodeBatchRequest(request, &frame);
  Status last = Status::Unavailable("terminal was never reachable");
  for (uint32_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      {
        MutexLock lock(&mu_);
        ++retries_;
      }
      BackoffPause(attempt);
    }
    Status conn = EnsureConnected();
    if (!conn.ok()) {
      if (!Retryable(conn)) return conn;  // e.g. unknown document id
      last = conn;
      continue;
    }
    Waiter waiter;
    {
      MutexLock lock(&mu_);
      if (fd_ < 0) {
        // A concurrent request tore the connection down between our
        // EnsureConnected and here; dial again next attempt.
        last = Status::Unavailable("terminal connection dropped before send");
        continue;
      }
      const uint64_t id = next_id_++;
      waiters_[id] = &waiter;
      Status sent = WriteRecord(fd_, RecordKind::kBatchRequest, id,
                                frame.data(), frame.size());
      if (!sent.ok()) {
        waiters_.erase(id);
        DropConnectionLocked("terminal connection lost while sending");
        last = sent;
        continue;
      }
      const uint64_t deadline =
          options_.deadline_ns == 0 ? 0 : NowNs() + options_.deadline_ns;
      while (!waiter.done) {
        if (deadline == 0) {
          cv_.Wait(&mu_);
          continue;
        }
        const uint64_t now = NowNs();
        if (now >= deadline) break;
        (void)cv_.WaitFor(&mu_, deadline - now);
      }
      if (!waiter.done) {
        waiters_.erase(id);
        // A link that swallowed a request is not trusted with its retry.
        DropConnectionLocked("terminal stalled past the request deadline");
        last = Status::DeadlineExceeded(
            "terminal did not answer within the per-request deadline");
        continue;
      }
      if (!waiter.error.ok()) {
        if (!Retryable(waiter.error)) return waiter.error;
        last = waiter.error;
        continue;
      }
    }
    // Decode outside the lock; a frame that fails here is tampering or
    // corruption — terminal either way, never retried.
    return crypto::DecodeBatchResponse(waiter.payload.data(),
                                       waiter.payload.size());
  }
  return last;
}

}  // namespace csxa::net
