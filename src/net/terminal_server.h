#ifndef CSXA_NET_TERMINAL_SERVER_H_
#define CSXA_NET_TERMINAL_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "crypto/secure_store.h"
#include "net/transport.h"

namespace csxa::net {

/// The untrusted terminal as a real process boundary: a TCP server that
/// exposes registered crypto::BatchSources (immutable stores, or a
/// DocumentService's live document entries) over the record-framed batch
/// protocol. One listening socket, one handler thread per connection; a
/// connection binds to a document id first (kBind) and then answers
/// kBatchRequest records in arrival order — pipelining depth comes from
/// the client keeping several requests in flight, and from many
/// connections.
///
/// The server holds no keys and performs no verification (the terminal
/// cannot: that is the paper's premise). Its error records are claims by
/// an untrusted party; the client-side transport downgrades all but the
/// contracted classes to retryable kUnavailable.
class TerminalServer {
 public:
  struct Options {
    /// 0 binds an ephemeral loopback port (see port() after Start()).
    uint16_t port = 0;
  };

  TerminalServer() = default;
  explicit TerminalServer(Options options) : options_(options) {}
  ~TerminalServer() { Stop(); }
  TerminalServer(const TerminalServer&) = delete;
  TerminalServer& operator=(const TerminalServer&) = delete;

  /// Registers (or replaces) the source serving `doc_id`. The shared_ptr
  /// keeps the source alive across in-flight requests; a server-layer
  /// DocumentEntry registered here makes version bumps visible mid-serve
  /// exactly as in-process serves see them.
  void RegisterDocument(const std::string& doc_id,
                        std::shared_ptr<const crypto::BatchSource> source)
      CSXA_EXCLUDES(mu_);

  /// Binds, listens and starts the accept loop.
  Status Start() CSXA_EXCLUDES(mu_);

  /// Wakes and joins every connection; idempotent.
  void Stop() CSXA_EXCLUDES(mu_);

  /// The bound port (valid after Start()).
  uint16_t port() const CSXA_EXCLUDES(mu_);

  /// Cumulative batch requests answered (any document, any connection).
  uint64_t requests_served() const CSXA_EXCLUDES(mu_);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  std::shared_ptr<const crypto::BatchSource> Find(const std::string& doc_id)
      const CSXA_EXCLUDES(mu_);

  Options options_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const crypto::BatchSource>> docs_
      CSXA_GUARDED_BY(mu_);
  int listen_fd_ CSXA_GUARDED_BY(mu_) = -1;
  uint16_t port_ CSXA_GUARDED_BY(mu_) = 0;
  bool running_ CSXA_GUARDED_BY(mu_) = false;
  std::vector<int> conn_fds_ CSXA_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ CSXA_GUARDED_BY(mu_);
  std::thread accept_thread_ CSXA_GUARDED_BY(mu_);
  uint64_t requests_served_ CSXA_GUARDED_BY(mu_) = 0;
};

}  // namespace csxa::net

#endif  // CSXA_NET_TERMINAL_SERVER_H_
