#include "server/document_service.h"

#include <utility>

#include "crypto/wire_format.h"
#include "index/encoder.h"
#include "xml/sax_parser.h"

namespace csxa::server {

namespace internal {

Result<crypto::BatchResponse> DocumentEntry::ReadBatch(
    const crypto::BatchRequest& request) const {
  // The terminal link speaks the wire format even in-process: the request
  // and response frames are serialized and re-parsed on every round trip,
  // so the length-checked decoder (the attacker-controlled surface a real
  // transport will expose) is exercised by every serve of every test, not
  // only by the fuzz corpus.
  std::vector<uint8_t> request_frame;
  crypto::EncodeBatchRequest(request, &request_frame);
  CSXA_ASSIGN_OR_RETURN(
      crypto::BatchRequest decoded_request,
      crypto::DecodeBatchRequest(request_frame.data(), request_frame.size()));

  std::shared_ptr<const DocumentState> state = Current();
  const uint64_t size = state->store.ciphertext().size();
  const uint32_t fragment = state->store.layout().fragment_size;
  for (const crypto::BatchRequest::Run& run : decoded_request.runs) {
    // A session builds its runs against its own version's geometry: every
    // end is fragment-aligned except a tail run ending at that version's
    // ciphertext size. An end beyond the current size — or an unaligned
    // end that is not the current size (the document *grew* across a
    // bump, so the old tail now points mid-document) — is a stale
    // session, and the contract is failing closed.
    if (run.end > size ||
        (run.end % fragment != 0 && run.end != size)) {
      return Status::IntegrityError(
          "stale session: batch range beyond the current document version");
    }
  }
  CSXA_ASSIGN_OR_RETURN(crypto::BatchResponse response,
                        state->store.ReadBatch(decoded_request));
  std::vector<uint8_t> response_frame;
  crypto::EncodeBatchResponse(response, &response_frame);
  return crypto::DecodeBatchResponse(response_frame.data(),
                                     response_frame.size());
}

}  // namespace internal

Result<std::shared_ptr<const internal::DocumentState>>
DocumentService::BuildState(const std::string& xml, const DocumentConfig& cfg,
                            uint32_t version) {
  CSXA_ASSIGN_OR_RETURN(auto dom, xml::SaxParser::ParseToDom(xml));
  CSXA_ASSIGN_OR_RETURN(index::EncodedDocument doc,
                        index::Encode(*dom, cfg.variant));
  CSXA_ASSIGN_OR_RETURN(crypto::SecureDocumentStore store,
                        crypto::SecureDocumentStore::Build(
                            doc.bytes, cfg.key, cfg.layout, version,
                            cfg.backend));
  auto state = std::make_shared<internal::DocumentState>();
  state->encoded_bytes = doc.bytes.size();
  state->version = version;
  state->key = cfg.key;
  state->variant = cfg.variant;
  state->store = std::move(store);
  // The shared cache is born with the state and dies with the last
  // session holding it: entries are keyed (chunk, node) inside an
  // instance keyed (document, version) — a bump can therefore never leak
  // one version's authenticated hashes into another's serves.
  state->cache = std::make_shared<crypto::VerifiedDigestCache>(
      cfg.layout.fragments_per_chunk(), cfg.shared_cache_capacity, version);
  return std::shared_ptr<const internal::DocumentState>(std::move(state));
}

Status DocumentService::Publish(const std::string& doc_id,
                                const std::string& xml,
                                const DocumentConfig& cfg) {
  CSXA_RETURN_NOT_OK(
      cfg.layout.Validate(crypto::CipherBackendBlockSize(cfg.backend)));
  CSXA_ASSIGN_OR_RETURN(auto state, BuildState(xml, cfg, /*version=*/0));
  auto entry = std::make_shared<internal::DocumentEntry>();
  entry->Swap(std::move(state));
  MutexLock lock(&mu_);
  if (!docs_.emplace(doc_id, Published{cfg, std::move(entry), nullptr})
           .second) {
    return Status::InvalidArgument("document already published: " + doc_id);
  }
  return Status::OK();
}

Status DocumentService::Update(const std::string& doc_id,
                               const std::string& xml) {
  DocumentConfig cfg;
  std::shared_ptr<internal::DocumentEntry> entry;
  {
    MutexLock lock(&mu_);
    auto it = docs_.find(doc_id);
    if (it == docs_.end()) {
      return Status::InvalidArgument("document not published: " + doc_id);
    }
    cfg = it->second.cfg;
    entry = it->second.entry;
  }
  // Serialized per entry so two racing updates of one document cannot
  // mint the same version number for different content (sessions could
  // then mix them undetected); updates of other documents proceed.
  MutexLock update_lock(&entry->update_mu);
  const uint32_t next_version = entry->Current()->version + 1;
  CSXA_ASSIGN_OR_RETURN(auto state, BuildState(xml, cfg, next_version));
  entry->Swap(std::move(state));
  return Status::OK();
}

Result<std::shared_ptr<internal::DocumentEntry>> DocumentService::FindEntry(
    const std::string& doc_id) const {
  MutexLock lock(&mu_);
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) {
    return Status::InvalidArgument("document not published: " + doc_id);
  }
  return it->second.entry;
}

Result<std::unique_ptr<SecureSession>> DocumentService::OpenSession(
    const std::string& doc_id, const std::vector<access::AccessRule>& rules,
    const pipeline::ServeOptions& options) const {
  std::shared_ptr<internal::DocumentEntry> entry;
  std::shared_ptr<const crypto::BatchSource> transport;
  {
    MutexLock lock(&mu_);
    auto it = docs_.find(doc_id);
    if (it == docs_.end()) {
      return Status::InvalidArgument("document not published: " + doc_id);
    }
    entry = it->second.entry;
    transport = it->second.transport;
  }
  // Snapshot the version the session is opened for: geometry, expected
  // version and shared cache come from it, while actual batch reads go
  // through the entry (the *current* store) — a bump between here and the
  // last fetch is therefore detected, not papered over.
  std::shared_ptr<const internal::DocumentState> state = entry->Current();
  pipeline::ServeOptions wired = options;
  wired.shared_digest_cache = state->cache;
  if (transport != nullptr && wired.terminal_source == nullptr) {
    wired.terminal_source = std::move(transport);
  }
  CSXA_ASSIGN_OR_RETURN(
      auto stream,
      pipeline::ServeStream::Open(
          entry.get(), state->store.layout(), state->store.plaintext_size(),
          state->store.ciphertext().size(), state->store.chunk_count(),
          state->key, state->version, rules, wired,
          state->store.backend()));
  return std::unique_ptr<SecureSession>(new SecureSession(
      std::move(entry), std::move(state), std::move(stream)));
}

Result<pipeline::ServeReport> DocumentService::Serve(
    const std::string& doc_id, const std::vector<access::AccessRule>& rules,
    const pipeline::ServeOptions& options) const {
  CSXA_ASSIGN_OR_RETURN(auto session, OpenSession(doc_id, rules, options));
  return session->Drain();
}

Result<uint32_t> DocumentService::CurrentVersion(
    const std::string& doc_id) const {
  CSXA_ASSIGN_OR_RETURN(auto entry, FindEntry(doc_id));
  return entry->Current()->version;
}

Result<crypto::VerifiedDigestCache::Stats> DocumentService::CacheStats(
    const std::string& doc_id) const {
  CSXA_ASSIGN_OR_RETURN(auto entry, FindEntry(doc_id));
  return entry->Current()->cache->stats();
}

Result<std::shared_ptr<const crypto::BatchSource>>
DocumentService::TerminalLink(const std::string& doc_id) const {
  CSXA_ASSIGN_OR_RETURN(auto entry, FindEntry(doc_id));
  return std::shared_ptr<const crypto::BatchSource>(std::move(entry));
}

Status DocumentService::AttachTransport(
    const std::string& doc_id,
    std::shared_ptr<const crypto::BatchSource> source) {
  MutexLock lock(&mu_);
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) {
    return Status::InvalidArgument("document not published: " + doc_id);
  }
  it->second.transport = std::move(source);
  return Status::OK();
}

}  // namespace csxa::server
