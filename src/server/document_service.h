#ifndef CSXA_SERVER_DOCUMENT_SERVICE_H_
#define CSXA_SERVER_DOCUMENT_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "crypto/digest_cache.h"
#include "crypto/secure_store.h"
#include "index/variants.h"
#include "pipeline/secure_pipeline.h"

namespace csxa::server {

/// Owner-side publication parameters of one document (the per-serve knobs
/// stay in pipeline::ServeOptions).
struct DocumentConfig {
  index::Variant variant = index::Variant::kTcsbr;
  crypto::ChunkLayout layout;
  crypto::TripleDes::Key key{};
  /// Entries (chunks) of the per-(document, version) shared verified-digest
  /// cache. Sized to hold a whole document's chunks so a warm service
  /// serves every session material-free; 0 falls back to private
  /// per-serve caches.
  size_t shared_cache_capacity = 128;
  /// Cipher backend the document is encrypted under; carried across
  /// Update() rebuilds so every version of a document uses one backend.
  crypto::CipherBackendKind backend = crypto::CipherBackendKind::k3Des;
};

namespace internal {

/// Immutable snapshot of one published document version: the encrypted
/// store, its geometry, and the shared verified-digest cache stamped with
/// this version. Sessions hold it by shared_ptr, so an Update never pulls
/// memory out from under an in-flight serve — it only makes the serve
/// *fail closed* (the live terminal link below starts answering with the
/// next version's bytes and digests).
struct DocumentState {
  crypto::SecureDocumentStore store;
  uint64_t encoded_bytes = 0;
  uint32_t version = 0;
  crypto::TripleDes::Key key{};
  index::Variant variant = index::Variant::kTcsbr;
  std::shared_ptr<crypto::VerifiedDigestCache> cache;
};

/// The live terminal link of one document id. Every session's fetcher
/// reads through this (not through its own version snapshot): the terminal
/// has exactly one current store, and a session opened before a version
/// bump must see the bumped bytes — and reject them as "stale chunk
/// digest" — rather than keep serving a state the terminal no longer
/// holds. That is the replay-protection contract of Section 6 carried
/// into the concurrent-service world.
class DocumentEntry : public crypto::BatchSource {
 public:
  /// Serves from the current store; a request whose ranges outrun it
  /// (a session built for a larger, superseded version after a shrinking
  /// bump) is reported as the integrity failure it is — stale sessions
  /// fail closed with one consistent error class, never InvalidArgument.
  Result<crypto::BatchResponse> ReadBatch(
      const crypto::BatchRequest& request) const override;

  std::shared_ptr<const DocumentState> Current() const CSXA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return state_;
  }
  void Swap(std::shared_ptr<const DocumentState> next) CSXA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    state_ = std::move(next);
  }

  /// Serializes this document's read-bump-swap update sequence (two
  /// racing updates must not mint the same version number for different
  /// content). Per entry, so one document's expensive rebuild never
  /// stalls another's. Lock order: update_mu strictly before mu_ (the
  /// update's final Swap runs under both; nothing acquires update_mu
  /// with mu_ held).
  Mutex update_mu CSXA_ACQUIRED_BEFORE(mu_);

 private:
  mutable Mutex mu_;
  std::shared_ptr<const DocumentState> state_ CSXA_GUARDED_BY(mu_);
};

}  // namespace internal

/// One user's serve against a published document: a handle on the
/// service's document entry (the live terminal link plus keep-alives for
/// the version snapshot it was opened under) wrapping the per-serve SOE
/// chain. Many SecureSessions run concurrently against one DocumentService;
/// they share nothing mutable but the thread-safe verified-digest cache of
/// their document version — which is what makes every session after the
/// first start warm: trimmed proofs and bare re-reads from its first
/// request.
class SecureSession {
 public:
  SecureSession(const SecureSession&) = delete;
  SecureSession& operator=(const SecureSession&) = delete;

  /// Next authorized-view event; `.end` true after the last one. A
  /// version bump racing this serve surfaces as IntegrityError ("stale
  /// chunk digest" / cached-root mismatch) — never as silently mixed
  /// content.
  Result<pipeline::ViewItem> Next() { return stream_->Next(); }

  /// Drains the remaining view into a serialized string + cost report.
  Result<pipeline::ServeReport> Drain() {
    return pipeline::DrainServeStream(stream_.get(), state_->encoded_bytes);
  }

  uint32_t version() const { return state_->version; }
  const pipeline::ServeStream& stream() const { return *stream_; }

 private:
  friend class DocumentService;
  SecureSession(std::shared_ptr<internal::DocumentEntry> entry,
                std::shared_ptr<const internal::DocumentState> state,
                std::unique_ptr<pipeline::ServeStream> stream)
      : entry_(std::move(entry)),
        state_(std::move(state)),
        stream_(std::move(stream)) {}

  std::shared_ptr<internal::DocumentEntry> entry_;  ///< Live terminal link.
  std::shared_ptr<const internal::DocumentState> state_;  ///< Version snapshot.
  std::unique_ptr<pipeline::ServeStream> stream_;
};

/// The server: owns one SecureDocumentStore per published document and
/// serves many concurrent SecureSessions against each. Thread-safe —
/// Publish/Update/OpenSession/Serve may be called from any thread.
///
/// Sharing model (what crosses session boundaries, and why it is safe):
///  - the store: immutable per version, terminal-side ciphertext anyway;
///  - the verified-digest cache: authenticated Merkle hashes of that
///    ciphertext, keyed (document, version, chunk, node) — the instance
///    is bound to (document, version), entries to (chunk, node). Entries
///    are written only after a full digest-chain verification, so sharing
///    them across serves discloses nothing the terminal does not already
///    serve to anyone, and saves every session after the first the whole
///    material transfer. A version bump swaps in a fresh instance, so a
///    stale version's hashes can never vouch for bumped content.
/// Everything else (decryptor, fetcher, navigator, evaluator) is strictly
/// per-session.
class DocumentService {
 public:
  DocumentService() = default;
  DocumentService(const DocumentService&) = delete;
  DocumentService& operator=(const DocumentService&) = delete;

  /// Owner side: parses `xml`, encodes, encrypts, and publishes it under
  /// `doc_id` at version 0. Fails if the id is already published.
  Status Publish(const std::string& doc_id, const std::string& xml,
                 const DocumentConfig& cfg);

  /// Re-publishes `doc_id` with the document version bumped by one: the
  /// terminal store is swapped and the shared digest cache replaced with a
  /// fresh (empty) instance stamped with the new version. Sessions opened
  /// before the bump fail closed on their next fetch.
  Status Update(const std::string& doc_id, const std::string& xml);

  /// SOE side: opens a pull session of the authorized view for `rules`
  /// against the current version of `doc_id`, wired to the shared cache.
  Result<std::unique_ptr<SecureSession>> OpenSession(
      const std::string& doc_id,
      const std::vector<access::AccessRule>& rules,
      const pipeline::ServeOptions& options) const;

  /// Convenience: OpenSession + Drain.
  Result<pipeline::ServeReport> Serve(
      const std::string& doc_id, const std::vector<access::AccessRule>& rules,
      const pipeline::ServeOptions& options) const;

  Result<uint32_t> CurrentVersion(const std::string& doc_id) const;
  /// Snapshot of the current version's shared-cache stats.
  Result<crypto::VerifiedDigestCache::Stats> CacheStats(
      const std::string& doc_id) const;

  /// Terminal side: the live batch link of `doc_id` — the object a
  /// net::TerminalServer registers so a remote SOE reads the *current*
  /// store (version bumps included) over the wire exactly as an
  /// in-process session does. Holds ciphertext and digests only; keys,
  /// geometry and the expected version never cross this boundary.
  Result<std::shared_ptr<const crypto::BatchSource>> TerminalLink(
      const std::string& doc_id) const;

  /// SOE side: routes every *future* session's batch reads for `doc_id`
  /// through `source` (e.g. a net::RemoteBatchSource dialing a remote
  /// terminal) instead of the in-process entry; nullptr detaches. Already-
  /// open sessions keep the source they were opened with. Geometry, key,
  /// expected version and the shared digest cache still come from the
  /// local version snapshot, so bytes fetched through `source` re-verify
  /// against locally trusted digests — the transport can delay a serve,
  /// never alter what it will accept.
  Status AttachTransport(const std::string& doc_id,
                         std::shared_ptr<const crypto::BatchSource> source);

 private:
  static Result<std::shared_ptr<const internal::DocumentState>> BuildState(
      const std::string& xml, const DocumentConfig& cfg, uint32_t version);
  Result<std::shared_ptr<internal::DocumentEntry>> FindEntry(
      const std::string& doc_id) const;

  mutable Mutex mu_;  ///< Guards the registry, not the entries.
  struct Published {
    DocumentConfig cfg;
    std::shared_ptr<internal::DocumentEntry> entry;
    /// Session-side transport override (AttachTransport); null = in-process.
    std::shared_ptr<const crypto::BatchSource> transport;
  };
  std::map<std::string, Published> docs_ CSXA_GUARDED_BY(mu_);
};

}  // namespace csxa::server

#endif  // CSXA_SERVER_DOCUMENT_SERVICE_H_
