#include "xml/tag_dictionary.h"

#include "common/bytes.h"

namespace csxa::xml {

TagId TagDictionary::Intern(const std::string& tag) {
  auto it = ids_.find(tag);
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.push_back(tag);
  ids_.emplace(tag, id);
  return id;
}

bool TagDictionary::Lookup(const std::string& tag, TagId* id) const {
  auto it = ids_.find(tag);
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

bool GetU32(const uint8_t* data, size_t size, size_t* pos, uint32_t* v) {
  if (*pos + 4 > size) return false;
  *v = (static_cast<uint32_t>(data[*pos]) << 24) |
       (static_cast<uint32_t>(data[*pos + 1]) << 16) |
       (static_cast<uint32_t>(data[*pos + 2]) << 8) |
       static_cast<uint32_t>(data[*pos + 3]);
  *pos += 4;
  return true;
}

}  // namespace

std::vector<uint8_t> TagDictionary::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(names_.size()));
  for (const std::string& name : names_) {
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
  }
  return out;
}

Result<TagDictionary> TagDictionary::Deserialize(const uint8_t* data,
                                                 size_t size,
                                                 size_t* consumed) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetU32(data, size, &pos, &count)) {
    return Status::Corruption("tag dictionary: truncated count");
  }
  TagDictionary dict;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!GetU32(data, size, &pos, &len) || pos + len > size) {
      return Status::Corruption("tag dictionary: truncated entry");
    }
    dict.Intern(std::string(common::AsChars(data + pos, len)));
    pos += len;
  }
  if (consumed != nullptr) *consumed = pos;
  return dict;
}

}  // namespace csxa::xml
