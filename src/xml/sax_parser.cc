#include "xml/sax_parser.h"

#include <cctype>
#include <vector>

namespace csxa::xml {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsSpaceOnly(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Decodes the five predefined entities; unknown entities are kept verbatim.
std::string DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    if (raw[i] != '&') {
      out.push_back(raw[i++]);
      continue;
    }
    auto tryMatch = [&](std::string_view ent, char repl) {
      if (raw.substr(i, ent.size()) == ent) {
        out.push_back(repl);
        i += ent.size();
        return true;
      }
      return false;
    };
    if (tryMatch("&lt;", '<') || tryMatch("&gt;", '>') ||
        tryMatch("&amp;", '&') || tryMatch("&quot;", '"') ||
        tryMatch("&apos;", '\'')) {
      continue;
    }
    out.push_back(raw[i++]);
  }
  return out;
}

/// DOM builder used by ParseToDom.
class DomBuilder : public EventHandler {
 public:
  void OnOpen(const std::string& tag, int) override {
    if (current_ == nullptr) {
      if (root_ != nullptr) {
        multiple_roots_ = true;
        return;
      }
      root_ = Node::Element(tag);
      current_ = root_.get();
    } else {
      current_ = current_->AppendElement(tag);
    }
  }
  void OnValue(const std::string& value, int) override {
    if (current_ != nullptr) current_->AppendText(value);
  }
  void OnClose(const std::string&, int) override {
    if (current_ != nullptr) current_ = current_->parent();
  }

  std::unique_ptr<Node> TakeRoot() { return std::move(root_); }
  bool multiple_roots() const { return multiple_roots_; }

 private:
  std::unique_ptr<Node> root_;
  Node* current_ = nullptr;
  bool multiple_roots_ = false;
};

}  // namespace

Status SaxParser::Parse(std::string_view input, EventHandler* handler) {
  std::vector<std::string> open_tags;
  size_t i = 0;
  const size_t n = input.size();
  std::string pending_text;

  auto flushText = [&]() {
    if (!pending_text.empty() && !open_tags.empty() &&
        !IsSpaceOnly(pending_text)) {
      handler->OnValue(DecodeEntities(pending_text),
                       static_cast<int>(open_tags.size()) + 1);
    }
    pending_text.clear();
  };

  while (i < n) {
    if (input[i] != '<') {
      pending_text.push_back(input[i++]);
      continue;
    }
    // A markup construct starts here.
    if (i + 1 >= n) return Status::ParseError("dangling '<' at end of input");
    char next = input[i + 1];
    if (next == '?') {  // XML declaration / processing instruction
      size_t end = input.find("?>", i + 2);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated processing instruction");
      }
      i = end + 2;
      continue;
    }
    if (next == '!') {
      if (input.substr(i, 4) == "<!--") {  // comment
        size_t end = input.find("-->", i + 4);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment");
        }
        i = end + 3;
        continue;
      }
      if (input.substr(i, 9) == "<![CDATA[") {
        size_t end = input.find("]]>", i + 9);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA section");
        }
        pending_text.append(input.substr(i + 9, end - (i + 9)));
        i = end + 3;
        continue;
      }
      // DOCTYPE or other declaration: skip to matching '>'.
      size_t end = input.find('>', i + 2);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated '<!' declaration");
      }
      i = end + 1;
      continue;
    }
    if (next == '/') {  // closing tag
      flushText();
      size_t j = i + 2;
      size_t start = j;
      while (j < n && IsNameChar(input[j])) ++j;
      std::string tag(input.substr(start, j - start));
      while (j < n && std::isspace(static_cast<unsigned char>(input[j]))) ++j;
      if (j >= n || input[j] != '>') {
        return Status::ParseError("malformed closing tag </" + tag);
      }
      if (open_tags.empty() || open_tags.back() != tag) {
        return Status::ParseError(
            "mismatched closing tag </" + tag + ">, expected </" +
            (open_tags.empty() ? std::string("?") : open_tags.back()) + ">");
      }
      handler->OnClose(tag, static_cast<int>(open_tags.size()));
      open_tags.pop_back();
      i = j + 1;
      continue;
    }
    // Opening tag.
    if (!IsNameStart(next)) {
      return Status::ParseError("invalid character after '<'");
    }
    flushText();
    size_t j = i + 1;
    size_t start = j;
    while (j < n && IsNameChar(input[j])) ++j;
    std::string tag(input.substr(start, j - start));
    // Skip attributes (quoted values may contain '>').
    bool self_closing = false;
    while (j < n) {
      char c = input[j];
      if (c == '>') break;
      if (c == '/' && j + 1 < n && input[j + 1] == '>') {
        self_closing = true;
        j += 1;
        break;
      }
      if (c == '"' || c == '\'') {
        size_t close = input.find(c, j + 1);
        if (close == std::string_view::npos) {
          return Status::ParseError("unterminated attribute value in <" + tag);
        }
        j = close + 1;
        continue;
      }
      ++j;
    }
    if (j >= n || input[j] != '>') {
      return Status::ParseError("unterminated opening tag <" + tag);
    }
    open_tags.push_back(tag);
    handler->OnOpen(tag, static_cast<int>(open_tags.size()));
    if (self_closing) {
      handler->OnClose(tag, static_cast<int>(open_tags.size()));
      open_tags.pop_back();
    }
    i = j + 1;
  }
  if (!open_tags.empty()) {
    return Status::ParseError("unclosed element <" + open_tags.back() + ">");
  }
  return Status::OK();
}

Result<std::unique_ptr<Node>> SaxParser::ParseToDom(std::string_view input) {
  DomBuilder builder;
  CSXA_RETURN_NOT_OK(Parse(input, &builder));
  if (builder.multiple_roots()) {
    return Status::ParseError("document has multiple root elements");
  }
  std::unique_ptr<Node> root = builder.TakeRoot();
  if (root == nullptr) {
    return Status::ParseError("document has no root element");
  }
  return root;
}

}  // namespace csxa::xml
