#include "xml/serializer.h"

namespace csxa::xml {

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeInto(const Node& node, int indent, int level, std::string* out) {
  auto pad = [&](int lvl) {
    if (indent >= 0) out->append(static_cast<size_t>(indent) * lvl, ' ');
  };
  if (node.is_text()) {
    pad(level);
    out->append(EscapeText(node.value()));
    if (indent >= 0) out->push_back('\n');
    return;
  }
  pad(level);
  out->push_back('<');
  out->append(node.tag());
  if (node.children().empty()) {
    out->append("/>");
    if (indent >= 0) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (indent >= 0) out->push_back('\n');
  for (const auto& child : node.children()) {
    SerializeInto(*child, indent, level + 1, out);
  }
  pad(level);
  out->append("</");
  out->append(node.tag());
  out->push_back('>');
  if (indent >= 0) out->push_back('\n');
}

}  // namespace

std::string Serialize(const Node& node, int indent) {
  std::string out;
  SerializeInto(node, indent, 0, &out);
  return out;
}

void SerializingHandler::OnOpen(const std::string& tag, int) {
  out_.push_back('<');
  out_.append(tag);
  out_.push_back('>');
}

void SerializingHandler::OnValue(const std::string& value, int) {
  out_.append(EscapeText(value));
}

void SerializingHandler::OnClose(const std::string& tag, int) {
  out_.append("</");
  out_.append(tag);
  out_.push_back('>');
}

void SerializingHandler::Feed(const Event& event, int depth) {
  switch (event.kind) {
    case EventKind::kOpen:
      OnOpen(event.text, depth);
      break;
    case EventKind::kValue:
      OnValue(event.text, depth);
      break;
    case EventKind::kClose:
      OnClose(event.text, depth);
      break;
  }
}

}  // namespace csxa::xml
