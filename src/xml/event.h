#ifndef CSXA_XML_EVENT_H_
#define CSXA_XML_EVENT_H_

#include <string>

namespace csxa::xml {

/// SAX-style event kinds (the paper's open / value / close events).
enum class EventKind {
  kOpen,   ///< Opening tag `<tag>`.
  kValue,  ///< Text node content.
  kClose,  ///< Closing tag `</tag>`.
};

/// One parsing event. `text` holds the tag name for open/close and the
/// character data for value events.
struct Event {
  EventKind kind = EventKind::kOpen;
  std::string text;

  static Event Open(std::string tag) {
    return Event{EventKind::kOpen, std::move(tag)};
  }
  static Event Value(std::string value) {
    return Event{EventKind::kValue, std::move(value)};
  }
  static Event Close(std::string tag) {
    return Event{EventKind::kClose, std::move(tag)};
  }

  bool operator==(const Event& other) const = default;
};

/// Receiver of parsing events; implemented by the access-control evaluator,
/// the skip-index encoder, document statistics, etc.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  /// Called for `<tag>`. `depth` is the depth of the opened element
  /// (root = 1), matching the depth labels used by rule instances.
  virtual void OnOpen(const std::string& tag, int depth) = 0;
  /// Called for text content at the current depth.
  virtual void OnValue(const std::string& value, int depth) = 0;
  /// Called for `</tag>`; depth is the depth of the element being closed.
  virtual void OnClose(const std::string& tag, int depth) = 0;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_EVENT_H_
