#ifndef CSXA_XML_SERIALIZER_H_
#define CSXA_XML_SERIALIZER_H_

#include <string>

#include "xml/event.h"
#include "xml/node.h"

namespace csxa::xml {

/// Serializes a DOM subtree back to XML text. Entities are escaped so that
/// Serialize(Parse(x)) round-trips. `indent` < 0 produces compact output.
std::string Serialize(const Node& node, int indent = -1);

/// Escapes `<`, `>`, `&` in text content.
std::string EscapeText(const std::string& text);

/// EventHandler that serializes the event stream it receives; used to turn
/// the streaming evaluator's authorized output back into XML text.
class SerializingHandler : public EventHandler {
 public:
  void OnOpen(const std::string& tag, int depth) override;
  void OnValue(const std::string& value, int depth) override;
  void OnClose(const std::string& tag, int depth) override;

  /// Pull-API convenience: dispatches one already-materialized event, so
  /// consumers draining an AuthorizedViewReader serialize with one call.
  void Feed(const Event& event, int depth);

  const std::string& output() const { return out_; }

 private:
  std::string out_;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_SERIALIZER_H_
