#include "xml/node.h"

namespace csxa::xml {

std::unique_ptr<Node> Node::Element(std::string tag) {
  auto node = std::unique_ptr<Node>(new Node(Kind::kElement));
  node->tag_ = std::move(tag);
  return node;
}

std::unique_ptr<Node> Node::Text(std::string value) {
  auto node = std::unique_ptr<Node>(new Node(Kind::kText));
  node->value_ = std::move(value);
  return node;
}

Node* Node::AppendChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AppendElement(std::string tag) {
  return AppendChild(Element(std::move(tag)));
}

Node* Node::AppendText(std::string value) {
  return AppendChild(Text(std::move(value)));
}

Node* Node::AppendLeaf(std::string tag, std::string value) {
  Node* elem = AppendElement(std::move(tag));
  elem->AppendText(std::move(value));
  return elem;
}

int Node::Depth() const {
  int depth = 1;
  for (const Node* n = parent_; n != nullptr; n = n->parent_) ++depth;
  return depth;
}

size_t Node::CountElements() const {
  size_t count = is_element() ? 1 : 0;
  for (const auto& child : children_) count += child->CountElements();
  return count;
}

size_t Node::TextLength() const {
  size_t len = value_.size();
  for (const auto& child : children_) len += child->TextLength();
  return len;
}

std::string Node::StringValue() const {
  if (is_text()) return value_;
  std::string out;
  for (const auto& child : children_) out += child->StringValue();
  return out;
}

void Node::Emit(EventHandler* handler, int depth) const {
  if (is_text()) {
    handler->OnValue(value_, depth);
    return;
  }
  handler->OnOpen(tag_, depth);
  for (const auto& child : children_) child->Emit(handler, depth + 1);
  handler->OnClose(tag_, depth);
}

bool Node::DeepEquals(const Node& other) const {
  if (kind_ != other.kind_ || tag_ != other.tag_ || value_ != other.value_) {
    return false;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->DeepEquals(*other.children_[i])) return false;
  }
  return true;
}

std::unique_ptr<Node> Node::Clone() const {
  std::unique_ptr<Node> copy =
      is_element() ? Element(tag_) : Text(value_);
  for (const auto& child : children_) copy->AppendChild(child->Clone());
  return copy;
}

}  // namespace csxa::xml
