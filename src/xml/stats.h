#ifndef CSXA_XML_STATS_H_
#define CSXA_XML_STATS_H_

#include <cstddef>
#include <string>

#include "xml/node.h"

namespace csxa::xml {

/// Document characteristics as reported in Table 2 of the paper.
struct DocumentStats {
  size_t size_bytes = 0;      ///< Serialized (non-compressed) size.
  size_t text_bytes = 0;      ///< Total length of text nodes.
  int max_depth = 0;          ///< Deepest element (root = 1).
  double avg_depth = 0.0;     ///< Average element depth.
  size_t distinct_tags = 0;   ///< Number of distinct element names.
  size_t text_nodes = 0;      ///< Number of text nodes.
  size_t elements = 0;        ///< Number of element nodes.

  /// One row of Table 2 ("size text max_depth avg_depth #tags #text #elem").
  std::string ToString() const;
};

/// Computes Table 2 statistics for a document.
DocumentStats ComputeStats(const Node& root);

}  // namespace csxa::xml

#endif  // CSXA_XML_STATS_H_
