#ifndef CSXA_XML_TAG_DICTIONARY_H_
#define CSXA_XML_TAG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace csxa::xml {

/// Identifier of a tag inside a TagDictionary.
using TagId = uint32_t;

/// Dictionary of distinct element names of a document (Section 4.1: the
/// structure is compressed against a dictionary of tags; all Skip-index
/// metadata is expressed in terms of dictionary entries).
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Returns the id of `tag`, inserting it if new. Insertion order defines
  /// ids, which makes dictionaries deterministic for a given document.
  TagId Intern(const std::string& tag);

  /// Looks a tag up without inserting; returns false if absent.
  bool Lookup(const std::string& tag, TagId* id) const;

  /// Name for an id; id must be < size().
  const std::string& Name(TagId id) const { return names_[id]; }

  /// Number of distinct tags (the paper's Nt).
  size_t size() const { return names_.size(); }

  /// Serializes as `count` then length-prefixed names (byte aligned); the
  /// dictionary travels with the encrypted document and is small enough to
  /// be kept inside the SOE.
  std::vector<uint8_t> Serialize() const;
  static Result<TagDictionary> Deserialize(const uint8_t* data, size_t size,
                                           size_t* consumed);

  bool operator==(const TagDictionary& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_TAG_DICTIONARY_H_
