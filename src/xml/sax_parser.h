#ifndef CSXA_XML_SAX_PARSER_H_
#define CSXA_XML_SAX_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/event.h"
#include "xml/node.h"

namespace csxa::xml {

/// Event-based (SAX-like) push parser for the XML subset the paper
/// manipulates: elements, text content and self-closing tags. XML
/// declarations, comments and processing instructions are recognized and
/// skipped; attributes are parsed and ignored (the paper handles attributes
/// "similarly to elements" and does not evaluate on them); entity references
/// `&lt; &gt; &amp; &quot; &apos;` are decoded.
///
/// The parser is written from scratch (no libxml2) so the SOE pipeline has
/// a dependency-free, auditable ingestion path.
class SaxParser {
 public:
  /// Parses `input`, forwarding events to `handler`.
  /// Fails with ParseError on mismatched/unterminated tags.
  static Status Parse(std::string_view input, EventHandler* handler);

  /// Parses into a DOM tree (single root element required).
  static Result<std::unique_ptr<Node>> ParseToDom(std::string_view input);
};

}  // namespace csxa::xml

#endif  // CSXA_XML_SAX_PARSER_H_
