#include "xml/stats.h"

#include <cstdio>
#include <unordered_set>

#include "xml/serializer.h"

namespace csxa::xml {

namespace {

void Walk(const Node& node, int depth, DocumentStats* stats,
          std::unordered_set<std::string>* tags, size_t* depth_sum) {
  if (node.is_text()) {
    stats->text_nodes += 1;
    stats->text_bytes += node.value().size();
    return;
  }
  stats->elements += 1;
  *depth_sum += static_cast<size_t>(depth);
  if (depth > stats->max_depth) stats->max_depth = depth;
  tags->insert(node.tag());
  for (const auto& child : node.children()) {
    Walk(*child, depth + 1, stats, tags, depth_sum);
  }
}

}  // namespace

DocumentStats ComputeStats(const Node& root) {
  DocumentStats stats;
  std::unordered_set<std::string> tags;
  size_t depth_sum = 0;
  Walk(root, 1, &stats, &tags, &depth_sum);
  stats.distinct_tags = tags.size();
  stats.size_bytes = Serialize(root).size();
  stats.avg_depth = stats.elements == 0
                        ? 0.0
                        : static_cast<double>(depth_sum) /
                              static_cast<double>(stats.elements);
  return stats;
}

std::string DocumentStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "size=%zuB text=%zuB max_depth=%d avg_depth=%.1f tags=%zu "
                "text_nodes=%zu elements=%zu",
                size_bytes, text_bytes, max_depth, avg_depth, distinct_tags,
                text_nodes, elements);
  return buf;
}

}  // namespace csxa::xml
