#ifndef CSXA_XML_NODE_H_
#define CSXA_XML_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "xml/event.h"

namespace csxa::xml {

/// DOM-lite node. The library's streaming paths never materialize one of
/// these for the input document (the SOE constraint); the DOM exists for
/// document construction, the test oracle, and result reassembly checks.
class Node {
 public:
  enum class Kind { kElement, kText };

  /// Creates an element node.
  static std::unique_ptr<Node> Element(std::string tag);
  /// Creates a text node.
  static std::unique_ptr<Node> Text(std::string value);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Tag name (elements) — empty for text nodes.
  const std::string& tag() const { return tag_; }
  /// Character data (text nodes) — empty for elements.
  const std::string& value() const { return value_; }

  Node* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// Appends a child and returns a raw pointer to it (ownership stays here).
  Node* AppendChild(std::unique_ptr<Node> child);
  /// Convenience: appends `<tag>` and returns it.
  Node* AppendElement(std::string tag);
  /// Convenience: appends a text child.
  Node* AppendText(std::string value);
  /// Convenience: appends `<tag>value</tag>` and returns the element.
  Node* AppendLeaf(std::string tag, std::string value);

  /// Depth with root = 1 (text children of the root have depth 2).
  int Depth() const;

  /// Number of element descendants including self (elements only).
  size_t CountElements() const;
  /// Total length of all text values in this subtree.
  size_t TextLength() const;

  /// Concatenated text content of the subtree (XPath string value).
  std::string StringValue() const;

  /// Emits this subtree as open/value/close events.
  void Emit(EventHandler* handler, int depth = 1) const;

  /// Deep structural equality (tag/value and children, in order).
  bool DeepEquals(const Node& other) const;

  /// Deep copy of the subtree.
  std::unique_ptr<Node> Clone() const;

 private:
  explicit Node(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string tag_;
  std::string value_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_NODE_H_
