#ifndef CSXA_XPATH_CONTAINMENT_H_
#define CSXA_XPATH_CONTAINMENT_H_

#include "xpath/ast.h"

namespace csxa::xpath {

/// Conservative containment test for XP{[],*,//}: returns true when `outer`
/// is guaranteed to contain `inner` (every node selected by `inner` on any
/// document is also selected by `outer`).
///
/// Containment for this fragment is co-NP complete [MiS02]; we implement the
/// standard *homomorphism* sufficient condition: `outer` contains `inner`
/// if there is a homomorphism from outer's tree pattern into inner's tree
/// pattern (root to root, output to output, labels compatible, child edges
/// onto child edges, descendant edges onto downward paths). A `false`
/// answer therefore means "not provably contained". This is the static
/// analysis Section 3.3 suggests for eliminating redundant rules.
bool Contains(const Path& outer, const Path& inner);

/// True when the homomorphism check proves both directions (equivalence).
bool Equivalent(const Path& a, const Path& b);

}  // namespace csxa::xpath

#endif  // CSXA_XPATH_CONTAINMENT_H_
