#ifndef CSXA_XPATH_AST_H_
#define CSXA_XPATH_AST_H_

#include <string>
#include <vector>

namespace csxa::xpath {

/// Axis linking a step to the previous one. The paper's fragment XP{[],*,//}
/// supports only child (`/`) and descendant-or-self-based descendant (`//`).
enum class Axis {
  kChild,       ///< `/`
  kDescendant,  ///< `//`
};

/// Comparison operator at the end of a predicate path. kExists corresponds
/// to a bare existence predicate like `[Protocol]`.
enum class CompareOp {
  kExists,
  kEq,   ///< `=`
  kNe,   ///< `!=`
  kLt,   ///< `<`
  kLe,   ///< `<=`
  kGt,   ///< `>`
  kGe,   ///< `>=`
};

const char* CompareOpName(CompareOp op);

/// Compares a node's string value against a literal using XPath-like
/// coercion: numeric comparison when both sides parse as numbers, string
/// comparison otherwise.
bool EvalCompare(CompareOp op, const std::string& node_value,
                 const std::string& literal);

struct Step;

/// Relative path inside a predicate, optionally ending with a comparison:
/// `[MedActs//RPhys = USER]`, `[Protocol]`, `[//Cholesterol > 250]`.
struct Predicate {
  /// Steps of the predicate path, relative to the step it decorates. The
  /// first step's axis may be kChild (`[a...]`) or kDescendant (`[//a...]`).
  std::vector<Step> steps;
  CompareOp op = CompareOp::kExists;
  std::string literal;  ///< Right-hand side when op != kExists.

  std::string ToString() const;
};

/// One location step: axis, node test (name or wildcard) and predicates.
struct Step {
  Axis axis = Axis::kChild;
  std::string name;      ///< Element name; empty when wildcard is true.
  bool wildcard = false; ///< `*`.
  std::vector<Predicate> predicates;

  /// True if `tag` matches this step's node test.
  bool Matches(const std::string& tag) const {
    return wildcard || name == tag;
  }

  std::string ToString() const;
};

/// An absolute XPath expression in XP{[],*,//}: `/a/b[c=1]//d`.
struct Path {
  std::vector<Step> steps;

  std::string ToString() const;

  /// Total number of predicates, including predicates nested in predicate
  /// paths (used by the rule generator and complexity accounting).
  size_t CountPredicates() const;

  /// True if any step (or nested predicate step) uses the descendant axis.
  bool UsesDescendantAxis() const;
};

}  // namespace csxa::xpath

#endif  // CSXA_XPATH_AST_H_
