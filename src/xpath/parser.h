#ifndef CSXA_XPATH_PARSER_H_
#define CSXA_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace csxa::xpath {

/// Recursive-descent parser for the XP{[],*,//} fragment used by access
/// rules and queries (Section 2 of the paper):
///
///   path      := ('/' | '//') step ( ('/' | '//') step )*
///   step      := (NAME | '*') predicate*
///   predicate := '[' relpath ( op literal )? ']'
///   relpath   := '//'? step ( ('/' | '//') step )*
///   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
///   literal   := NUMBER | '"'...'"' | '\''...'\'' | bare-word
///
/// Bare-word literals match the paper's notation (`[Type=G3]`,
/// `[RPhys != USER]`). Nested predicates inside predicate paths are
/// accepted (they are part of the fragment).
Result<Path> ParsePath(std::string_view text);

}  // namespace csxa::xpath

#endif  // CSXA_XPATH_PARSER_H_
