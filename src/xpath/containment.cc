#include "xpath/containment.h"

#include <memory>
#include <vector>

namespace csxa::xpath {

namespace {

/// Tree-pattern node. The navigational spine and all predicate paths of an
/// XPath expression are flattened into one pattern tree.
struct PatternNode {
  std::string label;        // empty == wildcard
  bool wildcard = false;
  bool via_descendant = false;  // edge from parent is //
  CompareOp op = CompareOp::kExists;
  std::string literal;
  bool is_output = false;   // last step of the navigational spine
  std::vector<std::unique_ptr<PatternNode>> children;
};

PatternNode* AddSteps(PatternNode* parent,
                      const std::vector<Step>& steps, bool mark_output);

void AddPredicates(PatternNode* node, const Step& step) {
  for (const Predicate& pred : step.predicates) {
    PatternNode* leaf = AddSteps(node, pred.steps, /*mark_output=*/false);
    leaf->op = pred.op;
    leaf->literal = pred.literal;
  }
}

PatternNode* AddSteps(PatternNode* parent,
                      const std::vector<Step>& steps, bool mark_output) {
  PatternNode* cur = parent;
  for (size_t i = 0; i < steps.size(); ++i) {
    auto child = std::make_unique<PatternNode>();
    child->label = steps[i].name;
    child->wildcard = steps[i].wildcard;
    child->via_descendant = steps[i].axis == Axis::kDescendant;
    PatternNode* raw = child.get();
    cur->children.push_back(std::move(child));
    AddPredicates(raw, steps[i]);
    cur = raw;
  }
  if (mark_output) cur->is_output = true;
  return cur;
}

std::unique_ptr<PatternNode> BuildPattern(const Path& path) {
  auto root = std::make_unique<PatternNode>();  // virtual document root
  root->wildcard = true;
  AddSteps(root.get(), path.steps, /*mark_output=*/true);
  return root;
}

bool LabelCompatible(const PatternNode& p, const PatternNode& q) {
  if (p.wildcard) return true;
  return !q.wildcard && p.label == q.label;
}

/// A comparison constraint on p is satisfied by mapping onto q only if q
/// carries an identical (or strictly implying) constraint. We require
/// textual identity except that an existence constraint on p is implied by
/// any constraint on q.
bool ConstraintCompatible(const PatternNode& p, const PatternNode& q) {
  if (p.op == CompareOp::kExists) return true;
  return p.op == q.op && p.literal == q.literal;
}

bool MapsTo(const PatternNode& p, const PatternNode& q);

/// Can pattern node `p` (with its whole subtree) map onto `q` or any
/// descendant of `q`?
bool MapsToDescendantOrSelf(const PatternNode& p, const PatternNode& q) {
  if (MapsTo(p, q)) return true;
  for (const auto& child : q.children) {
    if (MapsToDescendantOrSelf(p, *child)) return true;
  }
  return false;
}

/// Homomorphism from p's subtree rooted at p onto q (p itself mapped to q).
bool MapsTo(const PatternNode& p, const PatternNode& q) {
  if (!LabelCompatible(p, q)) return false;
  if (!ConstraintCompatible(p, q)) return false;
  if (p.is_output && !q.is_output) return false;
  for (const auto& pc : p.children) {
    bool matched = false;
    if (pc->via_descendant) {
      // // edge: pc may map anywhere strictly below q.
      for (const auto& qc : q.children) {
        if (MapsToDescendantOrSelf(*pc, *qc)) {
          matched = true;
          break;
        }
      }
    } else {
      // / edge: pc must map onto a direct child reached by a / edge — a
      // child edge mapped onto a // edge would wrongly prove
      // Contains(/a/b, /a//b).
      for (const auto& qc : q.children) {
        if (!qc->via_descendant && MapsTo(*pc, *qc)) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace

bool Contains(const Path& outer, const Path& inner) {
  auto p = BuildPattern(outer);
  auto q = BuildPattern(inner);
  return MapsTo(*p, *q);
}

bool Equivalent(const Path& a, const Path& b) {
  return Contains(a, b) && Contains(b, a);
}

}  // namespace csxa::xpath
