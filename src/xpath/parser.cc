#include "xpath/parser.h"

#include <cctype>

namespace csxa::xpath {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Path> ParseAbsolute() {
    Path path;
    SkipSpace();
    if (!Peek('/')) {
      return Status::InvalidArgument("XPath must start with '/' or '//'");
    }
    while (!AtEnd()) {
      SkipSpace();
      if (AtEnd()) break;
      Axis axis;
      if (!ParseAxis(&axis)) {
        return Status::InvalidArgument(ErrorAt("expected '/' or '//'"));
      }
      Step step;
      step.axis = axis;
      CSXA_RETURN_NOT_OK(ParseStep(&step));
      path.steps.push_back(std::move(step));
      SkipSpace();
      if (AtEnd()) break;
      if (!Peek('/')) {
        return Status::InvalidArgument(ErrorAt("unexpected trailing input"));
      }
    }
    if (path.steps.empty()) {
      return Status::InvalidArgument("empty XPath expression");
    }
    return path;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Cur() const { return text_[pos_]; }
  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string ErrorAt(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_) + " in '" +
           std::string(text_) + "'";
  }

  /// Parses '/' or '//' and reports which. Returns false if neither.
  bool ParseAxis(Axis* axis) {
    if (!Peek('/')) return false;
    ++pos_;
    if (Peek('/')) {
      ++pos_;
      *axis = Axis::kDescendant;
    } else {
      *axis = Axis::kChild;
    }
    return true;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Status ParseStep(Step* step) {
    SkipSpace();
    if (AtEnd()) {
      return Status::InvalidArgument(ErrorAt("expected node test"));
    }
    if (Peek('*')) {
      step->wildcard = true;
      ++pos_;
    } else {
      size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      if (pos_ == start) {
        return Status::InvalidArgument(ErrorAt("expected element name or '*'"));
      }
      step->name = std::string(text_.substr(start, pos_ - start));
    }
    SkipSpace();
    while (Peek('[')) {
      Predicate pred;
      CSXA_RETURN_NOT_OK(ParsePredicate(&pred));
      step->predicates.push_back(std::move(pred));
      SkipSpace();
    }
    return Status::OK();
  }

  Status ParsePredicate(Predicate* pred) {
    ++pos_;  // consume '['
    SkipSpace();
    // Relative path: optional leading '//', then steps.
    Axis axis = Axis::kChild;
    if (Peek('/')) {
      Axis parsed;
      if (!ParseAxis(&parsed) || parsed != Axis::kDescendant) {
        return Status::InvalidArgument(
            ErrorAt("predicate path may start with '//' but not '/'"));
      }
      axis = Axis::kDescendant;
    }
    while (true) {
      Step step;
      step.axis = axis;
      CSXA_RETURN_NOT_OK(ParseStep(&step));
      pred->steps.push_back(std::move(step));
      SkipSpace();
      if (!Peek('/')) break;
      if (!ParseAxis(&axis)) {
        return Status::InvalidArgument(ErrorAt("expected '/' or '//'"));
      }
    }
    SkipSpace();
    // Optional comparison.
    if (!AtEnd() && Cur() != ']') {
      CSXA_RETURN_NOT_OK(ParseCompare(pred));
      SkipSpace();
    }
    if (!Peek(']')) {
      return Status::InvalidArgument(ErrorAt("expected ']'"));
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseCompare(Predicate* pred) {
    if (Peek('=')) {
      pred->op = CompareOp::kEq;
      ++pos_;
    } else if (Peek('!')) {
      ++pos_;
      if (!Peek('=')) {
        return Status::InvalidArgument(ErrorAt("expected '=' after '!'"));
      }
      ++pos_;
      pred->op = CompareOp::kNe;
    } else if (Peek('<')) {
      ++pos_;
      if (Peek('=')) {
        ++pos_;
        pred->op = CompareOp::kLe;
      } else {
        pred->op = CompareOp::kLt;
      }
    } else if (Peek('>')) {
      ++pos_;
      if (Peek('=')) {
        ++pos_;
        pred->op = CompareOp::kGe;
      } else {
        pred->op = CompareOp::kGt;
      }
    } else {
      return Status::InvalidArgument(ErrorAt("expected comparison operator"));
    }
    SkipSpace();
    return ParseLiteral(&pred->literal);
  }

  Status ParseLiteral(std::string* out) {
    if (AtEnd()) {
      return Status::InvalidArgument(ErrorAt("expected literal"));
    }
    char c = Cur();
    if (c == '"' || c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != c) ++pos_;
      if (AtEnd()) {
        return Status::InvalidArgument(ErrorAt("unterminated string literal"));
      }
      *out = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      return Status::OK();
    }
    // Bare word / number: read until ']' or whitespace.
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ']' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(ErrorAt("expected literal"));
    }
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Path> ParsePath(std::string_view text) {
  Parser parser(text);
  return parser.ParseAbsolute();
}

}  // namespace csxa::xpath
