#include "xpath/ast.h"

#include <cstdlib>
#include <cstring>

namespace csxa::xpath {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kExists:
      return "";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

bool EvalCompare(CompareOp op, const std::string& node_value,
                 const std::string& literal) {
  double a = 0.0;
  double b = 0.0;
  int cmp;
  if (ParseNumber(node_value, &a) && ParseNumber(literal, &b)) {
    cmp = (a < b) ? -1 : (a > b) ? 1 : 0;
  } else {
    int c = node_value.compare(literal);
    cmp = (c < 0) ? -1 : (c > 0) ? 1 : 0;
  }
  switch (op) {
    case CompareOp::kExists:
      return true;
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

std::string Step::ToString() const {
  std::string out = wildcard ? "*" : name;
  for (const Predicate& pred : predicates) out += pred.ToString();
  return out;
}

std::string Predicate::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i == 0) {
      if (steps[i].axis == Axis::kDescendant) out += "//";
    } else {
      out += steps[i].axis == Axis::kDescendant ? "//" : "/";
    }
    out += steps[i].ToString();
  }
  if (op != CompareOp::kExists) {
    out += CompareOpName(op);
    out += literal;
  }
  out += "]";
  return out;
}

std::string Path::ToString() const {
  std::string out;
  for (const Step& step : steps) {
    out += step.axis == Axis::kDescendant ? "//" : "/";
    out += step.ToString();
  }
  return out;
}

namespace {

size_t CountPredicatesInSteps(const std::vector<Step>& steps) {
  size_t count = 0;
  for (const Step& step : steps) {
    count += step.predicates.size();
    for (const Predicate& pred : step.predicates) {
      count += CountPredicatesInSteps(pred.steps);
    }
  }
  return count;
}

bool UsesDescendantInSteps(const std::vector<Step>& steps) {
  for (const Step& step : steps) {
    if (step.axis == Axis::kDescendant) return true;
    for (const Predicate& pred : step.predicates) {
      if (UsesDescendantInSteps(pred.steps)) return true;
    }
  }
  return false;
}

}  // namespace

size_t Path::CountPredicates() const {
  return CountPredicatesInSteps(steps);
}

bool Path::UsesDescendantAxis() const { return UsesDescendantInSteps(steps); }

}  // namespace csxa::xpath
