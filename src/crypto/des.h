#ifndef CSXA_CRYPTO_DES_H_
#define CSXA_CRYPTO_DES_H_

#include <array>
#include <cstdint>

namespace csxa::crypto {

/// 8-byte cipher block, the paper's unit of encryption (Appendix A:
/// "subdivided in blocks of 8 bytes ... the block is the unit of
/// encryption").
using Block64 = std::array<uint8_t, 8>;

/// Single DES (FIPS 46-3), implemented from scratch from the standard's
/// permutation and S-box tables. The per-block transform runs on
/// precomputed byte-indexed permutation tables and combined S/P boxes
/// (generated at startup from the FIPS tables, so the known-answer tests
/// pin both); the bit-by-bit reference permutation survives only in key
/// scheduling. Kept for completeness and as the building block of 3DES;
/// use TripleDes for actual document protection.
class Des {
 public:
  /// `key` is 8 bytes; parity bits are ignored as in the standard.
  explicit Des(const Block64& key);

  Block64 EncryptBlock(const Block64& plain) const;
  Block64 DecryptBlock(const Block64& cipher) const;

  /// Allocation-free transforms of a block held as a big-endian uint64.
  uint64_t EncryptU64(uint64_t block) const;
  uint64_t DecryptU64(uint64_t block) const;

 private:
  friend class TripleDes;

  /// The 16 Feistel rounds without IP/FP: maps an IP-domain state
  /// (L0 << 32 | R0) to the pre-output (R16 << 32 | L16). Exposed to
  /// TripleDes so the inner IP∘FP pairs of EDE cancel.
  uint64_t Rounds(uint64_t state, bool decrypt) const;

  std::array<uint64_t, 16> subkeys_;  // 48-bit round keys
};

/// Triple-DES in EDE mode with a 24-byte key (K1,K2,K3), the cipher used by
/// the paper's prototype (hardwired 3DES on the Axalto smart card).
class TripleDes {
 public:
  using Key = std::array<uint8_t, 24>;

  explicit TripleDes(const Key& key);

  Block64 EncryptBlock(const Block64& plain) const;
  Block64 DecryptBlock(const Block64& cipher) const;

  /// Big-endian-uint64 block transforms: the hot-path API (one IP and one
  /// FP per 3DES operation instead of three of each, no byte shuffling).
  uint64_t EncryptU64(uint64_t block) const;
  uint64_t DecryptU64(uint64_t block) const;

 private:
  Des des1_, des2_, des3_;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_DES_H_
