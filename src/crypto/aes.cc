#include "crypto/aes.h"

#include <cstring>

#include "crypto/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#define CSXA_AESNI_POSSIBLE 1
#include <immintrin.h>
#endif

namespace csxa::crypto {

namespace {

// ---- GF(2^8) tables, generated from the field definition (x^8 + x^4 +
// x^3 + x + 1) rather than transcribed, so a typo cannot silently weaken
// the cipher; the FIPS-197 known-answer test pins the result.

struct AesTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];
  uint8_t mul2[256];

  AesTables() {
    // Exp/log over the generator 0x03.
    uint8_t exp[256], log[256] = {0};
    uint8_t x = 1;
    for (int i = 0; i < 256; ++i) {
      exp[i] = x;
      log[x] = static_cast<uint8_t>(i);
      uint8_t x2 = static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<uint8_t>(x2 ^ x);  // multiply by 0x03
    }
    for (int i = 0; i < 256; ++i) {
      uint8_t a = static_cast<uint8_t>(i);
      uint8_t inv = (a == 0) ? 0 : exp[255 - log[a]];
      auto rotl8 = [](uint8_t v, int s) {
        return static_cast<uint8_t>((v << s) | (v >> (8 - s)));
      };
      sbox[i] = static_cast<uint8_t>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^
                                     rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
      mul2[i] = static_cast<uint8_t>((i << 1) ^ ((i & 0x80) ? 0x1b : 0));
    }
    for (int i = 0; i < 256; ++i) inv_sbox[sbox[i]] = static_cast<uint8_t>(i);
  }
};

const AesTables& Tables() {
  static const AesTables tables;
  return tables;
}

inline void AddRoundKey(uint8_t s[16], const uint8_t rk[16]) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

// State layout follows the FIPS input order: state[r][c] = s[4c + r].
inline void ShiftRows(uint8_t s[16]) {
  uint8_t t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
  }
  std::memcpy(s, t, 16);
}

inline void InvShiftRows(uint8_t s[16]) {
  uint8_t t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * ((c + r) % 4) + r] = s[4 * c + r];
  }
  std::memcpy(s, t, 16);
}

inline void MixColumns(const AesTables& t, uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    uint8_t x0 = t.mul2[a0], x1 = t.mul2[a1], x2 = t.mul2[a2],
            x3 = t.mul2[a3];
    col[0] = static_cast<uint8_t>(x0 ^ (x1 ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<uint8_t>(a0 ^ x1 ^ (x2 ^ a2) ^ a3);
    col[2] = static_cast<uint8_t>(a0 ^ a1 ^ x2 ^ (x3 ^ a3));
    col[3] = static_cast<uint8_t>((x0 ^ a0) ^ a1 ^ a2 ^ x3);
  }
}

inline void InvMixColumn(const AesTables& t, uint8_t col[4]) {
  auto m = [&t](uint8_t a, int k) {
    uint8_t x2 = t.mul2[a], x4 = t.mul2[x2], x8 = t.mul2[x4];
    switch (k) {
      case 9: return static_cast<uint8_t>(x8 ^ a);
      case 11: return static_cast<uint8_t>(x8 ^ x2 ^ a);
      case 13: return static_cast<uint8_t>(x8 ^ x4 ^ a);
      default: return static_cast<uint8_t>(x8 ^ x4 ^ x2);  // 14
    }
  };
  uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
  col[0] = static_cast<uint8_t>(m(a0, 14) ^ m(a1, 11) ^ m(a2, 13) ^ m(a3, 9));
  col[1] = static_cast<uint8_t>(m(a0, 9) ^ m(a1, 14) ^ m(a2, 11) ^ m(a3, 13));
  col[2] = static_cast<uint8_t>(m(a0, 13) ^ m(a1, 9) ^ m(a2, 14) ^ m(a3, 11));
  col[3] = static_cast<uint8_t>(m(a0, 11) ^ m(a1, 13) ^ m(a2, 9) ^ m(a3, 14));
}

inline void InvMixColumns(const AesTables& t, uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) InvMixColumn(t, s + 4 * c);
}

/// 16-byte position tweak of absolute block index `block`: the big-endian
/// 64-bit byte position occupies bytes [8, 16), bytes [0, 8) are zero.
inline void XorTweak(uint8_t block16[16], uint64_t block) {
  const uint64_t pos = block * 16;
  for (int i = 0; i < 8; ++i) {
    block16[8 + i] ^= static_cast<uint8_t>(pos >> (56 - 8 * i));
  }
}

#ifdef CSXA_AESNI_POSSIBLE

__attribute__((target("aes,sse2"))) void ComputeInvRoundKeysNi(
    const std::array<std::array<uint8_t, 16>, 11>& rk,
    std::array<std::array<uint8_t, 16>, 11>* drk) {
  for (int r = 0; r < 11; ++r) {
    __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[r].data()));
    if (r != 0 && r != 10) k = _mm_aesimc_si128(k);
    _mm_storeu_si128(reinterpret_cast<__m128i*>((*drk)[r].data()), k);
  }
}

__attribute__((target("aes,sse2"))) inline __m128i TweakNi(uint64_t block) {
  // Memory bytes [8, 16) hold the big-endian byte position, which is the
  // byte-swapped position in the high lane of _mm_set_epi64x.
  return _mm_set_epi64x(
      static_cast<long long>(__builtin_bswap64(block * 16)), 0);
}

__attribute__((target("aes,sse2"))) void EncryptSegmentNi(
    const std::array<std::array<uint8_t, 16>, 11>& rk, uint8_t* data,
    size_t n, uint64_t first_block) {
  __m128i k[11];
  for (int r = 0; r < 11; ++r) {
    k[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[r].data()));
  }
  __m128i* p = reinterpret_cast<__m128i*>(data);
  size_t blocks = n / 16;
  size_t i = 0;
  // Four blocks in flight to cover the aesenc latency.
  for (; i + 4 <= blocks; i += 4) {
    __m128i x0 = _mm_xor_si128(_mm_loadu_si128(p + i),
                               TweakNi(first_block + i));
    __m128i x1 = _mm_xor_si128(_mm_loadu_si128(p + i + 1),
                               TweakNi(first_block + i + 1));
    __m128i x2 = _mm_xor_si128(_mm_loadu_si128(p + i + 2),
                               TweakNi(first_block + i + 2));
    __m128i x3 = _mm_xor_si128(_mm_loadu_si128(p + i + 3),
                               TweakNi(first_block + i + 3));
    x0 = _mm_xor_si128(x0, k[0]);
    x1 = _mm_xor_si128(x1, k[0]);
    x2 = _mm_xor_si128(x2, k[0]);
    x3 = _mm_xor_si128(x3, k[0]);
    for (int r = 1; r < 10; ++r) {
      x0 = _mm_aesenc_si128(x0, k[r]);
      x1 = _mm_aesenc_si128(x1, k[r]);
      x2 = _mm_aesenc_si128(x2, k[r]);
      x3 = _mm_aesenc_si128(x3, k[r]);
    }
    _mm_storeu_si128(p + i, _mm_aesenclast_si128(x0, k[10]));
    _mm_storeu_si128(p + i + 1, _mm_aesenclast_si128(x1, k[10]));
    _mm_storeu_si128(p + i + 2, _mm_aesenclast_si128(x2, k[10]));
    _mm_storeu_si128(p + i + 3, _mm_aesenclast_si128(x3, k[10]));
  }
  for (; i < blocks; ++i) {
    __m128i x = _mm_xor_si128(_mm_loadu_si128(p + i),
                              TweakNi(first_block + i));
    x = _mm_xor_si128(x, k[0]);
    for (int r = 1; r < 10; ++r) x = _mm_aesenc_si128(x, k[r]);
    _mm_storeu_si128(p + i, _mm_aesenclast_si128(x, k[10]));
  }
}

__attribute__((target("aes,sse2"))) void DecryptSegmentNi(
    const std::array<std::array<uint8_t, 16>, 11>& drk, uint8_t* data,
    size_t n, uint64_t first_block) {
  __m128i k[11];
  for (int r = 0; r < 11; ++r) {
    k[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk[r].data()));
  }
  __m128i* p = reinterpret_cast<__m128i*>(data);
  size_t blocks = n / 16;
  size_t i = 0;
  for (; i + 4 <= blocks; i += 4) {
    __m128i x0 = _mm_xor_si128(_mm_loadu_si128(p + i), k[10]);
    __m128i x1 = _mm_xor_si128(_mm_loadu_si128(p + i + 1), k[10]);
    __m128i x2 = _mm_xor_si128(_mm_loadu_si128(p + i + 2), k[10]);
    __m128i x3 = _mm_xor_si128(_mm_loadu_si128(p + i + 3), k[10]);
    for (int r = 9; r > 0; --r) {
      x0 = _mm_aesdec_si128(x0, k[r]);
      x1 = _mm_aesdec_si128(x1, k[r]);
      x2 = _mm_aesdec_si128(x2, k[r]);
      x3 = _mm_aesdec_si128(x3, k[r]);
    }
    x0 = _mm_aesdeclast_si128(x0, k[0]);
    x1 = _mm_aesdeclast_si128(x1, k[0]);
    x2 = _mm_aesdeclast_si128(x2, k[0]);
    x3 = _mm_aesdeclast_si128(x3, k[0]);
    _mm_storeu_si128(p + i, _mm_xor_si128(x0, TweakNi(first_block + i)));
    _mm_storeu_si128(p + i + 1,
                     _mm_xor_si128(x1, TweakNi(first_block + i + 1)));
    _mm_storeu_si128(p + i + 2,
                     _mm_xor_si128(x2, TweakNi(first_block + i + 2)));
    _mm_storeu_si128(p + i + 3,
                     _mm_xor_si128(x3, TweakNi(first_block + i + 3)));
  }
  for (; i < blocks; ++i) {
    __m128i x = _mm_xor_si128(_mm_loadu_si128(p + i), k[10]);
    for (int r = 9; r > 0; --r) x = _mm_aesdec_si128(x, k[r]);
    x = _mm_aesdeclast_si128(x, k[0]);
    _mm_storeu_si128(p + i, _mm_xor_si128(x, TweakNi(first_block + i)));
  }
}

#endif  // CSXA_AESNI_POSSIBLE

bool UseAesNi() { return CpuHasAesNi() && !ForcePortableCrypto(); }

}  // namespace

bool Aes128::HardwareAvailable() {
#ifdef CSXA_AESNI_POSSIBLE
  return UseAesNi();
#else
  return false;
#endif
}

Aes128::Aes128(const Key& key) {
  const AesTables& t = Tables();
  // FIPS-197 key expansion: 44 words; rk_[r] holds words 4r..4r+3 as raw
  // bytes, which is exactly the byte order AddRoundKey consumes.
  uint8_t w[44][4];
  std::memcpy(w, key.data(), 16);
  uint8_t rcon = 0x01;
  for (int i = 4; i < 44; ++i) {
    uint8_t temp[4] = {w[i - 1][0], w[i - 1][1], w[i - 1][2], w[i - 1][3]};
    if (i % 4 == 0) {
      uint8_t first = temp[0];
      temp[0] = static_cast<uint8_t>(t.sbox[temp[1]] ^ rcon);
      temp[1] = t.sbox[temp[2]];
      temp[2] = t.sbox[temp[3]];
      temp[3] = t.sbox[first];
      rcon = t.mul2[rcon];
    }
    for (int b = 0; b < 4; ++b) w[i][b] = w[i - 4][b] ^ temp[b];
  }
  for (int r = 0; r < 11; ++r) std::memcpy(rk_[r].data(), w[4 * r], 16);
#ifdef CSXA_AESNI_POSSIBLE
  if (UseAesNi()) {
    ComputeInvRoundKeysNi(rk_, &drk_);
    have_drk_ = true;
  }
#endif
}

void Aes128::EncryptBlockPortable(const uint8_t in[16],
                                  uint8_t out[16]) const {
  const AesTables& t = Tables();
  uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, rk_[0].data());
  for (int round = 1; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) s[i] = t.sbox[s[i]];
    ShiftRows(s);
    MixColumns(t, s);
    AddRoundKey(s, rk_[round].data());
  }
  for (int i = 0; i < 16; ++i) s[i] = t.sbox[s[i]];
  ShiftRows(s);
  AddRoundKey(s, rk_[10].data());
  std::memcpy(out, s, 16);
}

void Aes128::DecryptBlockPortable(const uint8_t in[16],
                                  uint8_t out[16]) const {
  const AesTables& t = Tables();
  uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, rk_[10].data());
  for (int round = 9; round > 0; --round) {
    InvShiftRows(s);
    for (int i = 0; i < 16; ++i) s[i] = t.inv_sbox[s[i]];
    AddRoundKey(s, rk_[round].data());
    InvMixColumns(t, s);
  }
  InvShiftRows(s);
  for (int i = 0; i < 16; ++i) s[i] = t.inv_sbox[s[i]];
  AddRoundKey(s, rk_[0].data());
  std::memcpy(out, s, 16);
}

void Aes128::EncryptSegmentTweaked(uint8_t* data, size_t n,
                                   uint64_t first_block,
                                   bool allow_hardware) const {
#ifdef CSXA_AESNI_POSSIBLE
  if (allow_hardware && UseAesNi()) {
    EncryptSegmentNi(rk_, data, n, first_block);
    return;
  }
#else
  (void)allow_hardware;
#endif
  for (size_t off = 0; off + 16 <= n; off += 16) {
    XorTweak(data + off, first_block + off / 16);
    EncryptBlockPortable(data + off, data + off);
  }
}

void Aes128::DecryptSegmentTweaked(uint8_t* data, size_t n,
                                   uint64_t first_block,
                                   bool allow_hardware) const {
#ifdef CSXA_AESNI_POSSIBLE
  if (allow_hardware && UseAesNi() && have_drk_) {
    DecryptSegmentNi(drk_, data, n, first_block);
    return;
  }
#else
  (void)allow_hardware;
#endif
  for (size_t off = 0; off + 16 <= n; off += 16) {
    DecryptBlockPortable(data + off, data + off);
    XorTweak(data + off, first_block + off / 16);
  }
}

}  // namespace csxa::crypto
