#include "crypto/secure_store.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"

namespace csxa::crypto {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Rebuilds one chunk's Merkle tree over ciphertext (the terminal-side
/// hashing of Figure F1; a real terminal would cache these trees).
MerkleTree BuildChunkTree(const std::vector<uint8_t>& ciphertext,
                          uint64_t chunk_begin, uint64_t chunk_end,
                          uint32_t frags, uint32_t fragment_size) {
  std::vector<Sha1Digest> leaves;
  leaves.reserve(frags);
  for (uint32_t f = 0; f < frags; ++f) {
    uint64_t fb = chunk_begin + uint64_t{f} * fragment_size;
    if (fb >= chunk_end) {
      leaves.push_back(MerkleTree::EmptyLeaf());
      continue;
    }
    uint64_t fe = std::min<uint64_t>(fb + fragment_size, chunk_end);
    leaves.push_back(Sha1::Hash(ciphertext.data() + fb, fe - fb));
  }
  return MerkleTree::Build(std::move(leaves));
}

Sha1Digest BindChunkIndex(uint64_t chunk_index, const Sha1Digest& root) {
  // ChunkDigest = SHA1(chunk_index || merkle_root): the chunk identifier
  // "reflecting its position in the document" (Section 6), which makes
  // whole-chunk substitution detectable.
  uint8_t prefix[8];
  for (int i = 0; i < 8; ++i) {
    prefix[i] = static_cast<uint8_t>(chunk_index >> (56 - 8 * i));
  }
  Sha1 hasher;
  hasher.Update(prefix, 8);
  hasher.Update(root.data(), root.size());
  return hasher.Finish();
}

}  // namespace

Status ChunkLayout::Validate(uint32_t block_size) const {
  if (chunk_size == 0 || fragment_size == 0) {
    return Status::InvalidArgument("chunk/fragment size must be positive");
  }
  if (chunk_size % block_size != 0 || fragment_size % block_size != 0) {
    return Status::InvalidArgument(
        "chunk and fragment sizes must be multiples of the cipher block (" +
        std::to_string(block_size) + " bytes)");
  }
  if (chunk_size % fragment_size != 0) {
    return Status::InvalidArgument("fragment size must divide chunk size");
  }
  if (!IsPowerOfTwo(fragments_per_chunk())) {
    return Status::InvalidArgument(
        "fragments per chunk must be a power of two (Merkle tree shape)");
  }
  return Status::OK();
}

uint64_t RangeResponse::WireBytes() const {
  uint64_t bytes = ciphertext.size();
  for (const ChunkMaterial& chunk : chunks) {
    bytes += chunk.proof.size() * sizeof(Sha1Digest);
    bytes += chunk.encrypted_digest.size();
    if (chunk.has_prefix_state) bytes += 92;  // h[5] + length + buffer tail
  }
  return bytes;
}

std::vector<uint8_t> SoeDecryptor::SealDigest(const CipherBackend& backend,
                                              uint64_t chunk_index,
                                              const Sha1Digest& root,
                                              uint64_t total_blocks,
                                              uint32_t version) {
  const uint32_t bs = backend.block_size();
  Sha1Digest bound = BindChunkIndex(chunk_index, root);
  std::vector<uint8_t> padded(DigestCipherBytes(bs), 0);
  std::copy(bound.begin(), bound.end(), padded.begin());
  // The document version follows the hash: replaying a chunk (and its
  // self-consistent digest) from a stale store state decrypts to the old
  // version number and is rejected.
  for (int i = 0; i < 4; ++i) {
    padded[20 + i] = static_cast<uint8_t>(version >> (24 - 8 * i));
  }
  // Digests live in their own position space beyond the document blocks so
  // that a digest ciphertext can never be replayed as document content or
  // as another chunk's digest.
  backend.EncryptSegment(padded.data(), padded.size(),
                         total_blocks + chunk_index * DigestBlocks(bs));
  return padded;
}

Result<SecureDocumentStore> SecureDocumentStore::Build(
    const std::vector<uint8_t>& plaintext, const TripleDes::Key& key,
    const ChunkLayout& layout, uint32_t version, CipherBackendKind backend) {
  std::unique_ptr<const CipherBackend> cipher = MakeCipherBackend(backend, key);
  const uint32_t bs = cipher->block_size();
  CSXA_RETURN_NOT_OK(layout.Validate(bs));
  SecureDocumentStore store;
  store.layout_ = layout;
  store.plaintext_size_ = plaintext.size();
  store.version_ = version;
  store.backend_ = backend;
  store.block_size_ = bs;

  // Zero-pad to the cipher block and encrypt the document in one
  // whole-segment call (the backend pipelines across blocks).
  store.ciphertext_ = plaintext;
  store.ciphertext_.resize((plaintext.size() + bs - 1) / bs * bs, 0);
  cipher->EncryptSegment(store.ciphertext_.data(), store.ciphertext_.size(),
                         0);

  const uint64_t size = store.ciphertext_.size();
  const uint64_t total_blocks = size / bs;
  const uint64_t chunk_count = (size + layout.chunk_size - 1) / layout.chunk_size;
  const uint32_t frags = layout.fragments_per_chunk();
  store.digests_.reserve(chunk_count);
  for (uint64_t c = 0; c < chunk_count; ++c) {
    uint64_t chunk_begin = c * layout.chunk_size;
    uint64_t chunk_end = std::min<uint64_t>(chunk_begin + layout.chunk_size,
                                            size);
    MerkleTree tree = BuildChunkTree(store.ciphertext_, chunk_begin,
                                     chunk_end, frags, layout.fragment_size);
    store.digests_.push_back(SoeDecryptor::SealDigest(*cipher, c, tree.root(),
                                                      total_blocks, version));
  }
  return store;
}

Result<RangeResponse> SecureDocumentStore::ReadRange(uint64_t pos,
                                                     uint64_t n) const {
  const uint64_t size = ciphertext_.size();
  if (n == 0 || pos >= size || pos + n > size) {
    return Status::OutOfRange("ReadRange outside document");
  }
  RangeResponse resp;
  // Extend left to a block boundary (decryption unit) and right to a
  // fragment boundary (hashing unit).
  resp.data_begin = pos / block_size_ * block_size_;
  uint64_t end = pos + n;
  uint64_t frag_end = (end + layout_.fragment_size - 1) /
                      layout_.fragment_size * layout_.fragment_size;
  frag_end = std::min(frag_end, size);
  resp.ciphertext = common::UnverifiedBytes(std::vector<uint8_t>(
      ciphertext_.begin() + resp.data_begin, ciphertext_.begin() + frag_end));

  const uint32_t frags = layout_.fragments_per_chunk();
  uint64_t first_chunk = resp.data_begin / layout_.chunk_size;
  uint64_t last_chunk = (frag_end - 1) / layout_.chunk_size;
  for (uint64_t c = first_chunk; c <= last_chunk; ++c) {
    uint64_t chunk_begin = c * layout_.chunk_size;
    uint64_t chunk_end = std::min(chunk_begin + layout_.chunk_size, size);
    uint64_t cover_begin = std::max(chunk_begin, resp.data_begin);
    uint64_t cover_end = std::min(chunk_end, frag_end);

    RangeResponse::ChunkMaterial mat;
    mat.chunk_index = c;
    mat.first_fragment =
        static_cast<uint32_t>((cover_begin - chunk_begin) /
                              layout_.fragment_size);
    mat.last_fragment = static_cast<uint32_t>((cover_end - 1 - chunk_begin) /
                                              layout_.fragment_size);
    // Intermediate hash of the untransferred prefix of the first fragment.
    uint64_t frag_begin =
        chunk_begin + uint64_t{mat.first_fragment} * layout_.fragment_size;
    if (cover_begin > frag_begin) {
      Sha1 hasher;
      hasher.Update(ciphertext_.data() + frag_begin, cover_begin - frag_begin);
      mat.prefix_state = hasher.SaveState();
      mat.has_prefix_state = true;
    }
    MerkleTree tree = BuildChunkTree(ciphertext_, chunk_begin, chunk_end,
                                     frags, layout_.fragment_size);
    mat.proof = tree.ProofForRange(mat.first_fragment, mat.last_fragment);
    mat.encrypted_digest = digests_[c];
    resp.chunks.push_back(std::move(mat));
  }
  return resp;
}

uint64_t BatchResponse::WireBytes() const {
  uint64_t bytes = 0;
  for (const Segment& seg : segments) bytes += seg.ciphertext.size();
  for (const RangeResponse::ChunkMaterial& chunk : chunks) {
    bytes += chunk.proof.size() * sizeof(Sha1Digest);
    bytes += chunk.encrypted_digest.size();
  }
  return bytes;
}

Result<BatchResponse> SecureDocumentStore::ReadBatch(
    const BatchRequest& request) const {
  const uint64_t size = ciphertext_.size();
  const uint32_t frags = layout_.fragments_per_chunk();
  auto is_bare = [&request](uint64_t c) {
    return std::find(request.bare_chunks.begin(), request.bare_chunks.end(),
                     c) != request.bare_chunks.end();
  };
  BatchResponse resp;
  uint64_t prev_end = 0;
  for (const BatchRequest::Run& run : request.runs) {
    if (run.begin >= run.end || run.end > size ||
        run.begin % layout_.fragment_size != 0 ||
        (run.end % layout_.fragment_size != 0 && run.end != size) ||
        (run.begin < prev_end && !resp.segments.empty())) {
      return Status::InvalidArgument("malformed batch run");
    }
    prev_end = run.end;

    BatchResponse::Segment seg;
    seg.begin = run.begin;
    seg.ciphertext = common::UnverifiedBytes(std::vector<uint8_t>(
        ciphertext_.begin() + run.begin, ciphertext_.begin() + run.end));
    resp.segments.push_back(std::move(seg));

    uint64_t first_chunk = run.begin / layout_.chunk_size;
    uint64_t last_chunk = (run.end - 1) / layout_.chunk_size;
    for (uint64_t c = first_chunk; c <= last_chunk; ++c) {
      if (is_bare(c)) continue;
      uint64_t chunk_begin = c * layout_.chunk_size;
      uint64_t chunk_end = std::min(chunk_begin + layout_.chunk_size, size);
      uint64_t cover_begin = std::max(chunk_begin, run.begin);
      uint64_t cover_end = std::min(chunk_end, run.end);

      RangeResponse::ChunkMaterial mat;
      mat.chunk_index = c;
      mat.first_fragment = static_cast<uint32_t>(
          (cover_begin - chunk_begin) / layout_.fragment_size);
      mat.last_fragment = static_cast<uint32_t>(
          (cover_end - 1 - chunk_begin) / layout_.fragment_size);
      MerkleTree tree = BuildChunkTree(ciphertext_, chunk_begin, chunk_end,
                                       frags, layout_.fragment_size);
      mat.proof = tree.ProofForRange(mat.first_fragment, mat.last_fragment);
      mat.encrypted_digest = digests_[c];
      // Proof trimming: drop every hash the SOE declared it holds, and
      // the digest once its root is authenticated — re-reads of a hot
      // chunk ship each tree node at most once per serve.
      for (const BatchRequest::ChunkHint& hint : request.hints) {
        if (hint.chunk != c) continue;
        if (hint.known_nodes != 0) {
          std::erase_if(mat.proof, [&](const ProofNode& node) {
            uint64_t flat = VerifiedDigestCache::FlatIndex(
                frags, node.level, node.index);
            return flat < 64 && (hint.known_nodes >> flat) & 1;
          });
        }
        if (hint.root_known) mat.encrypted_digest.clear();
        break;
      }
      resp.chunks.push_back(std::move(mat));
    }
  }
  return resp;
}

void SecureDocumentStore::TamperByte(uint64_t pos, uint8_t xor_mask) {
  if (pos < ciphertext_.size()) ciphertext_[pos] ^= xor_mask;
}

void SecureDocumentStore::SwapBlocks(uint64_t block_a, uint64_t block_b) {
  const uint64_t bs = block_size_;
  if ((block_a + 1) * bs > ciphertext_.size() ||
      (block_b + 1) * bs > ciphertext_.size()) {
    return;
  }
  for (uint64_t i = 0; i < bs; ++i) {
    std::swap(ciphertext_[block_a * bs + i], ciphertext_[block_b * bs + i]);
  }
}

void SecureDocumentStore::SwapChunkDigests(uint64_t chunk_a, uint64_t chunk_b) {
  if (chunk_a < digests_.size() && chunk_b < digests_.size()) {
    std::swap(digests_[chunk_a], digests_[chunk_b]);
  }
}

void SecureDocumentStore::ReplayChunkFrom(const SecureDocumentStore& old,
                                          uint64_t chunk) {
  if (chunk >= digests_.size() || chunk >= old.digests_.size()) return;
  uint64_t begin = chunk * layout_.chunk_size;
  uint64_t end = std::min<uint64_t>(begin + layout_.chunk_size,
                                    ciphertext_.size());
  uint64_t old_end = std::min<uint64_t>(begin + layout_.chunk_size,
                                        old.ciphertext_.size());
  if (old_end < end) return;
  std::copy(old.ciphertext_.begin() + begin, old.ciphertext_.begin() + end,
            ciphertext_.begin() + begin);
  digests_[chunk] = old.digests_[chunk];
}

SoeDecryptor::SoeDecryptor(const TripleDes::Key& key, ChunkLayout layout,
                           uint64_t plaintext_size, uint64_t chunk_count,
                           uint32_t expected_version,
                           size_t digest_cache_capacity,
                           std::shared_ptr<VerifiedDigestCache> shared_cache,
                           CipherBackendKind backend)
    : backend_(MakeCipherBackend(backend, key)),
      layout_(layout),
      plaintext_size_(plaintext_size),
      chunk_count_(chunk_count),
      expected_version_(expected_version) {
  // A shared cache vouching for a different document version must never be
  // consulted: its hashes authenticate that version's ciphertext, and
  // accepting them here would undo the replay protection the version check
  // provides. The shared cache is universal now (every service serve wires
  // one in), so a mismatched handle is a wiring bug upstream — poison the
  // decryptor instead of silently downgrading to a private cache, which
  // hid exactly this class of bug behind a cold-serve wire bill.
  if (shared_cache != nullptr) {
    if (shared_cache->version() == expected_version) {
      cache_ = std::move(shared_cache);
    } else {
      config_error_ = Status::IntegrityError(
          "shared digest cache is stamped for another document version; "
          "refusing to let one version's hashes vouch for another's bytes");
      cache_ = std::make_shared<VerifiedDigestCache>(
          layout.fragments_per_chunk(), /*capacity=*/0, expected_version);
    }
  } else {
    cache_ = std::make_shared<VerifiedDigestCache>(
        layout.fragments_per_chunk(), digest_cache_capacity,
        expected_version);
  }
}

Status SoeDecryptor::VerifyChunkAgainstMaterial(
    const RangeResponse::ChunkMaterial& mat, uint64_t chunk,
    const std::vector<Sha1Digest>& leaves,
    std::vector<std::pair<uint64_t, Sha1Digest>>* digest_memo) {
  const uint32_t bs = backend_->block_size();
  const uint64_t padded_size = (plaintext_size_ + bs - 1) / bs * bs;
  const uint64_t total_blocks = padded_size / bs;
  // Reconstitute a trimmed proof: every sibling the range needs that the
  // terminal did not ship must already sit, authenticated, in the cache.
  // (Shipped hashes are vouched for by the root comparison below; cached
  // ones were vouched for when they were recorded.)
  //
  // The shipped proof is also held to exactly the sibling positions this
  // range can consume. A node at any other position would never enter the
  // root recomputation, so the digest could not vouch for it — yet
  // Record() below remembers the shipped proof for bare re-reads. Without
  // this check a terminal could ride a forged hash (or a duplicate of a
  // real position) into the cache alongside an honest response and have a
  // later proof-trimmed serve trust it: cache poisoning.
  std::vector<ProofNode> proof = mat.proof;
  std::vector<ProofNode> needed;
  {
    const uint32_t frags = layout_.fragments_per_chunk();
    uint64_t lo = mat.first_fragment, hi = mat.last_fragment;
    for (int level = 0; (frags >> level) > 1; ++level, lo /= 2, hi /= 2) {
      const uint64_t width = frags >> level;
      auto supply = [&](uint64_t idx) {
        needed.push_back({level, idx, Sha1Digest{}});
        for (const ProofNode& node : proof) {
          if (node.level == level && node.index == idx) return;
        }
        Sha1Digest cached;
        if (cache_->Node(chunk, level, idx, &cached)) {
          proof.push_back({level, idx, cached});
        }
      };
      if (lo % 2 == 1) supply(lo - 1);
      if (hi % 2 == 0 && hi + 1 < width) supply(hi + 1);
    }
  }
  for (size_t i = 0; i < mat.proof.size(); ++i) {
    const ProofNode& node = mat.proof[i];
    bool consumed = false;
    for (const ProofNode& want : needed) {
      if (want.level == node.level && want.index == node.index) {
        consumed = true;
        break;
      }
    }
    for (size_t j = 0; consumed && j < i; ++j) {
      if (mat.proof[j].level == node.level &&
          mat.proof[j].index == node.index) {
        consumed = false;  // Duplicate position: only the first is used.
      }
    }
    if (!consumed) {
      return Status::IntegrityError(
          "merkle proof carries a node the range does not need");
    }
  }
  Result<Sha1Digest> root = MerkleTree::RootFromRange(
      layout_.fragments_per_chunk(), mat.first_fragment, mat.last_fragment,
      leaves, proof);
  if (!root.ok()) {
    return Status::IntegrityError("merkle proof invalid: " +
                                  root.status().message());
  }
  counters_.hash_combines += proof.size() + leaves.size();
  if (mat.encrypted_digest.empty()) {
    // Digest waived (root_known hint): the recomputed root must match the
    // root authenticated earlier, or the terminal tampered with the bytes.
    Sha1Digest cached_root;
    if (!cache_->Root(chunk, &cached_root) || cached_root != root.value()) {
      return Status::IntegrityError(
          "waived chunk digest does not match cached root (tampered data?)");
    }
    cache_->Record(common::VerifyPass{}, chunk, root.value(),
                   mat.first_fragment, leaves, proof);
    return Status::OK();
  }
  if (mat.encrypted_digest.size() != DigestCipherBytes(bs)) {
    return Status::IntegrityError("chunk digest has wrong size");
  }
  // The recomputed root needs authenticating exactly once per chunk per
  // batch: against the cache (already authenticated under this version),
  // against the batch memo, or — first touch — by decrypting the shipped
  // ChunkDigest and checking the bound index and version.
  Sha1Digest known_root;
  bool root_known = cache_->Root(chunk, &known_root);
  if (!root_known) {
    cache_->RecordMiss();
    if (digest_memo != nullptr) {
      for (const auto& [memo_chunk, memo_root] : *digest_memo) {
        if (memo_chunk == chunk) {
          known_root = memo_root;
          root_known = true;
          break;
        }
      }
    }
  }
  if (root_known) {
    if (known_root != root.value()) {
      return Status::IntegrityError(
          "recomputed chunk root does not match authenticated root "
          "(tampered data?)");
    }
  } else {
    // Decrypt the shipped digest (rather than comparing ciphertexts) so a
    // version mismatch — a replayed stale chunk whose hash checks out
    // against its own stale digest — is distinguishable from tampering.
    const uint64_t t0 = NowNs();
    std::vector<uint8_t> digest_plain = mat.encrypted_digest;
    backend_->DecryptSegment(digest_plain.data(), digest_plain.size(),
                             total_blocks + chunk * DigestBlocks(bs));
    counters_.decrypt_ns += NowNs() - t0;
    counters_.digest_bytes_decrypted += digest_plain.size();
    uint32_t digest_version = 0;
    for (int i = 0; i < 4; ++i) {
      digest_version = (digest_version << 8) | digest_plain[20 + i];
    }
    Sha1Digest bound = BindChunkIndex(chunk, root.value());
    if (!std::equal(bound.begin(), bound.end(), digest_plain.begin())) {
      return Status::IntegrityError(
          "chunk digest does not bind this chunk's content (tampered data?)");
    }
    if (digest_version != expected_version_) {
      return Status::IntegrityError(
          "stale chunk digest: version " + std::to_string(digest_version) +
          ", expected " + std::to_string(expected_version_) +
          " (replayed document state?)");
    }
    if (digest_memo != nullptr) digest_memo->emplace_back(chunk, root.value());
  }
  // Everything that entered the (successful) root recomputation is now as
  // authentic as the digest: remember it for bare re-reads.
  cache_->Record(common::VerifyPass{}, chunk, root.value(),
                 mat.first_fragment, leaves, mat.proof);
  return Status::OK();
}

Result<common::VerifiedPlaintext> SoeDecryptor::DecryptVerified(
    const RangeResponse& resp, uint64_t pos, uint64_t n) {
  // The verification-path read of the tainted response bytes: minting the
  // pass here is what entitles this function to see them at all.
  const uint8_t* ct = resp.ciphertext.VerifyData(common::VerifyPass{});
  CSXA_RETURN_NOT_OK(config_error_);
  const uint32_t bs = backend_->block_size();
  const uint64_t padded_size = (plaintext_size_ + bs - 1) / bs * bs;
  if (pos < resp.data_begin ||
      pos + n > resp.data_begin + resp.ciphertext.size()) {
    return Status::IntegrityError("response does not cover requested range");
  }
  const uint64_t data_end = resp.data_begin + resp.ciphertext.size();

  // Every chunk overlapping the transferred range must come with material,
  // in order, or the terminal is withholding integrity evidence.
  uint64_t expect_chunk = resp.data_begin / layout_.chunk_size;
  uint64_t last_chunk = (data_end - 1) / layout_.chunk_size;
  size_t mat_index = 0;
  for (uint64_t c = expect_chunk; c <= last_chunk; ++c, ++mat_index) {
    if (mat_index >= resp.chunks.size() ||
        resp.chunks[mat_index].chunk_index != c) {
      return Status::IntegrityError(
          "missing integrity material for chunk in range response");
    }
    const auto& mat = resp.chunks[mat_index];
    if (c >= chunk_count_) {
      return Status::IntegrityError(
          "chunk index out of bounds in range response");
    }
    uint64_t chunk_begin = c * layout_.chunk_size;
    uint64_t chunk_end = std::min(chunk_begin + layout_.chunk_size,
                                  padded_size);
    if (mat.first_fragment > mat.last_fragment ||
        mat.last_fragment >= layout_.fragments_per_chunk()) {
      return Status::IntegrityError("bad fragment range");
    }
    // The hashed fragments must cover every transferred byte of this
    // chunk: a terminal could otherwise narrow the claimed range, attach a
    // genuine proof for it, and have bytes outside the range decrypted
    // unverified.
    uint64_t cover_begin = std::max(chunk_begin, resp.data_begin);
    uint64_t cover_end = std::min(chunk_end, data_end);
    uint64_t hashed_begin =
        chunk_begin + uint64_t{mat.first_fragment} * layout_.fragment_size;
    uint64_t hashed_end = std::min<uint64_t>(
        chunk_begin +
            (uint64_t{mat.last_fragment} + 1) * layout_.fragment_size,
        chunk_end);
    if (hashed_begin > cover_begin || hashed_end < cover_end) {
      return Status::IntegrityError(
          "integrity material does not cover the transferred range");
    }
    // Recompute the leaf hashes of the fragments we received.
    std::vector<Sha1Digest> range_leaves;
    const uint64_t h0 = NowNs();
    for (uint32_t f = mat.first_fragment; f <= mat.last_fragment; ++f) {
      uint64_t fb = chunk_begin + uint64_t{f} * layout_.fragment_size;
      uint64_t fe = std::min<uint64_t>(fb + layout_.fragment_size, chunk_end);
      uint64_t hash_from = fb;
      Sha1 hasher;
      if (f == mat.first_fragment && mat.has_prefix_state) {
        hasher.RestoreState(mat.prefix_state);
        hash_from = resp.data_begin;
        if (hash_from <= fb || hash_from >= fe) {
          return Status::IntegrityError("inconsistent prefix state");
        }
      }
      if (hash_from < resp.data_begin || fe > data_end) {
        return Status::IntegrityError(
            "fragment range not covered by transferred bytes");
      }
      hasher.Update(ct + (hash_from - resp.data_begin), fe - hash_from);
      counters_.bytes_hashed += fe - hash_from;
      range_leaves.push_back(hasher.Finish());
    }
    counters_.hash_ns += NowNs() - h0;
    // A prefix-state leaf hash is the true fragment hash (the state covers
    // the untransferred prefix), so the recorded material stays sound.
    CSXA_RETURN_NOT_OK(
        VerifyChunkAgainstMaterial(mat, c, range_leaves, nullptr));
  }

  // All integrity material checked: decrypt the covered blocks in one
  // whole-segment backend call and slice out the requested bytes.
  uint64_t block_begin = pos / bs;
  uint64_t block_end = (pos + n + bs - 1) / bs;
  const uint64_t covered_begin = block_begin * bs;
  if (covered_begin < resp.data_begin ||
      block_end * bs - resp.data_begin > resp.ciphertext.size()) {
    return Status::IntegrityError("block not covered by response");
  }
  const size_t len = (block_end - block_begin) * bs;
  std::vector<uint8_t> plain(ct + (covered_begin - resp.data_begin),
                             ct + (covered_begin - resp.data_begin) + len);
  const uint64_t d0 = NowNs();
  backend_->DecryptSegment(plain.data(), len, block_begin);
  counters_.decrypt_ns += NowNs() - d0;
  counters_.bytes_decrypted += len;
  std::vector<uint8_t> out(plain.begin() + (pos - covered_begin),
                           plain.begin() + (pos - covered_begin) + n);
  // Mint site: everything above recombined to the authenticated root.
  return common::VerifiedPlaintext(common::VerifyPass{}, std::move(out));
}

Status SoeDecryptor::DecryptVerifiedBatch(const BatchRequest& request,
                                          const BatchResponse& response,
                                          uint8_t* out, size_t out_size) {
  CSXA_RETURN_NOT_OK(config_error_);
  const uint32_t bs = backend_->block_size();
  const uint64_t padded_size = (plaintext_size_ + bs - 1) / bs * bs;
  if (out_size < plaintext_size_) {
    // csxa-lint: allow(error-taxonomy) output sizing is SOE caller misuse, not attacker input
    return Status::InvalidArgument("output buffer smaller than document");
  }
  if (response.segments.size() != request.runs.size()) {
    return Status::IntegrityError("batch response run count mismatch");
  }
  auto is_bare = [&request](uint64_t c) {
    return std::find(request.bare_chunks.begin(), request.bare_chunks.end(),
                     c) != request.bare_chunks.end();
  };
  // Pin every chunk this batch's waivers and trimming hints rely on:
  // mid-batch Record() calls for other chunks must not evict the cached
  // material the request was built against (an honest response would
  // otherwise fail verification under a small cache).
  std::vector<uint64_t> claimed = request.bare_chunks;
  for (const BatchRequest::ChunkHint& hint : request.hints) {
    claimed.push_back(hint.chunk);
  }
  VerifiedDigestCache::PinScope pin(cache_.get(), std::move(claimed));

  // Phase 1 — verify every segment's chunks before releasing any byte.
  std::vector<std::pair<uint64_t, Sha1Digest>> digest_memo;
  size_t mat_index = 0;
  for (size_t s = 0; s < response.segments.size(); ++s) {
    const BatchResponse::Segment& seg = response.segments[s];
    const BatchRequest::Run& run = request.runs[s];
    if (seg.begin != run.begin ||
        seg.begin + seg.ciphertext.size() != run.end ||
        run.end > padded_size || run.begin >= run.end ||
        run.begin % layout_.fragment_size != 0 ||
        (run.end % layout_.fragment_size != 0 && run.end != padded_size)) {
      return Status::IntegrityError("batch segment does not match request");
    }
    const uint8_t* seg_ct = seg.ciphertext.VerifyData(common::VerifyPass{});
    const uint64_t seg_end = run.end;
    uint64_t first_chunk = run.begin / layout_.chunk_size;
    uint64_t last_chunk = (seg_end - 1) / layout_.chunk_size;
    for (uint64_t c = first_chunk; c <= last_chunk; ++c) {
      if (c >= chunk_count_) {
        return Status::IntegrityError(
            "chunk index out of bounds in batch response");
      }
      uint64_t chunk_begin = c * layout_.chunk_size;
      uint64_t chunk_end = std::min(chunk_begin + layout_.chunk_size,
                                    padded_size);
      uint64_t cover_begin = std::max(chunk_begin, run.begin);
      uint64_t cover_end = std::min(chunk_end, seg_end);
      const uint32_t first = static_cast<uint32_t>(
          (cover_begin - chunk_begin) / layout_.fragment_size);
      const uint32_t last = static_cast<uint32_t>(
          (cover_end - 1 - chunk_begin) / layout_.fragment_size);

      // Leaf hashes of the shipped fragments: fragment alignment means
      // every hash starts fresh at a fragment boundary — no intermediate
      // states cross the wire in the batched protocol.
      std::vector<Sha1Digest> leaves;
      leaves.reserve(last - first + 1);
      const uint64_t h0 = NowNs();
      for (uint32_t f = first; f <= last; ++f) {
        uint64_t fb = chunk_begin + uint64_t{f} * layout_.fragment_size;
        uint64_t fe =
            std::min<uint64_t>(fb + layout_.fragment_size, chunk_end);
        leaves.push_back(Sha1::Hash(seg_ct + (fb - run.begin), fe - fb));
        counters_.bytes_hashed += fe - fb;
      }
      counters_.hash_ns += NowNs() - h0;

      if (is_bare(c)) {
        // Cache-hit path: no material crossed the wire. Recombine the
        // fresh leaves with the cached (authenticated) sibling hashes and
        // compare against the cached root — a tampered re-read diverges
        // right here.
        Sha1Digest known_root;
        if (!cache_->Root(c, &known_root)) {
          return Status::IntegrityError(
              "bare chunk not present in digest cache");
        }
        std::vector<ProofNode> proof = cache_->ProofFor(c, first, last);
        Result<Sha1Digest> root = MerkleTree::RootFromRange(
            layout_.fragments_per_chunk(), first, last, leaves, proof);
        if (!root.ok() || root.value() != known_root) {
          return Status::IntegrityError(
              "re-read failed verification against cached digest "
              "(tampered data?)");
        }
        counters_.hash_combines += proof.size() + leaves.size();
        cache_->RecordBareHit();
        cache_->Record(common::VerifyPass{}, c, known_root, first, leaves,
                       proof);
      } else {
        if (mat_index >= response.chunks.size()) {
          return Status::IntegrityError(
              "missing integrity material for chunk in batch response");
        }
        const RangeResponse::ChunkMaterial& mat = response.chunks[mat_index];
        ++mat_index;
        if (mat.chunk_index != c || mat.first_fragment != first ||
            mat.last_fragment != last ||
            mat.last_fragment >= layout_.fragments_per_chunk() ||
            mat.has_prefix_state) {
          // The hashed fragments must cover exactly the transferred bytes
          // of this chunk: anything narrower would have bytes decrypted
          // unverified, anything else is a misaligned proof.
          return Status::IntegrityError(
              "integrity material does not cover the transferred range of "
              "the batch segment");
        }
        CSXA_RETURN_NOT_OK(
            VerifyChunkAgainstMaterial(mat, c, leaves, &digest_memo));
      }
    }
  }
  if (mat_index != response.chunks.size()) {
    return Status::IntegrityError("unexpected extra integrity material");
  }

  // Phase 2 — hand each verified segment to the backend as one contiguous
  // block run. Runs are fragment-aligned (hence block-aligned) on both
  // ends, so whole blocks that land inside the document buffer decrypt in
  // place there; only a partial tail block (document end, zero padding
  // beyond plaintext_size_) detours through a scratch block.
  const uint64_t d0 = NowNs();
  for (const BatchResponse::Segment& seg : response.segments) {
    const uint64_t seg_end = seg.begin + seg.ciphertext.size();
    const uint64_t copy_end = std::min<uint64_t>(seg_end, plaintext_size_);
    if (copy_end <= seg.begin) continue;
    const uint8_t* seg_ct = seg.ciphertext.VerifyData(common::VerifyPass{});
    const uint64_t whole = (copy_end - seg.begin) / bs * bs;
    if (whole > 0) {
      std::memcpy(out + seg.begin, seg_ct, whole);
      backend_->DecryptSegment(out + seg.begin, whole, seg.begin / bs);
      counters_.bytes_decrypted += whole;
    }
    if (seg.begin + whole < copy_end) {
      uint8_t scratch[kMaxCipherBlockSize];
      std::memcpy(scratch, seg_ct + whole, bs);
      backend_->DecryptSegment(scratch, bs, seg.begin / bs + whole / bs);
      std::memcpy(out + seg.begin + whole, scratch,
                  copy_end - (seg.begin + whole));
      counters_.bytes_decrypted += bs;
    }
  }
  counters_.decrypt_ns += NowNs() - d0;
  return Status::OK();
}

}  // namespace csxa::crypto
