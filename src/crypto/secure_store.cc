#include "crypto/secure_store.h"

#include <algorithm>
#include <cstring>

#include "crypto/block_cipher.h"

namespace csxa::crypto {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

Sha1Digest BindChunkIndex(uint64_t chunk_index, const Sha1Digest& root) {
  // ChunkDigest = SHA1(chunk_index || merkle_root): the chunk identifier
  // "reflecting its position in the document" (Section 6), which makes
  // whole-chunk substitution detectable.
  uint8_t prefix[8];
  for (int i = 0; i < 8; ++i) {
    prefix[i] = static_cast<uint8_t>(chunk_index >> (56 - 8 * i));
  }
  Sha1 hasher;
  hasher.Update(prefix, 8);
  hasher.Update(root.data(), root.size());
  return hasher.Finish();
}

}  // namespace

Status ChunkLayout::Validate() const {
  if (chunk_size == 0 || fragment_size == 0) {
    return Status::InvalidArgument("chunk/fragment size must be positive");
  }
  if (chunk_size % 8 != 0 || fragment_size % 8 != 0) {
    return Status::InvalidArgument(
        "chunk and fragment sizes must be multiples of the 8-byte block");
  }
  if (chunk_size % fragment_size != 0) {
    return Status::InvalidArgument("fragment size must divide chunk size");
  }
  if (!IsPowerOfTwo(fragments_per_chunk())) {
    return Status::InvalidArgument(
        "fragments per chunk must be a power of two (Merkle tree shape)");
  }
  return Status::OK();
}

uint64_t RangeResponse::WireBytes() const {
  uint64_t bytes = ciphertext.size();
  for (const ChunkMaterial& chunk : chunks) {
    bytes += chunk.proof.size() * sizeof(Sha1Digest);
    bytes += chunk.encrypted_digest.size();
    if (chunk.has_prefix_state) bytes += 92;  // h[5] + length + buffer tail
  }
  return bytes;
}

std::vector<uint8_t> SoeDecryptor::SealDigest(const PositionCipher& cipher,
                                              uint64_t chunk_index,
                                              const Sha1Digest& root,
                                              uint64_t total_blocks,
                                              uint32_t version) {
  Sha1Digest bound = BindChunkIndex(chunk_index, root);
  std::vector<uint8_t> padded(bound.begin(), bound.end());
  padded.resize(24, 0);
  // The document version fills the padding: replaying a chunk (and its
  // self-consistent digest) from a stale store state decrypts to the old
  // version number and is rejected.
  for (int i = 0; i < 4; ++i) {
    padded[20 + i] = static_cast<uint8_t>(version >> (24 - 8 * i));
  }
  // Digests live in their own position space beyond the document blocks so
  // that a digest ciphertext can never be replayed as document content or
  // as another chunk's digest.
  return cipher.Encrypt(padded, total_blocks + chunk_index * 3);
}

Result<SecureDocumentStore> SecureDocumentStore::Build(
    const std::vector<uint8_t>& plaintext, const TripleDes::Key& key,
    const ChunkLayout& layout, uint32_t version) {
  CSXA_RETURN_NOT_OK(layout.Validate());
  SecureDocumentStore store;
  store.layout_ = layout;
  store.plaintext_size_ = plaintext.size();
  store.version_ = version;

  PositionCipher cipher(key);
  store.ciphertext_ = cipher.Encrypt(ZeroPadToBlock(plaintext));

  const uint64_t size = store.ciphertext_.size();
  const uint64_t total_blocks = size / 8;
  const uint64_t chunk_count = (size + layout.chunk_size - 1) / layout.chunk_size;
  const uint32_t frags = layout.fragments_per_chunk();
  store.digests_.reserve(chunk_count);
  for (uint64_t c = 0; c < chunk_count; ++c) {
    uint64_t chunk_begin = c * layout.chunk_size;
    uint64_t chunk_end = std::min<uint64_t>(chunk_begin + layout.chunk_size,
                                            size);
    std::vector<Sha1Digest> leaves;
    leaves.reserve(frags);
    for (uint32_t f = 0; f < frags; ++f) {
      uint64_t frag_begin = chunk_begin + uint64_t{f} * layout.fragment_size;
      if (frag_begin >= chunk_end) {
        leaves.push_back(MerkleTree::EmptyLeaf());
        continue;
      }
      uint64_t frag_end =
          std::min<uint64_t>(frag_begin + layout.fragment_size, chunk_end);
      leaves.push_back(Sha1::Hash(store.ciphertext_.data() + frag_begin,
                                  frag_end - frag_begin));
    }
    MerkleTree tree = MerkleTree::Build(std::move(leaves));
    store.digests_.push_back(SoeDecryptor::SealDigest(cipher, c, tree.root(),
                                                      total_blocks, version));
  }
  return store;
}

Result<RangeResponse> SecureDocumentStore::ReadRange(uint64_t pos,
                                                     uint64_t n) const {
  const uint64_t size = ciphertext_.size();
  if (n == 0 || pos >= size || pos + n > size) {
    return Status::OutOfRange("ReadRange outside document");
  }
  RangeResponse resp;
  // Extend left to a block boundary (decryption unit) and right to a
  // fragment boundary (hashing unit).
  resp.data_begin = pos & ~uint64_t{7};
  uint64_t end = pos + n;
  uint64_t frag_end = (end + layout_.fragment_size - 1) /
                      layout_.fragment_size * layout_.fragment_size;
  frag_end = std::min(frag_end, size);
  resp.ciphertext.assign(ciphertext_.begin() + resp.data_begin,
                         ciphertext_.begin() + frag_end);

  const uint32_t frags = layout_.fragments_per_chunk();
  uint64_t first_chunk = resp.data_begin / layout_.chunk_size;
  uint64_t last_chunk = (frag_end - 1) / layout_.chunk_size;
  for (uint64_t c = first_chunk; c <= last_chunk; ++c) {
    uint64_t chunk_begin = c * layout_.chunk_size;
    uint64_t chunk_end = std::min(chunk_begin + layout_.chunk_size, size);
    uint64_t cover_begin = std::max(chunk_begin, resp.data_begin);
    uint64_t cover_end = std::min(chunk_end, frag_end);

    RangeResponse::ChunkMaterial mat;
    mat.chunk_index = c;
    mat.first_fragment =
        static_cast<uint32_t>((cover_begin - chunk_begin) /
                              layout_.fragment_size);
    mat.last_fragment = static_cast<uint32_t>((cover_end - 1 - chunk_begin) /
                                              layout_.fragment_size);
    // Intermediate hash of the untransferred prefix of the first fragment.
    uint64_t frag_begin =
        chunk_begin + uint64_t{mat.first_fragment} * layout_.fragment_size;
    if (cover_begin > frag_begin) {
      Sha1 hasher;
      hasher.Update(ciphertext_.data() + frag_begin, cover_begin - frag_begin);
      mat.prefix_state = hasher.SaveState();
      mat.has_prefix_state = true;
    }
    // Rebuild the chunk's Merkle tree to extract sibling hashes. (A real
    // terminal would cache these; correctness is what matters here and the
    // cost model charges only the wire bytes.)
    std::vector<Sha1Digest> leaves;
    leaves.reserve(frags);
    for (uint32_t f = 0; f < frags; ++f) {
      uint64_t fb = chunk_begin + uint64_t{f} * layout_.fragment_size;
      if (fb >= chunk_end) {
        leaves.push_back(MerkleTree::EmptyLeaf());
        continue;
      }
      uint64_t fe = std::min<uint64_t>(fb + layout_.fragment_size, chunk_end);
      leaves.push_back(Sha1::Hash(ciphertext_.data() + fb, fe - fb));
    }
    MerkleTree tree = MerkleTree::Build(std::move(leaves));
    mat.proof = tree.ProofForRange(mat.first_fragment, mat.last_fragment);
    mat.encrypted_digest = digests_[c];
    resp.chunks.push_back(std::move(mat));
  }
  return resp;
}

void SecureDocumentStore::TamperByte(uint64_t pos, uint8_t xor_mask) {
  if (pos < ciphertext_.size()) ciphertext_[pos] ^= xor_mask;
}

void SecureDocumentStore::SwapBlocks(uint64_t block_a, uint64_t block_b) {
  if ((block_a + 1) * 8 > ciphertext_.size() ||
      (block_b + 1) * 8 > ciphertext_.size()) {
    return;
  }
  for (int i = 0; i < 8; ++i) {
    std::swap(ciphertext_[block_a * 8 + i], ciphertext_[block_b * 8 + i]);
  }
}

void SecureDocumentStore::SwapChunkDigests(uint64_t chunk_a, uint64_t chunk_b) {
  if (chunk_a < digests_.size() && chunk_b < digests_.size()) {
    std::swap(digests_[chunk_a], digests_[chunk_b]);
  }
}

void SecureDocumentStore::ReplayChunkFrom(const SecureDocumentStore& old,
                                          uint64_t chunk) {
  if (chunk >= digests_.size() || chunk >= old.digests_.size()) return;
  uint64_t begin = chunk * layout_.chunk_size;
  uint64_t end = std::min<uint64_t>(begin + layout_.chunk_size,
                                    ciphertext_.size());
  uint64_t old_end = std::min<uint64_t>(begin + layout_.chunk_size,
                                        old.ciphertext_.size());
  if (old_end < end) return;
  std::copy(old.ciphertext_.begin() + begin, old.ciphertext_.begin() + end,
            ciphertext_.begin() + begin);
  digests_[chunk] = old.digests_[chunk];
}

SoeDecryptor::SoeDecryptor(const TripleDes::Key& key, ChunkLayout layout,
                           uint64_t plaintext_size, uint64_t chunk_count,
                           uint32_t expected_version)
    : cipher_(key),
      layout_(layout),
      plaintext_size_(plaintext_size),
      chunk_count_(chunk_count),
      expected_version_(expected_version) {}

Result<std::vector<uint8_t>> SoeDecryptor::DecryptVerified(
    const RangeResponse& resp, uint64_t pos, uint64_t n) {
  const uint64_t padded_size = (plaintext_size_ + 7) / 8 * 8;
  const uint64_t total_blocks = padded_size / 8;
  if (pos < resp.data_begin ||
      pos + n > resp.data_begin + resp.ciphertext.size()) {
    return Status::IntegrityError("response does not cover requested range");
  }
  const uint64_t data_end = resp.data_begin + resp.ciphertext.size();

  // Every chunk overlapping the transferred range must come with material,
  // in order, or the terminal is withholding integrity evidence.
  uint64_t expect_chunk = resp.data_begin / layout_.chunk_size;
  uint64_t last_chunk = (data_end - 1) / layout_.chunk_size;
  size_t mat_index = 0;
  for (uint64_t c = expect_chunk; c <= last_chunk; ++c, ++mat_index) {
    if (mat_index >= resp.chunks.size() ||
        resp.chunks[mat_index].chunk_index != c) {
      return Status::IntegrityError("missing integrity material for chunk");
    }
    const auto& mat = resp.chunks[mat_index];
    if (c >= chunk_count_) {
      return Status::IntegrityError("chunk index out of bounds");
    }
    uint64_t chunk_begin = c * layout_.chunk_size;
    uint64_t chunk_end = std::min(chunk_begin + layout_.chunk_size,
                                  padded_size);
    if (mat.first_fragment > mat.last_fragment ||
        mat.last_fragment >= layout_.fragments_per_chunk()) {
      return Status::IntegrityError("bad fragment range");
    }
    // The hashed fragments must cover every transferred byte of this
    // chunk: a terminal could otherwise narrow the claimed range, attach a
    // genuine proof for it, and have bytes outside the range decrypted
    // unverified.
    uint64_t cover_begin = std::max(chunk_begin, resp.data_begin);
    uint64_t cover_end = std::min(chunk_end, data_end);
    uint64_t hashed_begin =
        chunk_begin + uint64_t{mat.first_fragment} * layout_.fragment_size;
    uint64_t hashed_end = std::min<uint64_t>(
        chunk_begin +
            (uint64_t{mat.last_fragment} + 1) * layout_.fragment_size,
        chunk_end);
    if (hashed_begin > cover_begin || hashed_end < cover_end) {
      return Status::IntegrityError(
          "integrity material does not cover the transferred range");
    }
    // Recompute the leaf hashes of the fragments we received.
    std::vector<Sha1Digest> range_leaves;
    for (uint32_t f = mat.first_fragment; f <= mat.last_fragment; ++f) {
      uint64_t fb = chunk_begin + uint64_t{f} * layout_.fragment_size;
      uint64_t fe = std::min<uint64_t>(fb + layout_.fragment_size, chunk_end);
      uint64_t hash_from = fb;
      Sha1 hasher;
      if (f == mat.first_fragment && mat.has_prefix_state) {
        hasher.RestoreState(mat.prefix_state);
        hash_from = resp.data_begin;
        if (hash_from <= fb || hash_from >= fe) {
          return Status::IntegrityError("inconsistent prefix state");
        }
      }
      if (hash_from < resp.data_begin || fe > data_end) {
        return Status::IntegrityError(
            "fragment range not covered by transferred bytes");
      }
      hasher.Update(resp.ciphertext.data() + (hash_from - resp.data_begin),
                    fe - hash_from);
      counters_.bytes_hashed += fe - hash_from;
      range_leaves.push_back(hasher.Finish());
    }
    Result<Sha1Digest> root = MerkleTree::RootFromRange(
        layout_.fragments_per_chunk(), mat.first_fragment, mat.last_fragment,
        range_leaves, mat.proof);
    if (!root.ok()) {
      return Status::IntegrityError("merkle proof invalid: " +
                                    root.status().message());
    }
    counters_.hash_combines += mat.proof.size() + range_leaves.size();
    if (mat.encrypted_digest.size() != 24) {
      return Status::IntegrityError("chunk digest has wrong size");
    }
    // Decrypt the shipped digest (rather than comparing ciphertexts) so a
    // version mismatch — a replayed stale chunk whose hash checks out
    // against its own stale digest — is distinguishable from tampering.
    std::vector<uint8_t> digest_plain =
        cipher_.Decrypt(mat.encrypted_digest, total_blocks + c * 3);
    counters_.digest_bytes_decrypted += digest_plain.size();
    uint32_t digest_version = 0;
    for (int i = 0; i < 4; ++i) {
      digest_version = (digest_version << 8) | digest_plain[20 + i];
    }
    Sha1Digest bound = BindChunkIndex(c, root.value());
    if (!std::equal(bound.begin(), bound.end(), digest_plain.begin())) {
      return Status::IntegrityError("chunk digest mismatch (tampered data?)");
    }
    if (digest_version != expected_version_) {
      return Status::IntegrityError(
          "stale chunk digest: version " + std::to_string(digest_version) +
          ", expected " + std::to_string(expected_version_) +
          " (replayed document state?)");
    }
  }

  // All integrity material checked: decrypt exactly the requested bytes.
  uint64_t block_begin = pos / 8;
  uint64_t block_end = (pos + n + 7) / 8;
  std::vector<uint8_t> plain;
  plain.reserve((block_end - block_begin) * 8);
  for (uint64_t b = block_begin; b < block_end; ++b) {
    uint64_t off = b * 8 - resp.data_begin;
    if (off + 8 > resp.ciphertext.size()) {
      return Status::IntegrityError("block not covered by response");
    }
    Block64 c;
    std::memcpy(c.data(), resp.ciphertext.data() + off, 8);
    Block64 p = cipher_.DecryptBlock(c, b);
    plain.insert(plain.end(), p.begin(), p.end());
  }
  counters_.bytes_decrypted += (block_end - block_begin) * 8;
  std::vector<uint8_t> out(plain.begin() + (pos - block_begin * 8),
                           plain.begin() + (pos - block_begin * 8) + n);
  return out;
}

}  // namespace csxa::crypto
