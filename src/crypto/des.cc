#include "crypto/des.h"

namespace csxa::crypto {

namespace {

// All tables are the FIPS 46-3 tables, 1-based bit indices from the MSB as
// in the standard.

constexpr int kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr int kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr int kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
    8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr int kPbox[32] = {16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23,
                           26, 5,  18, 31, 10, 2,  8,  24, 14, 32, 27,
                           3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr int kPc1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34,
                          26, 18, 10, 2,  59, 51, 43, 35, 27, 19, 11, 3,
                          60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7,
                          62, 54, 46, 38, 30, 22, 14, 6,  61, 53, 45, 37,
                          29, 21, 13, 5,  28, 20, 12, 4};

constexpr int kPc2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                          23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                          41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                          44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

inline uint64_t BytesToU64(const Block64& b) {
  uint64_t v = 0;
  for (uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

inline Block64 U64ToBytes(uint64_t v) {
  Block64 b;
  for (int i = 7; i >= 0; --i) {
    b[i] = static_cast<uint8_t>(v & 0xFF);
    v >>= 8;
  }
  return b;
}

/// Applies a permutation given in DES's 1-based MSB-first convention.
/// `in_width` is the bit width of the input; `table_size` that of the
/// output. Reference implementation: the hot path uses the byte-indexed
/// tables derived from it below; key scheduling and table generation use
/// it directly.
inline uint64_t Permute(uint64_t in, int in_width, const int* table,
                        int table_size) {
  uint64_t out = 0;
  for (int i = 0; i < table_size; ++i) {
    int src = table[i];  // 1-based from MSB
    uint64_t bit = (in >> (in_width - src)) & 1;
    out = (out << 1) | bit;
  }
  return out;
}

inline uint32_t Rotl28(uint32_t v, int s) {
  return ((v << s) | (v >> (28 - s))) & 0x0FFFFFFFu;
}

/// Precomputed per-byte permutation tables and combined S/P boxes. Bit
/// permutations are linear over XOR, so any permutation of a word is the
/// XOR of the permutations of its bytes — eight lookups replace a 64-step
/// bit loop. The S/P tables fold the P-box into each S-box's output.
struct DesTables {
  uint64_t ip[8][256];
  uint64_t fp[8][256];
  uint64_t e[4][256];     // 32 -> 48 bits, per byte of R
  uint32_t sp[8][64];     // P(sbox output placed at its nibble)

  DesTables() {
    for (int bi = 0; bi < 8; ++bi) {
      for (int val = 0; val < 256; ++val) {
        uint64_t in = static_cast<uint64_t>(val) << (56 - 8 * bi);
        ip[bi][val] = Permute(in, 64, kIp, 64);
        fp[bi][val] = Permute(in, 64, kFp, 64);
      }
    }
    for (int bi = 0; bi < 4; ++bi) {
      for (int val = 0; val < 256; ++val) {
        uint64_t in = static_cast<uint64_t>(val) << (24 - 8 * bi);
        e[bi][val] = Permute(in, 32, kExpansion, 48);
      }
    }
    for (int box = 0; box < 8; ++box) {
      for (int six = 0; six < 64; ++six) {
        int row = ((six & 0x20) >> 4) | (six & 1);
        int col = (six >> 1) & 0xF;
        uint32_t nibble = static_cast<uint32_t>(kSbox[box][row * 16 + col])
                          << (28 - 4 * box);
        sp[box][six] = static_cast<uint32_t>(Permute(nibble, 32, kPbox, 32));
      }
    }
  }
};

const DesTables& Tabs() {
  static const DesTables tables;
  return tables;
}

inline uint64_t ApplyByteTab(const uint64_t (&tab)[8][256], uint64_t v) {
  return tab[0][(v >> 56) & 0xFF] ^ tab[1][(v >> 48) & 0xFF] ^
         tab[2][(v >> 40) & 0xFF] ^ tab[3][(v >> 32) & 0xFF] ^
         tab[4][(v >> 24) & 0xFF] ^ tab[5][(v >> 16) & 0xFF] ^
         tab[6][(v >> 8) & 0xFF] ^ tab[7][v & 0xFF];
}

}  // namespace

Des::Des(const Block64& key) {
  uint64_t k = BytesToU64(key);
  uint64_t permuted = Permute(k, 64, kPc1, 56);
  uint32_t c = static_cast<uint32_t>(permuted >> 28) & 0x0FFFFFFFu;
  uint32_t d = static_cast<uint32_t>(permuted) & 0x0FFFFFFFu;
  for (int round = 0; round < 16; ++round) {
    c = Rotl28(c, kShifts[round]);
    d = Rotl28(d, kShifts[round]);
    uint64_t cd = (static_cast<uint64_t>(c) << 28) | d;
    subkeys_[round] = Permute(cd, 56, kPc2, 48);
  }
}

uint64_t Des::Rounds(uint64_t state, bool decrypt) const {
  const DesTables& t = Tabs();
  uint32_t left = static_cast<uint32_t>(state >> 32);
  uint32_t right = static_cast<uint32_t>(state);
  for (int round = 0; round < 16; ++round) {
    uint64_t expanded = t.e[0][(right >> 24) & 0xFF] ^
                        t.e[1][(right >> 16) & 0xFF] ^
                        t.e[2][(right >> 8) & 0xFF] ^ t.e[3][right & 0xFF];
    expanded ^= subkeys_[decrypt ? 15 - round : round];
    uint32_t f = t.sp[0][(expanded >> 42) & 0x3F] ^
                 t.sp[1][(expanded >> 36) & 0x3F] ^
                 t.sp[2][(expanded >> 30) & 0x3F] ^
                 t.sp[3][(expanded >> 24) & 0x3F] ^
                 t.sp[4][(expanded >> 18) & 0x3F] ^
                 t.sp[5][(expanded >> 12) & 0x3F] ^
                 t.sp[6][(expanded >> 6) & 0x3F] ^ t.sp[7][expanded & 0x3F];
    uint32_t next = left ^ f;
    left = right;
    right = next;
  }
  // Pre-output: R16 || L16 (note the swap).
  return (static_cast<uint64_t>(right) << 32) | left;
}

uint64_t Des::EncryptU64(uint64_t block) const {
  const DesTables& t = Tabs();
  return ApplyByteTab(t.fp, Rounds(ApplyByteTab(t.ip, block), false));
}

uint64_t Des::DecryptU64(uint64_t block) const {
  const DesTables& t = Tabs();
  return ApplyByteTab(t.fp, Rounds(ApplyByteTab(t.ip, block), true));
}

Block64 Des::EncryptBlock(const Block64& plain) const {
  return U64ToBytes(EncryptU64(BytesToU64(plain)));
}

Block64 Des::DecryptBlock(const Block64& cipher) const {
  return U64ToBytes(DecryptU64(BytesToU64(cipher)));
}

namespace {

Block64 SubKey(const TripleDes::Key& key, int index) {
  Block64 k;
  for (int i = 0; i < 8; ++i) k[i] = key[index * 8 + i];
  return k;
}

}  // namespace

TripleDes::TripleDes(const Key& key)
    : des1_(SubKey(key, 0)), des2_(SubKey(key, 1)), des3_(SubKey(key, 2)) {}

uint64_t TripleDes::EncryptU64(uint64_t block) const {
  // EDE with the inner FP∘IP pairs cancelled: IP, three round sets on the
  // permuted domain, one final FP.
  const DesTables& t = Tabs();
  uint64_t state = ApplyByteTab(t.ip, block);
  state = des1_.Rounds(state, /*decrypt=*/false);
  state = des2_.Rounds(state, /*decrypt=*/true);
  state = des3_.Rounds(state, /*decrypt=*/false);
  return ApplyByteTab(t.fp, state);
}

uint64_t TripleDes::DecryptU64(uint64_t block) const {
  const DesTables& t = Tabs();
  uint64_t state = ApplyByteTab(t.ip, block);
  state = des3_.Rounds(state, /*decrypt=*/true);
  state = des2_.Rounds(state, /*decrypt=*/false);
  state = des1_.Rounds(state, /*decrypt=*/true);
  return ApplyByteTab(t.fp, state);
}

Block64 TripleDes::EncryptBlock(const Block64& plain) const {
  return U64ToBytes(EncryptU64(BytesToU64(plain)));
}

Block64 TripleDes::DecryptBlock(const Block64& cipher) const {
  return U64ToBytes(DecryptU64(BytesToU64(cipher)));
}

}  // namespace csxa::crypto
