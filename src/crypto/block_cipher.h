#ifndef CSXA_CRYPTO_BLOCK_CIPHER_H_
#define CSXA_CRYPTO_BLOCK_CIPHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/des.h"

namespace csxa::crypto {

/// Pads with zero bytes to a multiple of 8 (the document format records its
/// own exact length, so unambiguous padding schemes are unnecessary).
std::vector<uint8_t> ZeroPadToBlock(const std::vector<uint8_t>& data);

/// 3DES-ECB over a whole buffer (must be block aligned). This is the
/// baseline "ECB" configuration of Figure 11: confidentiality without
/// instance diversification or integrity.
std::vector<uint8_t> EcbEncrypt(const TripleDes& cipher,
                                const std::vector<uint8_t>& plain);
std::vector<uint8_t> EcbDecrypt(const TripleDes& cipher,
                                const std::vector<uint8_t>& cipher_text);

/// 3DES-CBC with an explicit IV (used by the CBC-SHA / CBC-SHAC baselines
/// of Figure 11). Buffer must be block aligned.
std::vector<uint8_t> CbcEncrypt(const TripleDes& cipher, const Block64& iv,
                                const std::vector<uint8_t>& plain);
std::vector<uint8_t> CbcDecrypt(const TripleDes& cipher, const Block64& iv,
                                const std::vector<uint8_t>& cipher_text);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_BLOCK_CIPHER_H_
