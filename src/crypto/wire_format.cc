#include "crypto/wire_format.h"

#include <cstring>

// Error-taxonomy contract (enforced by tools/csxa_lint.py): every failure
// in this file is IntegrityError. The decoder faces raw terminal bytes —
// a frame it cannot parse *is* the attack surface, so there is no
// "caller error" class here by definition.

namespace csxa::crypto {

namespace {

constexpr uint32_t kRequestMagic = 0x43535851;   // "QXSC" on the wire.
constexpr uint32_t kResponseMagic = 0x43535852;  // "RXSC" on the wire.

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutBytes(std::vector<uint8_t>* out, const uint8_t* p, size_t n) {
  if (n != 0) out->insert(out->end(), p, p + n);
}

/// Bounds-checked cursor over an untrusted frame: every accessor verifies
/// the remaining byte count first and latches an error instead of reading.
/// Callers check `ok` once per structural level; reads after a failure are
/// no-ops returning zeroes, so a single check suffices per frame.
struct Reader {
  const uint8_t* p;
  size_t n;
  const char* error = nullptr;

  bool Need(size_t k) {
    if (error != nullptr) return false;
    if (n < k) {
      error = "frame truncated";
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    uint8_t v = p[0];
    p += 1;
    n -= 1;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    p += 4;
    n -= 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    p += 8;
    n -= 8;
    return v;
  }
  /// A count of records, each at least `record_size` bytes: reject any
  /// claim the remaining bytes cannot possibly hold, so reserving
  /// `count` records can never over-allocate on a length-field lie.
  uint32_t Count(size_t record_size) {
    uint32_t c = U32();
    if (error == nullptr && uint64_t{c} * record_size > n) {
      error = "count field exceeds frame size";
      return 0;
    }
    return c;
  }
  /// Copies `k` bytes into `dst` (resized by the caller *after* Need).
  /// `dst` may be null when `k` is zero — an empty vector's data() is —
  /// so the copy is skipped rather than handing memcpy a null pointer.
  bool Bytes(uint8_t* dst, size_t k) {
    if (!Need(k)) return false;
    if (k != 0) std::memcpy(dst, p, k);
    p += k;
    n -= k;
    return true;
  }
};

Status WireError(const Reader& r, const char* frame) {
  return Status::IntegrityError(std::string("wire ") + frame + ": " +
                                (r.error != nullptr ? r.error : "malformed"));
}

}  // namespace

void EncodeBatchRequest(const BatchRequest& request,
                        std::vector<uint8_t>* out) {
  PutU32(out, kRequestMagic);
  PutU32(out, static_cast<uint32_t>(request.runs.size()));
  for (const BatchRequest::Run& run : request.runs) {
    PutU64(out, run.begin);
    PutU64(out, run.end);
  }
  PutU32(out, static_cast<uint32_t>(request.bare_chunks.size()));
  for (uint64_t chunk : request.bare_chunks) PutU64(out, chunk);
  PutU32(out, static_cast<uint32_t>(request.hints.size()));
  for (const BatchRequest::ChunkHint& hint : request.hints) {
    PutU64(out, hint.chunk);
    PutU64(out, hint.known_nodes);
    PutU8(out, hint.root_known ? 1 : 0);
  }
}

Result<BatchRequest> DecodeBatchRequest(const uint8_t* data, size_t size) {
  Reader r{data, size};
  if (r.U32() != kRequestMagic) {
    if (r.error == nullptr) r.error = "bad magic";
    return WireError(r, "request");
  }
  BatchRequest request;
  uint32_t runs = r.Count(16);
  request.runs.reserve(runs);
  for (uint32_t i = 0; i < runs && r.error == nullptr; ++i) {
    BatchRequest::Run run;
    run.begin = r.U64();
    run.end = r.U64();
    request.runs.push_back(run);
  }
  uint32_t bare = r.Count(8);
  request.bare_chunks.reserve(bare);
  for (uint32_t i = 0; i < bare && r.error == nullptr; ++i) {
    request.bare_chunks.push_back(r.U64());
  }
  uint32_t hints = r.Count(17);
  request.hints.reserve(hints);
  for (uint32_t i = 0; i < hints && r.error == nullptr; ++i) {
    BatchRequest::ChunkHint hint;
    hint.chunk = r.U64();
    hint.known_nodes = r.U64();
    uint8_t flag = r.U8();
    if (flag > 1) r.error = "root_known flag not boolean";
    hint.root_known = flag == 1;
    request.hints.push_back(hint);
  }
  if (r.error != nullptr) return WireError(r, "request");
  if (r.n != 0) {
    r.error = "trailing bytes after frame";
    return WireError(r, "request");
  }
  return request;
}

void EncodeBatchResponse(const BatchResponse& response,
                         std::vector<uint8_t>* out) {
  PutU32(out, kResponseMagic);
  PutU32(out, static_cast<uint32_t>(response.segments.size()));
  for (const BatchResponse::Segment& seg : response.segments) {
    PutU64(out, seg.begin);
    // csxa-lint: allow(taint-release) framing copies tainted bytes verbatim
    const std::vector<uint8_t>& ct = seg.ciphertext.ReleaseUnverified();
    PutU64(out, ct.size());
    PutBytes(out, ct.data(), ct.size());
  }
  PutU32(out, static_cast<uint32_t>(response.chunks.size()));
  for (const RangeResponse::ChunkMaterial& mat : response.chunks) {
    PutU64(out, mat.chunk_index);
    PutU32(out, mat.first_fragment);
    PutU32(out, mat.last_fragment);
    PutU8(out, 0);  // has_prefix_state: never set in the batched protocol.
    PutU32(out, static_cast<uint32_t>(mat.proof.size()));
    for (const ProofNode& node : mat.proof) {
      PutU32(out, static_cast<uint32_t>(node.level));
      PutU64(out, node.index);
      PutBytes(out, node.hash.data(), node.hash.size());
    }
    PutU32(out, static_cast<uint32_t>(mat.encrypted_digest.size()));
    PutBytes(out, mat.encrypted_digest.data(), mat.encrypted_digest.size());
  }
}

Result<BatchResponse> DecodeBatchResponse(const uint8_t* data, size_t size) {
  Reader r{data, size};
  if (r.U32() != kResponseMagic) {
    if (r.error == nullptr) r.error = "bad magic";
    return WireError(r, "response");
  }
  BatchResponse response;
  uint32_t segments = r.Count(16);
  response.segments.reserve(segments);
  for (uint32_t i = 0; i < segments && r.error == nullptr; ++i) {
    BatchResponse::Segment seg;
    seg.begin = r.U64();
    uint64_t len = r.U64();
    if (!r.Need(len)) break;
    std::vector<uint8_t> raw(len);
    r.Bytes(raw.data(), len);
    seg.ciphertext = common::UnverifiedBytes(std::move(raw));
    response.segments.push_back(std::move(seg));
  }
  uint32_t chunks = r.Count(25);
  response.chunks.reserve(chunks);
  for (uint32_t i = 0; i < chunks && r.error == nullptr; ++i) {
    RangeResponse::ChunkMaterial mat;
    mat.chunk_index = r.U64();
    mat.first_fragment = r.U32();
    mat.last_fragment = r.U32();
    if (r.U8() != 0 && r.error == nullptr) {
      // Fragment alignment makes prefix states unnecessary in a batch; a
      // terminal shipping one is speaking the wrong protocol.
      r.error = "prefix state on batched wire";
    }
    uint32_t proof = r.Count(32);
    mat.proof.reserve(proof);
    for (uint32_t j = 0; j < proof && r.error == nullptr; ++j) {
      ProofNode node;
      node.level = static_cast<int>(r.U32());
      node.index = r.U64();
      r.Bytes(node.hash.data(), node.hash.size());
      mat.proof.push_back(node);
    }
    uint64_t digest_len = r.U32();
    if (!r.Need(digest_len)) break;
    mat.encrypted_digest.resize(digest_len);
    r.Bytes(mat.encrypted_digest.data(), digest_len);
    response.chunks.push_back(std::move(mat));
  }
  if (r.error != nullptr) return WireError(r, "response");
  if (r.n != 0) {
    r.error = "trailing bytes after frame";
    return WireError(r, "response");
  }
  return response;
}

}  // namespace csxa::crypto
