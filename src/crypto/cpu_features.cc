#include "crypto/cpu_features.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace csxa::crypto {

namespace {

struct Probe {
  bool aes = false;
  bool sha = false;
  Probe() {
#if defined(__x86_64__) || defined(__i386__)
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
      aes = (ecx & (1u << 25)) != 0;  // CPUID.1:ECX.AESNI
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      sha = (ebx & (1u << 29)) != 0;  // CPUID.7.0:EBX.SHA
    }
#endif
  }
};

const Probe& CpuProbe() {
  static const Probe probe;
  return probe;
}

}  // namespace

bool CpuHasAesNi() { return CpuProbe().aes; }
bool CpuHasShaNi() { return CpuProbe().sha; }

bool ForcePortableCrypto() {
  static const bool forced = [] {
    const char* env = std::getenv("CSXA_FORCE_PORTABLE");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return forced;
}

}  // namespace csxa::crypto
