#include "crypto/digest_cache.h"

#include <algorithm>

namespace csxa::crypto {

VerifiedDigestCache::VerifiedDigestCache(uint32_t fragments_per_chunk,
                                         size_t capacity, uint32_t version)
    : frags_(fragments_per_chunk),
      levels_(1),
      capacity_(capacity),
      version_(version) {
  for (uint32_t w = frags_; w > 1; w /= 2) ++levels_;
}

size_t VerifiedDigestCache::NodeIndex(int level, uint64_t index) const {
  // Level-major offset: level 0 starts at 0 with frags_ nodes, level l
  // starts after frags_ + frags_/2 + ... nodes.
  size_t off = 0;
  uint32_t width = frags_;
  for (int l = 0; l < level; ++l) {
    off += width;
    width /= 2;
  }
  return off + index;
}

const VerifiedDigestCache::Entry* VerifiedDigestCache::Find(
    uint64_t chunk) const {
  for (const Entry& e : entries_) {
    if (e.chunk == chunk && !e.known.empty()) {
      e.last_use = ++clock_;
      return &e;
    }
  }
  return nullptr;
}

VerifiedDigestCache::Entry* VerifiedDigestCache::Obtain(uint64_t chunk) {
  for (Entry& e : entries_) {
    if (e.chunk == chunk && !e.known.empty()) {
      e.last_use = ++clock_;
      return &e;
    }
  }
  Entry* e;
  if (entries_.size() < capacity_) {
    e = &entries_.emplace_back();
  } else {
    // Displace the least recently used *unpinned* entry (capacity is
    // small; a linear scan is cheaper than any index). Pinned chunks are
    // the ones in-flight batches' waivers and trimming hints depend on —
    // evicting one mid-batch would fail an honest response. (Inline, not a
    // lambda: thread-safety analysis cannot carry REQUIRES(mu_) into a
    // lambda body, so a capture touching pinned_ would be a false alarm.)
    size_t victim = entries_.size();
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (std::find(pinned_.begin(), pinned_.end(), entries_[i].chunk) !=
          pinned_.end()) {
        continue;
      }
      if (victim == entries_.size() ||
          entries_[i].last_use < entries_[victim].last_use) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return nullptr;  // All slots pinned.
    ++stats_.evictions;
    e = &entries_[victim];
  }
  e->chunk = chunk;
  e->last_use = ++clock_;
  e->nodes.assign(2 * size_t{frags_} - 1, Sha1Digest{});
  e->known.assign(2 * size_t{frags_} - 1, 0);
  return e;
}

void VerifiedDigestCache::FillIn(Entry* e) {
  // Combine upward wherever both children are known: cached coverage
  // climbs as high as it can, so any later range whose flanking subtrees
  // fall under known nodes verifies bare.
  uint32_t width = frags_;
  for (int level = 0; level + 1 < levels_; ++level) {
    for (uint64_t i = 0; i + 1 < width; i += 2) {
      size_t left = NodeIndex(level, i);
      size_t right = NodeIndex(level, i + 1);
      size_t up = NodeIndex(level + 1, i / 2);
      if (!e->known[up] && e->known[left] && e->known[right]) {
        e->nodes[up] = Sha1::HashPair(e->nodes[left], e->nodes[right]);
        e->known[up] = 1;
      }
    }
    width /= 2;
  }
}

void VerifiedDigestCache::Pin(const std::vector<uint64_t>& chunks) {
  MutexLock lock(&mu_);
  pinned_.insert(pinned_.end(), chunks.begin(), chunks.end());
}

void VerifiedDigestCache::Unpin(const std::vector<uint64_t>& chunks) {
  MutexLock lock(&mu_);
  for (uint64_t chunk : chunks) {
    auto it = std::find(pinned_.begin(), pinned_.end(), chunk);
    if (it != pinned_.end()) pinned_.erase(it);
  }
}

bool VerifiedDigestCache::CanVerifyBare(uint64_t chunk, uint32_t first,
                                        uint32_t last) const {
  // Pure probe: planner and fetcher may ask repeatedly while shaping one
  // batch, so hit/miss accounting happens at verification time
  // (RecordBareHit / the decryptor's material path), not here.
  MutexLock lock(&mu_);
  const Entry* e = Find(chunk);
  if (e == nullptr || first > last || last >= frags_) return false;
  uint64_t lo = first, hi = last, width = frags_;
  for (int level = 0; width > 1; ++level, lo /= 2, hi /= 2, width /= 2) {
    if (lo % 2 == 1 && !e->known[NodeIndex(level, lo - 1)]) return false;
    if (hi % 2 == 0 && hi + 1 < width &&
        !e->known[NodeIndex(level, hi + 1)]) {
      return false;
    }
  }
  return true;
}

void VerifiedDigestCache::RecordBareHit() const {
  MutexLock lock(&mu_);
  ++stats_.bare_hits;
}

void VerifiedDigestCache::RecordMiss() const {
  MutexLock lock(&mu_);
  ++stats_.misses;
}

std::vector<ProofNode> VerifiedDigestCache::ProofFor(uint64_t chunk,
                                                     uint32_t first,
                                                     uint32_t last) const {
  MutexLock lock(&mu_);
  std::vector<ProofNode> proof;
  const Entry* e = Find(chunk);
  if (e == nullptr) return proof;
  uint64_t lo = first, hi = last, width = frags_;
  for (int level = 0; width > 1; ++level, lo /= 2, hi /= 2, width /= 2) {
    if (lo % 2 == 1) {
      proof.push_back({level, lo - 1, e->nodes[NodeIndex(level, lo - 1)]});
    }
    if (hi % 2 == 0 && hi + 1 < width) {
      proof.push_back({level, hi + 1, e->nodes[NodeIndex(level, hi + 1)]});
    }
  }
  return proof;
}

bool VerifiedDigestCache::Root(uint64_t chunk, Sha1Digest* out) const {
  MutexLock lock(&mu_);
  const Entry* e = Find(chunk);
  if (e == nullptr) return false;
  if (out != nullptr) *out = e->root;
  return true;
}

bool VerifiedDigestCache::RootKnown(uint64_t chunk) const {
  return Root(chunk, nullptr);
}

bool VerifiedDigestCache::Node(uint64_t chunk, int level, uint64_t index,
                               Sha1Digest* out) const {
  MutexLock lock(&mu_);
  const Entry* e = Find(chunk);
  if (e == nullptr || level < 0 || level >= levels_ ||
      index >= (uint64_t{frags_} >> level)) {
    return false;
  }
  size_t idx = NodeIndex(level, index);
  if (!e->known[idx]) return false;
  if (out != nullptr) *out = e->nodes[idx];
  return true;
}

uint64_t VerifiedDigestCache::KnownMask(uint64_t chunk) const {
  MutexLock lock(&mu_);
  const Entry* e = Find(chunk);
  if (e == nullptr || e->known.size() > 64) return 0;
  uint64_t mask = 0;
  for (size_t i = 0; i < e->known.size(); ++i) {
    if (e->known[i]) mask |= uint64_t{1} << i;
  }
  return mask;
}

uint64_t VerifiedDigestCache::MissingProofNodes(uint64_t chunk, uint32_t first,
                                                uint32_t last) const {
  // Same range guard as CanVerifyBare: a malformed range has no proof to
  // price (and must not index past the entry's node table).
  if (first > last || last >= frags_) return 0;
  MutexLock lock(&mu_);
  const Entry* e = Find(chunk);
  uint64_t missing = 0;
  uint64_t lo = first, hi = last, width = frags_;
  for (int level = 0; width > 1; ++level, lo /= 2, hi /= 2, width /= 2) {
    if (lo % 2 == 1 &&
        (e == nullptr || !e->known[NodeIndex(level, lo - 1)])) {
      ++missing;
    }
    if (hi % 2 == 0 && hi + 1 < width &&
        (e == nullptr || !e->known[NodeIndex(level, hi + 1)])) {
      ++missing;
    }
  }
  return missing;
}

uint64_t VerifiedDigestCache::FlatIndex(uint32_t fragments_per_chunk,
                                        int level, uint64_t index) {
  uint64_t off = 0;
  uint32_t width = fragments_per_chunk;
  for (int l = 0; l < level; ++l) {
    off += width;
    width /= 2;
  }
  return off + index;
}

VerifiedDigestCache::Stats VerifiedDigestCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void VerifiedDigestCache::Record(common::VerifyPass, uint64_t chunk,
                                 const Sha1Digest& root, uint32_t first,
                                 const std::vector<Sha1Digest>& leaves,
                                 const std::vector<ProofNode>& proof) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  Entry* e = Obtain(chunk);
  if (e == nullptr) return;  // Every slot pinned by in-flight batches.
  e->root = root;
  e->nodes[NodeIndex(levels_ - 1, 0)] = root;
  e->known[NodeIndex(levels_ - 1, 0)] = 1;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (first + i >= frags_) break;
    e->nodes[NodeIndex(0, first + i)] = leaves[i];
    e->known[NodeIndex(0, first + i)] = 1;
  }
  for (const ProofNode& node : proof) {
    // Sanitize coordinates: only well-formed (level, index) pairs land in
    // the tree (a junk extra node could otherwise overwrite a slot a later
    // bare read consults — still caught by the root comparison, but a
    // needless failure).
    if (node.level < 0 || node.level >= levels_) continue;
    if (node.index >= (uint64_t{frags_} >> node.level)) continue;
    size_t idx = NodeIndex(node.level, node.index);
    e->nodes[idx] = node.hash;
    e->known[idx] = 1;
  }
  FillIn(e);
  ++stats_.records;
}

}  // namespace csxa::crypto
