#ifndef CSXA_CRYPTO_CPU_FEATURES_H_
#define CSXA_CRYPTO_CPU_FEATURES_H_

namespace csxa::crypto {

/// Runtime CPUID probes for the instruction-set extensions the accelerated
/// cipher/hash paths use. Always false on non-x86 builds.
bool CpuHasAesNi();
bool CpuHasShaNi();

/// True when the CSXA_FORCE_PORTABLE environment variable is set (and not
/// "0"): every accelerated path must then behave as if the hardware lacked
/// the extension, so the portable fallbacks stay covered by tests and CI
/// on machines that do have the hardware. Read once per process.
bool ForcePortableCrypto();

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_CPU_FEATURES_H_
