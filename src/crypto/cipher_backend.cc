#include "crypto/cipher_backend.h"

#include <algorithm>

#include "crypto/aes.h"
#include "crypto/position_cipher.h"

namespace csxa::crypto {

namespace {

/// The reference backend: the paper's position-mixed 3DES-ECB, byte-for-
/// byte identical to the scheme PR 1 shipped (existing stores, digests
/// and wire baselines stay valid).
class Des3Backend : public CipherBackend {
 public:
  explicit Des3Backend(const TripleDes::Key& key) : cipher_(key) {}

  const char* name() const override { return "3des"; }
  bool hardware_accelerated() const override { return false; }
  uint32_t block_size() const override { return 8; }

  void EncryptSegment(uint8_t* data, size_t n,
                      uint64_t first_block) const override {
    cipher_.EncryptInPlace(data, n, first_block);
  }
  void DecryptSegment(uint8_t* data, size_t n,
                      uint64_t first_block) const override {
    cipher_.DecryptInPlace(data, n, first_block);
  }

 private:
  PositionCipher cipher_;
};

/// Position-mixed AES-128-ECB over 16-byte blocks: the same scheme as the
/// 3DES reference with the tweak widened to the AES block (the 64-bit
/// big-endian byte position in the trailing 8 tweak bytes). Deliberately
/// *not* a keystream mode: a chunk digest's plaintext is predictable from
/// public data (the Merkle root is computable from served ciphertext), so
/// XORing a position-derived keystream would let the terminal recover pad
/// bytes and forge digests — ECB-with-tweak keeps the paper's security
/// argument intact (see ARCHITECTURE.md).
class AesBackend : public CipherBackend {
 public:
  AesBackend(const TripleDes::Key& key, bool allow_hardware)
      : aes_([&key] {
          Aes128::Key k;
          std::copy_n(key.begin(), k.size(), k.begin());
          return Aes128(k);
        }()),
        allow_hardware_(allow_hardware) {}

  const char* name() const override {
    return allow_hardware_ ? "aes" : "aes-portable";
  }
  bool hardware_accelerated() const override {
    return allow_hardware_ && Aes128::HardwareAvailable();
  }
  uint32_t block_size() const override { return 16; }

  void EncryptSegment(uint8_t* data, size_t n,
                      uint64_t first_block) const override {
    aes_.EncryptSegmentTweaked(data, n, first_block, allow_hardware_);
  }
  void DecryptSegment(uint8_t* data, size_t n,
                      uint64_t first_block) const override {
    aes_.DecryptSegmentTweaked(data, n, first_block, allow_hardware_);
  }

 private:
  Aes128 aes_;
  bool allow_hardware_;
};

}  // namespace

std::unique_ptr<const CipherBackend> MakeCipherBackend(
    CipherBackendKind kind, const TripleDes::Key& key) {
  switch (kind) {
    case CipherBackendKind::kAes:
      return std::make_unique<AesBackend>(key, /*allow_hardware=*/true);
    case CipherBackendKind::kAesPortable:
      return std::make_unique<AesBackend>(key, /*allow_hardware=*/false);
    case CipherBackendKind::k3Des:
      break;
  }
  return std::make_unique<Des3Backend>(key);
}

const char* CipherBackendKindName(CipherBackendKind kind) {
  switch (kind) {
    case CipherBackendKind::kAes: return "aes";
    case CipherBackendKind::kAesPortable: return "aes-portable";
    case CipherBackendKind::k3Des: break;
  }
  return "3des";
}

Result<CipherBackendKind> ParseCipherBackendName(const std::string& name) {
  if (name == "3des") return CipherBackendKind::k3Des;
  if (name == "aes") return CipherBackendKind::kAes;
  if (name == "aes-portable") return CipherBackendKind::kAesPortable;
  return Status::InvalidArgument(
      "unknown cipher backend '" + name + "' (expected 3des, aes, or "
      "aes-portable)");
}

bool CipherBackendHardwareAccelerated(CipherBackendKind kind) {
  return kind == CipherBackendKind::kAes && Aes128::HardwareAvailable();
}

uint32_t CipherBackendBlockSize(CipherBackendKind kind) {
  return kind == CipherBackendKind::k3Des ? 8 : 16;
}

}  // namespace csxa::crypto
