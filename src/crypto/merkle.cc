#include "crypto/merkle.h"

// Error-taxonomy contract (enforced by tools/csxa_lint.py): this module
// reports malformed *caller* input as InvalidArgument and non-converging
// proofs as Corruption — never IntegrityError. Deciding whether a failed
// proof means tampering is the caller's job: every verification-path
// caller wraps these into its own IntegrityError with a message naming
// the attack surface.

namespace csxa::crypto {

const Sha1Digest& MerkleTree::EmptyLeaf() {
  static const Sha1Digest kEmpty = Sha1::Hash(std::string());
  return kEmpty;
}

MerkleTree MerkleTree::Build(std::vector<Sha1Digest> leaves) {
  MerkleTree tree;
  tree.levels_.push_back(std::move(leaves));
  while (tree.levels_.back().size() > 1) {
    const auto& below = tree.levels_.back();
    std::vector<Sha1Digest> level;
    level.reserve(below.size() / 2);
    for (size_t i = 0; i + 1 < below.size(); i += 2) {
      level.push_back(Sha1::HashPair(below[i], below[i + 1]));
    }
    tree.levels_.push_back(std::move(level));
  }
  return tree;
}

std::vector<ProofNode> MerkleTree::ProofForRange(uint64_t first,
                                                 uint64_t last) const {
  std::vector<ProofNode> proof;
  uint64_t lo = first;
  uint64_t hi = last;
  for (int level = 0; level + 1 < static_cast<int>(levels_.size()); ++level) {
    const auto& nodes = levels_[level];
    if (lo % 2 == 1) {
      proof.push_back({level, lo - 1, nodes[lo - 1]});
    }
    if (hi % 2 == 0 && hi + 1 < nodes.size()) {
      proof.push_back({level, hi + 1, nodes[hi + 1]});
    }
    lo /= 2;
    hi /= 2;
  }
  return proof;
}

Result<Sha1Digest> MerkleTree::RootFromRange(
    uint64_t leaf_count, uint64_t first, uint64_t last,
    const std::vector<Sha1Digest>& range_leaves,
    const std::vector<ProofNode>& proof) {
  if (leaf_count == 0 || (leaf_count & (leaf_count - 1)) != 0) {
    return Status::InvalidArgument("leaf_count must be a power of two");
  }
  if (first > last || last >= leaf_count ||
      range_leaves.size() != last - first + 1) {
    return Status::InvalidArgument("bad leaf range");
  }
  // Hashes we currently know at the working level, indexed by node index.
  std::vector<Sha1Digest> known = range_leaves;
  uint64_t lo = first;
  uint64_t hi = last;
  uint64_t width = leaf_count;
  int level = 0;
  auto find_proof = [&proof](int lvl, uint64_t idx,
                             Sha1Digest* out) -> bool {
    for (const ProofNode& node : proof) {
      if (node.level == lvl && node.index == idx) {
        *out = node.hash;
        return true;
      }
    }
    return false;
  };
  while (width > 1) {
    // Extend [lo, hi] to even boundaries using proof hashes.
    if (lo % 2 == 1) {
      Sha1Digest sibling;
      if (!find_proof(level, lo - 1, &sibling)) {
        return Status::Corruption("merkle proof missing left sibling");
      }
      known.insert(known.begin(), sibling);
      --lo;
    }
    if (hi % 2 == 0 && hi + 1 < width) {
      Sha1Digest sibling;
      if (!find_proof(level, hi + 1, &sibling)) {
        return Status::Corruption("merkle proof missing right sibling");
      }
      known.push_back(sibling);
      ++hi;
    }
    // Combine pairs.
    std::vector<Sha1Digest> above;
    above.reserve(known.size() / 2);
    for (size_t i = 0; i + 1 < known.size(); i += 2) {
      above.push_back(Sha1::HashPair(known[i], known[i + 1]));
    }
    known = std::move(above);
    lo /= 2;
    hi /= 2;
    width /= 2;
    ++level;
  }
  if (known.size() != 1) {
    return Status::Corruption("merkle verification did not converge");
  }
  return known[0];
}

}  // namespace csxa::crypto
