#ifndef CSXA_CRYPTO_DIGEST_CACHE_H_
#define CSXA_CRYPTO_DIGEST_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/tainted.h"
#include "common/thread_annotations.h"
#include "crypto/merkle.h"
#include "crypto/sha1.h"

namespace csxa::crypto {

/// Small, bounded SOE-side cache of *already authenticated* Merkle material,
/// keyed by chunk index. Once a chunk has been verified the classic way
/// (leaf hashes + sibling proof + decrypted ChunkDigest), every hash the SOE
/// computed or received en route is as trustworthy as the digest itself —
/// the cache keeps those node hashes so that a later read touching the same
/// chunk (a deferral re-read, a hot chunk's next fragment) can be served
/// *bare*: ciphertext only, no sibling hashes on the wire, no ChunkDigest
/// transfer or decryption. The re-read is verified by recomputing the leaf
/// hashes of the shipped fragments and combining them with cached sibling
/// hashes up to the cached, authenticated root.
///
/// Security argument: entries are written exclusively after a full
/// digest-chain verification, so every cached hash is collision-bound to
/// the ciphertext the document owner sealed. A terminal tampering with
/// re-read ciphertext changes the recomputed leaf hash, the recombined
/// root diverges from the cached one, and the read is rejected — the cache
/// narrows the *wire format*, never the trust chain. Capacity is a few
/// dozen entries (one entry is ~2·m hashes for m fragments per chunk), so
/// the SOE memory bound is respected; eviction only costs a fallback to
/// the classic proof-carrying read.
///
/// Sharing across serves: every method is internally synchronized, so one
/// cache instance can back many concurrent sessions of the *same document
/// version* — whoever verifies a chunk first pays the material transfer,
/// everyone else reads bare. One instance is bound to exactly one
/// (document, version) pair (`version()`); a version bump means a fresh
/// instance, never a flush, so stale-version hashes can never vouch for
/// bumped content (replay protection is the decryptor's version check plus
/// this keying). Sharing leaks nothing between subjects: cached hashes
/// authenticate ciphertext the terminal already serves to anyone.
class VerifiedDigestCache {
 public:
  /// `fragments_per_chunk` must be the layout's (power-of-two) value.
  /// `capacity` 0 disables the cache entirely (every lookup misses).
  /// `version` stamps the document version this instance vouches for.
  VerifiedDigestCache(uint32_t fragments_per_chunk, size_t capacity,
                      uint32_t version = 0);

  /// True when the cache holds every sibling hash a proof for leaves
  /// [first, last] of `chunk` would contain, plus the root — i.e. the
  /// chunk can be re-read bare.
  bool CanVerifyBare(uint64_t chunk, uint32_t first, uint32_t last) const;

  /// The cached sibling hashes for [first, last], in ProofForRange shape.
  /// Only valid when CanVerifyBare() returned true.
  std::vector<ProofNode> ProofFor(uint64_t chunk, uint32_t first,
                                  uint32_t last) const;

  /// Copies the authenticated root of `chunk` into `*out`; false when the
  /// chunk is not cached. (By value: a pointer into an entry could dangle
  /// the moment another serve's Record() evicts it.)
  bool Root(uint64_t chunk, Sha1Digest* out) const;
  bool RootKnown(uint64_t chunk) const;

  /// Copies the cached node at (level, index); false when unknown.
  bool Node(uint64_t chunk, int level, uint64_t index, Sha1Digest* out) const;

  /// Bitmask of known nodes (bit = FlatIndex(level, index)), for the
  /// proof-trimming hint of a BatchRequest: the terminal omits every
  /// sibling hash the SOE already holds. 0 when the chunk is uncached or
  /// the tree exceeds 64 nodes (no trimming, only wasted wire).
  uint64_t KnownMask(uint64_t chunk) const;

  /// Number of sibling hashes a proof for fragments [first, last] of
  /// `chunk` would have to *ship* given what is already cached: the full
  /// ProofForRange count on a cold chunk, only the unknown nodes on a warm
  /// one, 0 when the range verifies bare. The fetch planner's proof-cost
  /// probe — its chunk-completion arithmetic must price the post-trimming
  /// wire, not the cold-cache worst case.
  uint64_t MissingProofNodes(uint64_t chunk, uint32_t first,
                             uint32_t last) const;

  /// Level-major flat index shared by KnownMask and the terminal's
  /// trimming: leaves first, then each level up, root last.
  static uint64_t FlatIndex(uint32_t fragments_per_chunk, int level,
                            uint64_t index);

  /// Scoped pin: while alive, the named chunks cannot be evicted (a
  /// Record() of a new chunk that would displace a pinned entry becomes a
  /// no-op instead). The fetcher pins every chunk of a batch before
  /// probing the cache for waivers/trimming hints, so no concurrent
  /// serve's insertions can invalidate claims between request-building and
  /// verification. Pins from concurrent scopes accumulate (multiset).
  /// Movable so a batch can carry its pin across the round trip.
  class PinScope {
   public:
    PinScope() = default;
    PinScope(VerifiedDigestCache* cache, std::vector<uint64_t> chunks)
        : cache_(cache), chunks_(std::move(chunks)) {
      if (cache_ != nullptr) cache_->Pin(chunks_);
    }
    ~PinScope() { Release(); }
    PinScope(PinScope&& other) noexcept
        : cache_(other.cache_), chunks_(std::move(other.chunks_)) {
      other.cache_ = nullptr;
    }
    PinScope& operator=(PinScope&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        chunks_ = std::move(other.chunks_);
        other.cache_ = nullptr;
      }
      return *this;
    }
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

   private:
    void Release() {
      if (cache_ != nullptr) cache_->Unpin(chunks_);
      cache_ = nullptr;
    }
    VerifiedDigestCache* cache_ = nullptr;
    std::vector<uint64_t> chunks_;
  };

  /// Records authenticated material after a successful verification: the
  /// recomputed leaf hashes of [first, first + leaves.size()), the sibling
  /// hashes that were shipped, and the root the digest confirmed. Interior
  /// nodes derivable from known children are filled in eagerly, so later
  /// ranges need no hashes the cache cannot produce.
  ///
  /// The common::VerifyPass passkey makes "exclusively after a full
  /// digest-chain verification" (the cache's entire security argument,
  /// above) a compile-time fact: only the SoeDecryptor's verification path
  /// can mint one, so no other code can write this cache.
  void Record(common::VerifyPass, uint64_t chunk, const Sha1Digest& root,
              uint32_t first, const std::vector<Sha1Digest>& leaves,
              const std::vector<ProofNode>& proof);

  struct Stats {
    uint64_t bare_hits = 0;    ///< Chunk reads actually verified bare.
    uint64_t misses = 0;       ///< Material-path verifications of uncached chunks.
    uint64_t records = 0;      ///< Verified chunks recorded.
    uint64_t evictions = 0;    ///< LRU entries displaced.
  };
  /// Snapshot (by value: the shared instance keeps mutating).
  Stats stats() const;
  size_t capacity() const { return capacity_; }
  uint32_t version() const { return version_; }
  /// Verification-time accounting (CanVerifyBare itself is a pure probe).
  void RecordBareHit() const;
  void RecordMiss() const;

 private:
  friend class PinScope;

  struct Entry {
    uint64_t chunk = 0;
    mutable uint64_t last_use = 0;  ///< LRU clock; touched on const reads.
    Sha1Digest root{};
    /// Flat binary tree, level-major: nodes_[0..m) = leaves, then m/2
    /// level-1 nodes, ..., ending with the root at nodes_[2m-2].
    std::vector<Sha1Digest> nodes;
    std::vector<uint8_t> known;
  };

  void Pin(const std::vector<uint64_t>& chunks) CSXA_EXCLUDES(mu_);
  void Unpin(const std::vector<uint64_t>& chunks) CSXA_EXCLUDES(mu_);

  // Lock-held internals: the annotations make "mu_ must be held by the
  // caller" a compile-time obligation under clang, not a comment.
  size_t NodeIndex(int level, uint64_t index) const;  // Pure geometry.
  const Entry* Find(uint64_t chunk) const CSXA_REQUIRES(mu_);
  /// Find or insert-with-eviction; nullptr when every evictable slot is
  /// pinned (the caller simply skips recording).
  Entry* Obtain(uint64_t chunk) CSXA_REQUIRES(mu_);
  void FillIn(Entry* e) CSXA_REQUIRES(mu_);

  // Immutable after construction — readable without the lock.
  uint32_t frags_;
  int levels_;  ///< log2(frags_) + 1.
  size_t capacity_;
  uint32_t version_;

  mutable Mutex mu_;
  mutable uint64_t clock_ CSXA_GUARDED_BY(mu_) = 0;
  std::vector<Entry> entries_ CSXA_GUARDED_BY(mu_);
  /// Multiset of chunks shielded from eviction.
  std::vector<uint64_t> pinned_ CSXA_GUARDED_BY(mu_);
  mutable Stats stats_ CSXA_GUARDED_BY(mu_);
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_DIGEST_CACHE_H_
