#ifndef CSXA_CRYPTO_DIGEST_CACHE_H_
#define CSXA_CRYPTO_DIGEST_CACHE_H_

#include <cstdint>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha1.h"

namespace csxa::crypto {

/// Small, bounded SOE-side cache of *already authenticated* Merkle material,
/// keyed by chunk index. Once a chunk has been verified the classic way
/// (leaf hashes + sibling proof + decrypted ChunkDigest), every hash the SOE
/// computed or received en route is as trustworthy as the digest itself —
/// the cache keeps those node hashes so that a later read touching the same
/// chunk (a deferral re-read, a hot chunk's next fragment) can be served
/// *bare*: ciphertext only, no sibling hashes on the wire, no ChunkDigest
/// transfer or decryption. The re-read is verified by recomputing the leaf
/// hashes of the shipped fragments and combining them with cached sibling
/// hashes up to the cached, authenticated root.
///
/// Security argument: entries are written exclusively after a full
/// digest-chain verification, so every cached hash is collision-bound to
/// the ciphertext the document owner sealed. A terminal tampering with
/// re-read ciphertext changes the recomputed leaf hash, the recombined
/// root diverges from the cached one, and the read is rejected — the cache
/// narrows the *wire format*, never the trust chain. Capacity is a few
/// dozen entries (one entry is ~2·m hashes for m fragments per chunk), so
/// the SOE memory bound is respected; eviction only costs a fallback to
/// the classic proof-carrying read.
class VerifiedDigestCache {
 public:
  /// `fragments_per_chunk` must be the layout's (power-of-two) value.
  /// `capacity` 0 disables the cache entirely (every lookup misses).
  VerifiedDigestCache(uint32_t fragments_per_chunk, size_t capacity);

  /// True when the cache holds every sibling hash a proof for leaves
  /// [first, last] of `chunk` would contain, plus the root — i.e. the
  /// chunk can be re-read bare.
  bool CanVerifyBare(uint64_t chunk, uint32_t first, uint32_t last) const;

  /// The cached sibling hashes for [first, last], in ProofForRange shape.
  /// Only valid when CanVerifyBare() returned true.
  std::vector<ProofNode> ProofFor(uint64_t chunk, uint32_t first,
                                  uint32_t last) const;

  /// The authenticated root of `chunk`, or nullptr when not cached.
  const Sha1Digest* Root(uint64_t chunk) const;

  /// The cached node at (level, index), or nullptr when unknown.
  const Sha1Digest* Node(uint64_t chunk, int level, uint64_t index) const;

  /// Bitmask of known nodes (bit = FlatIndex(level, index)), for the
  /// proof-trimming hint of a BatchRequest: the terminal omits every
  /// sibling hash the SOE already holds. 0 when the chunk is uncached or
  /// the tree exceeds 64 nodes (no trimming, only wasted wire).
  uint64_t KnownMask(uint64_t chunk) const;

  /// Level-major flat index shared by KnownMask and the terminal's
  /// trimming: leaves first, then each level up, root last.
  static uint64_t FlatIndex(uint32_t fragments_per_chunk, int level,
                            uint64_t index);

  /// Scoped pin: while alive, the named chunks cannot be evicted (a
  /// Record() of a new chunk that would displace a pinned entry becomes a
  /// no-op instead). DecryptVerifiedBatch pins every chunk whose material
  /// the request waived or trimmed, so mid-batch insertions can never
  /// invalidate claims the request was built on.
  class PinScope {
   public:
    PinScope(VerifiedDigestCache* cache, std::vector<uint64_t> chunks)
        : cache_(cache) {
      cache_->pinned_ = std::move(chunks);
    }
    ~PinScope() { cache_->pinned_.clear(); }
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

   private:
    VerifiedDigestCache* cache_;
  };

  /// Records authenticated material after a successful verification: the
  /// recomputed leaf hashes of [first, first + leaves.size()), the sibling
  /// hashes that were shipped, and the root the digest confirmed. Interior
  /// nodes derivable from known children are filled in eagerly, so later
  /// ranges need no hashes the cache cannot produce.
  void Record(uint64_t chunk, const Sha1Digest& root, uint32_t first,
              const std::vector<Sha1Digest>& leaves,
              const std::vector<ProofNode>& proof);

  struct Stats {
    uint64_t bare_hits = 0;    ///< Chunk reads actually verified bare.
    uint64_t misses = 0;       ///< Material-path verifications of uncached chunks.
    uint64_t records = 0;      ///< Verified chunks recorded.
    uint64_t evictions = 0;    ///< LRU entries displaced.
  };
  const Stats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  /// Verification-time accounting (CanVerifyBare itself is a pure probe).
  void RecordBareHit() const;
  void RecordMiss() const;

 private:
  struct Entry {
    uint64_t chunk = 0;
    mutable uint64_t last_use = 0;  ///< LRU clock; touched on const reads.
    Sha1Digest root{};
    /// Flat binary tree, level-major: nodes_[0..m) = leaves, then m/2
    /// level-1 nodes, ..., ending with the root at nodes_[2m-2].
    std::vector<Sha1Digest> nodes;
    std::vector<uint8_t> known;
  };

  size_t NodeIndex(int level, uint64_t index) const;
  const Entry* Find(uint64_t chunk) const;
  /// Find or insert-with-eviction; nullptr when every evictable slot is
  /// pinned (the caller simply skips recording).
  Entry* Obtain(uint64_t chunk);
  void FillIn(Entry* e);

  uint32_t frags_;
  int levels_;  ///< log2(frags_) + 1.
  size_t capacity_;
  mutable uint64_t clock_ = 0;
  std::vector<Entry> entries_;
  std::vector<uint64_t> pinned_;  ///< Chunks shielded from eviction.
  mutable Stats stats_;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_DIGEST_CACHE_H_
