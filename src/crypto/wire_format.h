#ifndef CSXA_CRYPTO_WIRE_FORMAT_H_
#define CSXA_CRYPTO_WIRE_FORMAT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/secure_store.h"

namespace csxa::crypto {

/// Byte-level framing of the batched verified-fetch protocol — the wire
/// format a real terminal transport (ROADMAP: out-of-process store) puts on
/// the socket. Both frames are length-explicit, little-endian, and carry a
/// magic so a desynchronized stream is caught at the first field.
///
/// The decoder is written for attacker-controlled input: the terminal is
/// untrusted, so every count and length field is validated against the
/// bytes actually present *before* any allocation is sized from it (a
/// length-field lie can never cause an over-allocation or an out-of-bounds
/// read), and a frame must consume its buffer exactly (trailing garbage is
/// rejected). Every malformed frame yields IntegrityError — wire corruption
/// and wire tampering are indistinguishable to the SOE, and both must fail
/// closed the same way the Merkle chain does. Nothing decoded here is
/// *trusted*: a frame that parses is still subject to the full digest-chain
/// verification in SoeDecryptor::DecryptVerifiedBatch.
///
/// Layout (all integers little-endian):
///   request  := 'Q''X''S''C' u32=count{runs} (u64 begin, u64 end)*
///               u32=count{bare} (u64 chunk)*
///               u32=count{hints} (u64 chunk, u64 known_nodes, u8 root_known)*
///   response := 'R''X''S''C' u32=count{segments} (u64 begin, u64 len, bytes)*
///               u32=count{chunks} (u64 chunk_index, u32 first_fragment,
///                 u32 last_fragment, u8 has_prefix_state(=0),
///                 u32 count{proof} (u32 level, u64 index, 20B hash)*,
///                 u32 digest_len, bytes)*
/// The batched protocol never ships prefix hash states (fragment alignment
/// makes them unnecessary), so has_prefix_state must be zero on the wire.

/// Serializes `request` into `out` (appended).
void EncodeBatchRequest(const BatchRequest& request, std::vector<uint8_t>* out);

/// Parses a request frame; the frame must span exactly [data, data+size).
Result<BatchRequest> DecodeBatchRequest(const uint8_t* data, size_t size);

/// Serializes `response` into `out` (appended).
void EncodeBatchResponse(const BatchResponse& response,
                         std::vector<uint8_t>* out);

/// Parses a response frame; the frame must span exactly [data, data+size).
Result<BatchResponse> DecodeBatchResponse(const uint8_t* data, size_t size);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_WIRE_FORMAT_H_
