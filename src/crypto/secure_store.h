#ifndef CSXA_CRYPTO_SECURE_STORE_H_
#define CSXA_CRYPTO_SECURE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/tainted.h"
#include "crypto/cipher_backend.h"
#include "crypto/digest_cache.h"
#include "crypto/merkle.h"
#include "crypto/sha1.h"

namespace csxa::crypto {

/// Chunk/fragment/block layout of Appendix A: the document is split into
/// chunks (integrity-checking unit, sized to SOE memory), divided into
/// fragments (random-access unit inside a chunk), subdivided into cipher
/// blocks (8 bytes for the paper's 3DES, 16 for the AES backend).
/// fragment_size must divide chunk_size, both multiples of the cipher
/// block, fragments-per-chunk a power of two.
struct ChunkLayout {
  uint32_t chunk_size = 2048;
  uint32_t fragment_size = 256;

  uint32_t fragments_per_chunk() const { return chunk_size / fragment_size; }
  /// `block_size` is the cipher backend's block (8 unless stated).
  Status Validate(uint32_t block_size = 8) const;
};

/// Ciphertext size of one encrypted ChunkDigest under cipher block size
/// `block_size`: the 24-byte digest plaintext (20-byte bound root hash +
/// 4-byte version) zero-padded to a whole block — 24 bytes for 3DES,
/// 32 for AES.
inline uint32_t DigestCipherBytes(uint32_t block_size) {
  return (24 + block_size - 1) / block_size * block_size;
}

/// Cipher blocks one encrypted ChunkDigest occupies — the stride of the
/// digest position space (digests live beyond the document's blocks so
/// their ciphertext can never be replayed as content).
inline uint32_t DigestBlocks(uint32_t block_size) {
  return DigestCipherBytes(block_size) / block_size;
}

/// Response of the untrusted terminal to a random read: ciphertext covering
/// the requested bytes (extended left to a block boundary and right to a
/// fragment boundary), plus per-chunk integrity material following the
/// Merkle-hash-tree protocol of Figure F1.
struct RangeResponse {
  uint64_t data_begin = 0;  ///< Absolute byte offset of ciphertext[0].
  /// Terminal bytes: typestate-tainted until the Merkle chain vouches.
  common::UnverifiedBytes ciphertext;

  struct ChunkMaterial {
    uint64_t chunk_index = 0;
    uint32_t first_fragment = 0;  ///< Fragment range covered by ciphertext.
    uint32_t last_fragment = 0;
    /// Intermediate SHA-1 state of the prefix of `first_fragment` that is
    /// *not* transferred (terminal hashed ciphertext bytes from the start
    /// of the fragment up to data_begin). Unused when the range starts at a
    /// fragment boundary.
    bool has_prefix_state = false;
    Sha1::State prefix_state;
    std::vector<ProofNode> proof;          ///< Sibling hashes (Figure F1).
    /// Encrypted ChunkDigest (DigestCipherBytes of the store's backend).
    std::vector<uint8_t> encrypted_digest;
  };
  std::vector<ChunkMaterial> chunks;

  /// Bytes moved over the terminal->SOE channel (ciphertext + hashes +
  /// digests + hash states), for the cost model.
  uint64_t WireBytes() const;
};

/// One terminal round trip of the *batched* verified-fetch protocol: the
/// SOE's fetch planner coalesces every range it needs soon into one
/// request of fragment-aligned runs, and names the chunks whose digests it
/// has already authenticated (`bare_chunks`) so the terminal ships their
/// ciphertext without any integrity material at all.
struct BatchRequest {
  /// Byte range [begin, end) of ciphertext; begin must sit on a fragment
  /// boundary, end on a fragment boundary or the document end. Sorted,
  /// disjoint, non-adjacent (adjacent ranges belong coalesced).
  struct Run {
    uint64_t begin = 0;
    uint64_t end = 0;
  };
  std::vector<Run> runs;
  /// Chunks the SOE can verify from its digest cache: ship no sibling
  /// hashes and no encrypted ChunkDigest for these. (A terminal ignoring
  /// the hint only wastes wire; omitting material that was *not* waived
  /// fails verification.)
  std::vector<uint64_t> bare_chunks;

  /// Proof trimming: per chunk, the Merkle nodes the SOE already holds
  /// authenticated copies of (bit = VerifiedDigestCache::FlatIndex). The
  /// terminal omits those sibling hashes from the chunk's proof, and omits
  /// the encrypted ChunkDigest entirely when `root_known` — so across a
  /// serve, every hash of a chunk's tree crosses the wire at most once.
  /// Claiming a node one does not hold only makes verification fail
  /// (missing sibling); it can never make tampered data pass.
  struct ChunkHint {
    uint64_t chunk = 0;
    uint64_t known_nodes = 0;
    bool root_known = false;
  };
  std::vector<ChunkHint> hints;
};

/// Response to a BatchRequest: one ciphertext segment per run, plus chunk
/// integrity material — *once per chunk per batch*, shared by every
/// fragment of the batch that falls into the chunk, and omitted entirely
/// for bare chunks. Fragment alignment makes intermediate hash states
/// unnecessary (each leaf hash restarts at a fragment boundary), so the
/// per-request proof overhead of the unbatched protocol (sibling set +
/// digest + prefix state, per range) collapses to at most one sibling set
/// and one digest per chunk per batch — and to zero for cache-hit
/// re-reads.
struct BatchResponse {
  struct Segment {
    uint64_t begin = 0;  ///< Absolute byte offset of ciphertext[0].
    /// Terminal bytes: typestate-tainted until the Merkle chain vouches.
    common::UnverifiedBytes ciphertext;
  };
  std::vector<Segment> segments;  ///< Parallel to BatchRequest::runs.
  /// Material for non-bare chunks, in ascending (segment, chunk) order.
  /// When two runs of one batch land in the same chunk, the chunk appears
  /// once per covered fragment range (rare; the planner merges same-chunk
  /// runs unless an already-valid fragment sits between them), but its
  /// digest is decrypted at most once per batch.
  std::vector<RangeResponse::ChunkMaterial> chunks;

  /// Bytes moved over the terminal->SOE channel.
  uint64_t WireBytes() const;
};

/// The terminal round-trip endpoint of the batched protocol, abstracted so
/// an SOE-side fetcher need not hold a direct pointer to one immutable
/// store: a server's document entry implements this by forwarding to its
/// *current* store behind a lock, which is what makes a version bump
/// visible (and rejectable) to sessions opened before it.
class BatchSource {
 public:
  /// Transport-side accounting a source may expose (zeros for in-process
  /// sources, where a round trip cannot fail): attempts beyond the first
  /// per request, connections re-established after a mid-stream failure,
  /// and the per-request deadline in force. The fetcher snapshots these
  /// into its own counters so cost reports price unreliability alongside
  /// wire bytes.
  struct TransportStats {
    uint64_t retries = 0;
    uint64_t reconnects = 0;
    uint64_t deadline_ns = 0;
  };

  virtual ~BatchSource() = default;
  virtual Result<BatchResponse> ReadBatch(const BatchRequest& request) const = 0;
  virtual TransportStats transport_stats() const { return {}; }
};

/// Terminal-side store of an encrypted document: position-mixed ECB
/// ciphertext under a pluggable cipher backend (paper-faithful 3DES by
/// default) plus one encrypted Merkle ChunkDigest per chunk. The terminal
/// needs no key; it only stores and serves. Tampering hooks let tests
/// emulate the attacks of Section 6.
class SecureDocumentStore : public BatchSource {
 public:
  /// Encrypts `plaintext` (zero-padded to the backend's block) in one
  /// whole-segment backend call and builds the chunk digests. The
  /// ChunkDigest binds the chunk index (preventing whole-chunk
  /// transposition) and the document `version` (Section 6: versioning
  /// counters replay of stale document states — an SOE expecting version v
  /// rejects digests sealed for v-1), and is encrypted with the document
  /// key so the terminal cannot re-derive digests for tampered data.
  static Result<SecureDocumentStore> Build(
      const std::vector<uint8_t>& plaintext, const TripleDes::Key& key,
      const ChunkLayout& layout, uint32_t version = 0,
      CipherBackendKind backend = CipherBackendKind::k3Des);

  uint64_t plaintext_size() const { return plaintext_size_; }
  const ChunkLayout& layout() const { return layout_; }
  uint64_t chunk_count() const { return digests_.size(); }
  uint32_t version() const { return version_; }
  CipherBackendKind backend() const { return backend_; }
  uint32_t block_size() const { return block_size_; }
  const std::vector<uint8_t>& ciphertext() const { return ciphertext_; }

  /// Serves `[pos, pos+n)` with integrity material. Terminal-side hashing
  /// is over ciphertext (so no key is needed), matching Section 6's
  /// requirement that the terminal can cooperate in integrity checking.
  Result<RangeResponse> ReadRange(uint64_t pos, uint64_t n) const;

  /// Serves a coalesced batch of fragment-aligned runs in one round trip
  /// (see BatchRequest/BatchResponse). Integrity material is emitted per
  /// chunk, not per run, and suppressed for the chunks the request waived.
  Result<BatchResponse> ReadBatch(const BatchRequest& request) const override;

  /// -- Attack emulation (tests) --------------------------------------
  /// Flips bits of one ciphertext byte (random modification attack).
  void TamperByte(uint64_t pos, uint8_t xor_mask);
  /// Swaps two cipher-block-sized ciphertext blocks (substitution attack).
  void SwapBlocks(uint64_t block_a, uint64_t block_b);
  /// Replaces a chunk's encrypted digest with another chunk's (digest
  /// transposition attack).
  void SwapChunkDigests(uint64_t chunk_a, uint64_t chunk_b);
  /// Replaces one chunk (ciphertext + digest) with the same chunk of an
  /// older store state (replay attack: a terminal serving a stale —
  /// internally consistent — version of updated data).
  void ReplayChunkFrom(const SecureDocumentStore& old, uint64_t chunk);

 private:
  ChunkLayout layout_;
  uint64_t plaintext_size_ = 0;
  uint32_t version_ = 0;
  CipherBackendKind backend_ = CipherBackendKind::k3Des;
  uint32_t block_size_ = 8;
  std::vector<uint8_t> ciphertext_;
  std::vector<std::vector<uint8_t>> digests_;  // encrypted ChunkDigests
};

/// SOE-side verifier/decryptor: holds the key, recomputes Merkle roots from
/// RangeResponses, compares them to the decrypted ChunkDigests, and only
/// then releases plaintext.
class SoeDecryptor {
 public:
  /// `expected_version` is the document version the SOE believes current
  /// (delivered out of band with the key); a digest sealed for any other
  /// version is rejected as a replayed stale state.
  /// `digest_cache_capacity` bounds the verified-digest cache (entries,
  /// i.e. chunks); 0 disables bare re-reads entirely.
  /// `shared_cache`, when set, replaces the private per-serve cache with a
  /// cross-serve shared one (the crypto layer holds it behind this handle
  /// only): it must be stamped with `expected_version` — a mismatch would
  /// let one version's authenticated hashes vouch for another's bytes.
  /// Passing a mismatched handle is a hard error: every DecryptVerified*
  /// call on the decryptor fails with a fixed IntegrityError (the old
  /// silent fall-back to a private cache hid wiring bugs of exactly the
  /// replay class the version stamp exists to stop).
  /// `backend` must be the cipher backend the store was built with.
  SoeDecryptor(const TripleDes::Key& key, ChunkLayout layout,
               uint64_t plaintext_size, uint64_t chunk_count,
               uint32_t expected_version = 0,
               size_t digest_cache_capacity = kDefaultDigestCacheCapacity,
               std::shared_ptr<VerifiedDigestCache> shared_cache = nullptr,
               CipherBackendKind backend = CipherBackendKind::k3Des);

  static constexpr size_t kDefaultDigestCacheCapacity = 32;

  /// Verifies integrity of `resp` and decrypts exactly the bytes
  /// [pos, pos+n) of the document. Returns IntegrityError on any mismatch.
  /// The returned VerifiedPlaintext is the typestate witness that the
  /// bytes recombined to an authenticated Merkle root — the only other way
  /// to obtain one is the batch path below.
  Result<common::VerifiedPlaintext> DecryptVerified(const RangeResponse& resp,
                                                    uint64_t pos, uint64_t n);

  /// True when the digest cache holds enough authenticated material to
  /// verify fragments [first, last] of `chunk` without any shipped
  /// integrity material — the fetcher uses this to waive chunks in a
  /// BatchRequest.
  bool CanVerifyBare(uint64_t chunk, uint32_t first, uint32_t last) const {
    return cache_->CanVerifyBare(chunk, first, last);
  }

  /// Proof-trimming hint for `chunk` (see BatchRequest::ChunkHint): which
  /// tree nodes the cache already holds, and whether the root itself is
  /// authenticated (digest transfer and decryption can be waived).
  BatchRequest::ChunkHint CacheHintFor(uint64_t chunk) const {
    return {chunk, cache_->KnownMask(chunk), cache_->RootKnown(chunk)};
  }

  /// Sibling hashes a proof for fragments [first, last] of `chunk` would
  /// still have to ship given the cache (the planner's proof-cost probe).
  uint64_t MissingProofNodes(uint64_t chunk, uint32_t first,
                             uint32_t last) const {
    return cache_->MissingProofNodes(chunk, first, last);
  }

  /// Pins `chunks` against eviction for the guard's lifetime. The fetcher
  /// pins every chunk of a batch *before* probing for waivers and
  /// trimming hints: with the cache shared across serves, a concurrent
  /// session's Record() could otherwise evict an entry between the probe
  /// and the verification that depends on it, failing an honest response.
  VerifiedDigestCache::PinScope PinChunks(std::vector<uint64_t> chunks) {
    return VerifiedDigestCache::PinScope(cache_.get(), std::move(chunks));
  }

  /// Verifies and decrypts a whole batch: each segment's chunks are
  /// checked against shipped material (then recorded in the digest cache)
  /// or — for waived chunks — against the cache's authenticated hashes.
  /// Plaintext is written in place into `out` (the document buffer of
  /// `out_size` >= plaintext_size bytes) at each segment's offset; each
  /// verified segment is handed to the cipher backend as one whole block
  /// run, so backends pipeline across blocks. Any mismatch fails the
  /// whole batch with IntegrityError before a single unverified byte is
  /// released.
  Status DecryptVerifiedBatch(const BatchRequest& request,
                              const BatchResponse& response, uint8_t* out,
                              size_t out_size);

  /// Mints the typestate witness for a buffer that is written exclusively
  /// by this decryptor's DecryptVerifiedBatch (the SecureFetcher's
  /// document image: private buffer, every write goes through the batch
  /// verify-then-decrypt path; validity per range still follows Ensure()).
  /// Feeding anything tainted here is laundering — tools/csxa_lint.py
  /// treats VerifiedViewOf as a taint sink (check: taint-dataflow).
  common::VerifiedPlaintext VerifiedViewOf(const uint8_t* data,
                                           size_t size) const {
    return common::VerifiedPlaintext(common::VerifyPass{}, data, size);
  }

  /// Cumulative work counters (fed to the cost model).
  struct Counters {
    uint64_t bytes_decrypted = 0;   ///< Payload blocks decrypted.
    uint64_t digest_bytes_decrypted = 0;
    uint64_t bytes_hashed = 0;      ///< Ciphertext bytes hashed in the SOE.
    uint64_t hash_combines = 0;     ///< Merkle interior-node hashes.
    uint64_t decrypt_ns = 0;        ///< Wall clock inside block decryption.
    uint64_t hash_ns = 0;           ///< Wall clock inside SHA-1 hashing.
  };
  const Counters& counters() const { return counters_; }
  /// Snapshot: with a shared cache these are cross-serve aggregates.
  VerifiedDigestCache::Stats cache_stats() const { return cache_->stats(); }

  /// The cipher backend this decryptor serves with (for reports).
  const char* backend_name() const { return backend_->name(); }
  bool backend_hardware_accelerated() const {
    return backend_->hardware_accelerated();
  }
  uint32_t block_size() const { return backend_->block_size(); }

  /// Computes what a chunk's encrypted digest must be; exposed so that
  /// Build and tests share one definition. The 24-byte plaintext is the
  /// index-bound root hash (20 bytes) followed by the big-endian document
  /// version (4 bytes), zero-padded to the backend's block.
  static std::vector<uint8_t> SealDigest(const CipherBackend& backend,
                                         uint64_t chunk_index,
                                         const Sha1Digest& root,
                                         uint64_t total_blocks,
                                         uint32_t version);

 private:
  /// Shared chunk-verification core: recomputes the root from `leaves`
  /// (fragments [first, last]) plus `proof`, authenticates it against the
  /// encrypted digest (decrypting it at most once per batch via
  /// `digest_memo`), and records the authenticated material in the cache.
  Status VerifyChunkAgainstMaterial(
      const RangeResponse::ChunkMaterial& mat, uint64_t chunk,
      const std::vector<Sha1Digest>& leaves,
      std::vector<std::pair<uint64_t, Sha1Digest>>* digest_memo);

  std::unique_ptr<const CipherBackend> backend_;
  ChunkLayout layout_;
  uint64_t plaintext_size_;
  uint64_t chunk_count_;
  uint32_t expected_version_;
  /// Private per-serve cache, or a handle on the service's shared one —
  /// same trust chain either way (writes happen only post-verification).
  std::shared_ptr<VerifiedDigestCache> cache_;
  /// Poison status set at construction when the shared cache handle is
  /// stamped for another version; fails every decrypt entry point.
  Status config_error_ = Status::OK();
  Counters counters_;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_SECURE_STORE_H_
