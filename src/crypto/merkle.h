#ifndef CSXA_CRYPTO_MERKLE_H_
#define CSXA_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/sha1.h"

namespace csxa::crypto {

/// One hash of a Merkle proof: the digest of the subtree rooted at
/// (level, index) that the verifier cannot recompute from the data it was
/// sent. level 0 = leaves; index counts nodes left-to-right in that level.
struct ProofNode {
  int level;
  uint64_t index;
  Sha1Digest hash;

  bool operator==(const ProofNode&) const = default;
};

/// Binary Merkle hash tree over a power-of-two number of leaves
/// (Appendix A, Figure F1: each chunk is divided into m fragments, m a
/// power of 2, organized in a binary tree whose root is the ChunkDigest).
class MerkleTree {
 public:
  /// Builds the tree bottom-up. `leaves.size()` must be a power of two
  /// (callers pad short chunks with the hash of the empty string).
  static MerkleTree Build(std::vector<Sha1Digest> leaves);

  const Sha1Digest& root() const { return levels_.back()[0]; }
  size_t leaf_count() const { return levels_[0].size(); }

  /// Sibling hashes the terminal must send so that a verifier holding the
  /// leaf hashes of [first, last] (inclusive) can recompute the root.
  std::vector<ProofNode> ProofForRange(uint64_t first, uint64_t last) const;

  /// Recomputes the root from the leaf hashes of [first, last] plus a
  /// proof. Fails (Corruption) when the proof does not cover the tree.
  static Result<Sha1Digest> RootFromRange(
      uint64_t leaf_count, uint64_t first, uint64_t last,
      const std::vector<Sha1Digest>& range_leaves,
      const std::vector<ProofNode>& proof);

  /// Padding leaf used for the tail of a short final chunk.
  static const Sha1Digest& EmptyLeaf();

 private:
  // levels_[0] = leaves ... levels_.back() = {root}.
  std::vector<std::vector<Sha1Digest>> levels_;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_MERKLE_H_
