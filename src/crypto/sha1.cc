#include "crypto/sha1.h"

#include <cstring>

namespace csxa::crypto {

namespace {

inline uint32_t Rotl(uint32_t v, int s) { return (v << s) | (v >> (32 - s)); }

}  // namespace

void Sha1::Reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  length_ = 0;
  buffered_ = 0;
  buffer_.fill(0);
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t temp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(const uint8_t* data, size_t n) {
  length_ += n;
  while (n > 0) {
    size_t take = std::min(n, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    n -= take;
    if (buffered_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
}

Sha1Digest Sha1::Finish() {
  uint64_t bit_length = length_ * 8;
  // Append 0x80 then zero padding then 64-bit big-endian length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - 8 * i));
  }
  // Write length directly to avoid growing length_ logic interference.
  std::memcpy(buffer_.data() + 56, len_bytes, 8);
  ProcessBlock(buffer_.data());
  buffered_ = 0;

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Sha1::State Sha1::SaveState() const {
  State state;
  state.h = h_;
  state.length = length_;
  state.buffer = buffer_;
  state.buffered = buffered_;
  return state;
}

void Sha1::RestoreState(const State& state) {
  h_ = state.h;
  length_ = state.length;
  buffer_ = state.buffer;
  buffered_ = state.buffered;
}

Sha1Digest Sha1::Hash(const uint8_t* data, size_t n) {
  Sha1 hasher;
  hasher.Update(data, n);
  return hasher.Finish();
}

Sha1Digest Sha1::HashPair(const Sha1Digest& left, const Sha1Digest& right) {
  Sha1 hasher;
  hasher.Update(left.data(), left.size());
  hasher.Update(right.data(), right.size());
  return hasher.Finish();
}

}  // namespace csxa::crypto
