#include "crypto/sha1.h"

#include <algorithm>
#include <cstring>

#include "crypto/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#define CSXA_SHANI_POSSIBLE 1
#include <immintrin.h>
#endif

namespace csxa::crypto {

namespace {

inline uint32_t Rotl(uint32_t v, int s) { return (v << s) | (v >> (32 - s)); }

void ProcessBlockPortable(std::array<uint32_t, 5>* state,
                          const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  uint32_t a = (*state)[0], b = (*state)[1], c = (*state)[2],
           d = (*state)[3], e = (*state)[4];
  // Four branch-free 20-round stretches.
  for (int i = 0; i < 20; ++i) {
    uint32_t temp =
        Rotl(a, 5) + (d ^ (b & (c ^ d))) + e + 0x5A827999u + w[i];
    e = d; d = c; c = Rotl(b, 30); b = a; a = temp;
  }
  for (int i = 20; i < 40; ++i) {
    uint32_t temp = Rotl(a, 5) + (b ^ c ^ d) + e + 0x6ED9EBA1u + w[i];
    e = d; d = c; c = Rotl(b, 30); b = a; a = temp;
  }
  for (int i = 40; i < 60; ++i) {
    uint32_t temp =
        Rotl(a, 5) + ((b & c) | (d & (b | c))) + e + 0x8F1BBCDCu + w[i];
    e = d; d = c; c = Rotl(b, 30); b = a; a = temp;
  }
  for (int i = 60; i < 80; ++i) {
    uint32_t temp = Rotl(a, 5) + (b ^ c ^ d) + e + 0xCA62C1D6u + w[i];
    e = d; d = c; c = Rotl(b, 30); b = a; a = temp;
  }
  (*state)[0] += a;
  (*state)[1] += b;
  (*state)[2] += c;
  (*state)[3] += d;
  (*state)[4] += e;
}

#ifdef CSXA_SHANI_POSSIBLE

/// SHA-NI compression over `nblocks` consecutive 64-byte blocks (the
/// standard Intel SHA-extensions round sequence; the NIST vectors in
/// crypto_test pin it against the portable implementation).
__attribute__((target("sha,sse4.1"))) void ProcessBlocksShaNi(
    std::array<uint32_t, 5>* state, const uint8_t* data, size_t nblocks) {
  const __m128i kMask =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);
  __m128i abcd =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state->data()));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  __m128i e0 = _mm_set_epi32(static_cast<int>((*state)[4]), 0, 0, 0);
  __m128i e1;

  while (nblocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;
    const __m128i* in = reinterpret_cast<const __m128i*>(data);
    __m128i msg0 = _mm_shuffle_epi8(_mm_loadu_si128(in + 0), kMask);
    __m128i msg1 = _mm_shuffle_epi8(_mm_loadu_si128(in + 1), kMask);
    __m128i msg2 = _mm_shuffle_epi8(_mm_loadu_si128(in + 2), kMask);
    __m128i msg3 = _mm_shuffle_epi8(_mm_loadu_si128(in + 3), kMask);

    // Rounds 0-3.
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    // Rounds 4-7.
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    // Rounds 8-11.
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 12-15.
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 16-19.
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 20-23.
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 24-27.
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 28-31.
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 32-35.
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 36-39.
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 40-43.
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 44-47.
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 48-51.
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 52-55.
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 56-59.
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 60-63.
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 64-67.
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 68-71.
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 72-75.
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    // Rounds 76-79.
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    data += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state->data()), abcd);
  (*state)[4] = static_cast<uint32_t>(_mm_extract_epi32(e0, 3));
}

#endif  // CSXA_SHANI_POSSIBLE

bool UseShaNi() {
  static const bool use = CpuHasShaNi() && !ForcePortableCrypto();
  return use;
}

}  // namespace

const char* Sha1::ImplementationName() {
#ifdef CSXA_SHANI_POSSIBLE
  if (UseShaNi()) return "sha-ni";
#endif
  return "portable";
}

bool Sha1::HardwareAccelerated() {
#ifdef CSXA_SHANI_POSSIBLE
  return UseShaNi();
#else
  return false;
#endif
}

void Sha1::Reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  length_ = 0;
  buffered_ = 0;
  buffer_.fill(0);
}

void Sha1::ProcessBlocks(const uint8_t* data, size_t nblocks) {
#ifdef CSXA_SHANI_POSSIBLE
  if (UseShaNi()) {
    ProcessBlocksShaNi(&h_, data, nblocks);
    return;
  }
#endif
  for (size_t i = 0; i < nblocks; ++i) {
    ProcessBlockPortable(&h_, data + i * 64);
  }
}

void Sha1::Update(const uint8_t* data, size_t n) {
  length_ += n;
  if (buffered_ != 0) {
    size_t take = std::min(n, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    n -= take;
    if (buffered_ == buffer_.size()) {
      ProcessBlocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Bulk path: whole blocks straight from the input, one dispatch.
  if (size_t blocks = n / 64; blocks > 0) {
    ProcessBlocks(data, blocks);
    data += blocks * 64;
    n -= blocks * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_.data() + buffered_, data, n);
    buffered_ += n;
  }
}

Sha1Digest Sha1::Finish() {
  uint64_t bit_length = length_ * 8;
  // Append 0x80 then zero padding then 64-bit big-endian length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - 8 * i));
  }
  // Write length directly to avoid growing length_ logic interference.
  std::memcpy(buffer_.data() + 56, len_bytes, 8);
  ProcessBlocks(buffer_.data(), 1);
  buffered_ = 0;

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Sha1::State Sha1::SaveState() const {
  State state;
  state.h = h_;
  state.length = length_;
  state.buffer = buffer_;
  state.buffered = buffered_;
  return state;
}

void Sha1::RestoreState(const State& state) {
  h_ = state.h;
  length_ = state.length;
  buffer_ = state.buffer;
  buffered_ = state.buffered;
}

Sha1Digest Sha1::Hash(const uint8_t* data, size_t n) {
  Sha1 hasher;
  hasher.Update(data, n);
  return hasher.Finish();
}

Sha1Digest Sha1::HashPair(const Sha1Digest& left, const Sha1Digest& right) {
  Sha1 hasher;
  hasher.Update(left.data(), left.size());
  hasher.Update(right.data(), right.size());
  return hasher.Finish();
}

}  // namespace csxa::crypto
