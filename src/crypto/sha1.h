#ifndef CSXA_CRYPTO_SHA1_H_
#define CSXA_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace csxa::crypto {

/// SHA-1 digest (20 bytes). Used for chunk digests and Merkle trees
/// (Section 6 / Appendix A of the paper use SHA-1 as the collision
/// resistant hash function).
using Sha1Digest = std::array<uint8_t, 20>;

/// Incremental SHA-1 (FIPS 180-1), implemented from scratch.
///
/// Incrementality matters: the paper's "basic" integrity protocol has the
/// untrusted terminal hash the prefix of a chunk and ship the *intermediate
/// state* to the SOE, which continues hashing — `SaveState`/`RestoreState`
/// expose exactly that.
class Sha1 {
 public:
  Sha1() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t n);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& data) {
    Update(common::AsBytes(data), data.size());
  }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// reuse.
  Sha1Digest Finish();

  /// Serialized mid-stream state (h0..h4, length, buffered block), allowing
  /// a second party to continue the hash where the first stopped.
  struct State {
    std::array<uint32_t, 5> h;
    uint64_t length = 0;
    std::array<uint8_t, 64> buffer{};
    size_t buffered = 0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

  /// One-shot convenience.
  static Sha1Digest Hash(const uint8_t* data, size_t n);
  static Sha1Digest Hash(const std::vector<uint8_t>& data) {
    return Hash(data.data(), data.size());
  }
  static Sha1Digest Hash(const std::string& data) {
    return Hash(common::AsBytes(data), data.size());
  }
  /// Hash of the concatenation of two digests (Merkle interior node).
  static Sha1Digest HashPair(const Sha1Digest& left, const Sha1Digest& right);

  /// The hash backend this process uses: "sha-ni" when the CPU's SHA
  /// extensions are live (and CSXA_FORCE_PORTABLE is unset), else
  /// "portable". All call sites — Merkle leaves, interior nodes, chunk
  /// digests — go through the same dispatch.
  static const char* ImplementationName();
  static bool HardwareAccelerated();

 private:
  void ProcessBlocks(const uint8_t* data, size_t nblocks);

  std::array<uint32_t, 5> h_;
  uint64_t length_ = 0;  // total bytes seen
  std::array<uint8_t, 64> buffer_{};
  size_t buffered_ = 0;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_SHA1_H_
