#include "crypto/block_cipher.h"

namespace csxa::crypto {

std::vector<uint8_t> ZeroPadToBlock(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> out = data;
  out.resize((data.size() + 7) / 8 * 8, 0);
  return out;
}

namespace {

inline uint64_t LoadBe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void StoreBe64(uint8_t* p, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

}  // namespace

std::vector<uint8_t> EcbEncrypt(const TripleDes& cipher,
                                const std::vector<uint8_t>& plain) {
  std::vector<uint8_t> out = plain;
  for (size_t off = 0; off + 8 <= out.size(); off += 8) {
    StoreBe64(out.data() + off, cipher.EncryptU64(LoadBe64(out.data() + off)));
  }
  return out;
}

std::vector<uint8_t> EcbDecrypt(const TripleDes& cipher,
                                const std::vector<uint8_t>& cipher_text) {
  std::vector<uint8_t> out = cipher_text;
  for (size_t off = 0; off + 8 <= out.size(); off += 8) {
    StoreBe64(out.data() + off, cipher.DecryptU64(LoadBe64(out.data() + off)));
  }
  return out;
}

std::vector<uint8_t> CbcEncrypt(const TripleDes& cipher, const Block64& iv,
                                const std::vector<uint8_t>& plain) {
  std::vector<uint8_t> out = plain;
  uint64_t prev = LoadBe64(iv.data());
  for (size_t off = 0; off + 8 <= out.size(); off += 8) {
    prev = cipher.EncryptU64(LoadBe64(out.data() + off) ^ prev);
    StoreBe64(out.data() + off, prev);
  }
  return out;
}

std::vector<uint8_t> CbcDecrypt(const TripleDes& cipher, const Block64& iv,
                                const std::vector<uint8_t>& cipher_text) {
  std::vector<uint8_t> out = cipher_text;
  uint64_t prev = LoadBe64(iv.data());
  for (size_t off = 0; off + 8 <= out.size(); off += 8) {
    uint64_t c = LoadBe64(out.data() + off);
    StoreBe64(out.data() + off, cipher.DecryptU64(c) ^ prev);
    prev = c;
  }
  return out;
}

}  // namespace csxa::crypto
