#include "crypto/block_cipher.h"

namespace csxa::crypto {

std::vector<uint8_t> ZeroPadToBlock(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> out = data;
  out.resize((data.size() + 7) / 8 * 8, 0);
  return out;
}

namespace {

Block64 LoadBlock(const std::vector<uint8_t>& buf, size_t offset) {
  Block64 b;
  for (int i = 0; i < 8; ++i) b[i] = buf[offset + i];
  return b;
}

void StoreBlock(std::vector<uint8_t>* buf, size_t offset, const Block64& b) {
  for (int i = 0; i < 8; ++i) (*buf)[offset + i] = b[i];
}

Block64 Xor(const Block64& a, const Block64& b) {
  Block64 out;
  for (int i = 0; i < 8; ++i) out[i] = a[i] ^ b[i];
  return out;
}

}  // namespace

std::vector<uint8_t> EcbEncrypt(const TripleDes& cipher,
                                const std::vector<uint8_t>& plain) {
  std::vector<uint8_t> out(plain.size());
  for (size_t off = 0; off + 8 <= plain.size(); off += 8) {
    StoreBlock(&out, off, cipher.EncryptBlock(LoadBlock(plain, off)));
  }
  return out;
}

std::vector<uint8_t> EcbDecrypt(const TripleDes& cipher,
                                const std::vector<uint8_t>& cipher_text) {
  std::vector<uint8_t> out(cipher_text.size());
  for (size_t off = 0; off + 8 <= cipher_text.size(); off += 8) {
    StoreBlock(&out, off, cipher.DecryptBlock(LoadBlock(cipher_text, off)));
  }
  return out;
}

std::vector<uint8_t> CbcEncrypt(const TripleDes& cipher, const Block64& iv,
                                const std::vector<uint8_t>& plain) {
  std::vector<uint8_t> out(plain.size());
  Block64 prev = iv;
  for (size_t off = 0; off + 8 <= plain.size(); off += 8) {
    prev = cipher.EncryptBlock(Xor(LoadBlock(plain, off), prev));
    StoreBlock(&out, off, prev);
  }
  return out;
}

std::vector<uint8_t> CbcDecrypt(const TripleDes& cipher, const Block64& iv,
                                const std::vector<uint8_t>& cipher_text) {
  std::vector<uint8_t> out(cipher_text.size());
  Block64 prev = iv;
  for (size_t off = 0; off + 8 <= cipher_text.size(); off += 8) {
    Block64 c = LoadBlock(cipher_text, off);
    StoreBlock(&out, off, Xor(cipher.DecryptBlock(c), prev));
    prev = c;
  }
  return out;
}

}  // namespace csxa::crypto
