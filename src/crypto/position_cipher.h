#ifndef CSXA_CRYPTO_POSITION_CIPHER_H_
#define CSXA_CRYPTO_POSITION_CIPHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/des.h"

namespace csxa::crypto {

/// The paper's encryption scheme (Appendix A): each 8-byte block `b` at
/// absolute block position `p` in the document is encrypted as
/// `E_k(b XOR p)` in ECB mode. Mixing the position into the plaintext makes
/// identical values at different positions encrypt differently (defeating
/// dictionary and substitution attacks) while preserving O(1) random-access
/// decryption — the property CBC lacks.
class PositionCipher {
 public:
  explicit PositionCipher(const TripleDes::Key& key) : cipher_(key) {}

  /// Encrypts/decrypts a single block at block index `block_index`
  /// (byte position / 8).
  Block64 EncryptBlock(const Block64& plain, uint64_t block_index) const;
  Block64 DecryptBlock(const Block64& cipher, uint64_t block_index) const;

  /// Whole-buffer helpers; `first_block_index` is the index of buf[0..8).
  /// Buffer must be block aligned.
  std::vector<uint8_t> Encrypt(const std::vector<uint8_t>& plain,
                               uint64_t first_block_index = 0) const;
  std::vector<uint8_t> Decrypt(const std::vector<uint8_t>& cipher_text,
                               uint64_t first_block_index = 0) const;

  /// In-place whole-segment transforms — the hot path: one virtual-free
  /// sweep over the buffer, position XOR and block transform in registers,
  /// no per-block temporaries. `n` must be a multiple of 8.
  void EncryptInPlace(uint8_t* data, size_t n,
                      uint64_t first_block_index) const;
  void DecryptInPlace(uint8_t* data, size_t n,
                      uint64_t first_block_index) const;

  const TripleDes& raw_cipher() const { return cipher_; }

 private:
  TripleDes cipher_;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_POSITION_CIPHER_H_
