#ifndef CSXA_CRYPTO_CIPHER_BACKEND_H_
#define CSXA_CRYPTO_CIPHER_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "crypto/des.h"

namespace csxa::crypto {

/// Upper bound on CipherBackend::block_size() across all backends, for
/// stack scratch buffers.
inline constexpr uint32_t kMaxCipherBlockSize = 16;

/// A position-mixed block cipher behind the store/decryptor hot path. The
/// paper (Appendix A, Figure 11) treats the cipher configuration as a
/// design axis; this interface makes it one. Every backend implements the
/// same scheme — C_j = E_k(B_j XOR tweak(j)) in ECB over its own block
/// size, where tweak(j) is derived from the absolute block index j — so
/// each backend keeps the paper's properties: identical plaintext blocks
/// at different positions encrypt differently (no dictionary attacks),
/// moved ciphertext decrypts to garbage (no substitution attacks), and any
/// block is decryptable in O(1) without touching its neighbours (the
/// random-access property CBC lacks).
///
/// Segments, not blocks, cross this interface: verification hands a whole
/// contiguous block run (data pointer, byte length, starting block index)
/// to one virtual call, so an implementation can pipeline or vectorize
/// across blocks instead of paying per-block dispatch.
class CipherBackend {
 public:
  virtual ~CipherBackend() = default;

  /// Stable identifier ("3des", "aes", "aes-portable") for reports.
  virtual const char* name() const = 0;
  /// True when this instance actually executes hardware crypto
  /// instructions on this machine (not merely when it would like to).
  virtual bool hardware_accelerated() const = 0;
  /// The cipher block size in bytes (8 for 3DES, 16 for AES). Fragment
  /// sizes must be multiples of this; ciphertext is padded to it.
  virtual uint32_t block_size() const = 0;

  /// In-place whole-segment transforms. `n` must be a multiple of
  /// block_size(); `first_block` is the absolute block index of data[0].
  virtual void EncryptSegment(uint8_t* data, size_t n,
                              uint64_t first_block) const = 0;
  virtual void DecryptSegment(uint8_t* data, size_t n,
                              uint64_t first_block) const = 0;
};

enum class CipherBackendKind {
  k3Des,         ///< Paper-faithful position-mixed 3DES (the default).
  kAes,          ///< Position-mixed AES-128; AES-NI when the CPU has it.
  kAesPortable,  ///< The AES backend pinned to its portable software path.
};

/// Constructs a backend over the 24-byte document key (the AES backends
/// derive their 16-byte key from its first 16 bytes). Never fails: every
/// kind has a software path on every machine.
std::unique_ptr<const CipherBackend> MakeCipherBackend(
    CipherBackendKind kind, const TripleDes::Key& key);

const char* CipherBackendKindName(CipherBackendKind kind);

/// Parses "3des" / "aes" / "aes-portable" (the --backend flag values).
Result<CipherBackendKind> ParseCipherBackendName(const std::string& name);

/// Whether a backend of `kind` would run hardware crypto instructions
/// here, without constructing one (for reports and CI gating).
bool CipherBackendHardwareAccelerated(CipherBackendKind kind);

/// Block size of a backend of `kind`, without constructing one (layout
/// validation, wire-cost math).
uint32_t CipherBackendBlockSize(CipherBackendKind kind);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_CIPHER_BACKEND_H_
