#include "crypto/position_cipher.h"

namespace csxa::crypto {

namespace {

Block64 XorPosition(const Block64& b, uint64_t block_index) {
  // The absolute byte position of the block, big-endian, XORed in.
  uint64_t pos = block_index * 8;
  Block64 out;
  for (int i = 0; i < 8; ++i) {
    out[i] = b[i] ^ static_cast<uint8_t>(pos >> (56 - 8 * i));
  }
  return out;
}

inline uint64_t LoadBe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void StoreBe64(uint8_t* p, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

}  // namespace

Block64 PositionCipher::EncryptBlock(const Block64& plain,
                                     uint64_t block_index) const {
  return cipher_.EncryptBlock(XorPosition(plain, block_index));
}

Block64 PositionCipher::DecryptBlock(const Block64& cipher,
                                     uint64_t block_index) const {
  return XorPosition(cipher_.DecryptBlock(cipher), block_index);
}

void PositionCipher::EncryptInPlace(uint8_t* data, size_t n,
                                    uint64_t first_block_index) const {
  // A big-endian-loaded block XORed with the integer byte position is
  // exactly the per-byte position mix of XorPosition.
  for (size_t off = 0; off + 8 <= n; off += 8) {
    const uint64_t pos = (first_block_index + off / 8) * 8;
    StoreBe64(data + off, cipher_.EncryptU64(LoadBe64(data + off) ^ pos));
  }
}

void PositionCipher::DecryptInPlace(uint8_t* data, size_t n,
                                    uint64_t first_block_index) const {
  for (size_t off = 0; off + 8 <= n; off += 8) {
    const uint64_t pos = (first_block_index + off / 8) * 8;
    StoreBe64(data + off, cipher_.DecryptU64(LoadBe64(data + off)) ^ pos);
  }
}

std::vector<uint8_t> PositionCipher::Encrypt(
    const std::vector<uint8_t>& plain, uint64_t first_block_index) const {
  std::vector<uint8_t> out = plain;
  EncryptInPlace(out.data(), out.size(), first_block_index);
  return out;
}

std::vector<uint8_t> PositionCipher::Decrypt(
    const std::vector<uint8_t>& cipher_text,
    uint64_t first_block_index) const {
  std::vector<uint8_t> out = cipher_text;
  DecryptInPlace(out.data(), out.size(), first_block_index);
  return out;
}

}  // namespace csxa::crypto
