#include "crypto/position_cipher.h"

namespace csxa::crypto {

namespace {

Block64 XorPosition(const Block64& b, uint64_t block_index) {
  // The absolute byte position of the block, big-endian, XORed in.
  uint64_t pos = block_index * 8;
  Block64 out;
  for (int i = 0; i < 8; ++i) {
    out[i] = b[i] ^ static_cast<uint8_t>(pos >> (56 - 8 * i));
  }
  return out;
}

}  // namespace

Block64 PositionCipher::EncryptBlock(const Block64& plain,
                                     uint64_t block_index) const {
  return cipher_.EncryptBlock(XorPosition(plain, block_index));
}

Block64 PositionCipher::DecryptBlock(const Block64& cipher,
                                     uint64_t block_index) const {
  return XorPosition(cipher_.DecryptBlock(cipher), block_index);
}

std::vector<uint8_t> PositionCipher::Encrypt(
    const std::vector<uint8_t>& plain, uint64_t first_block_index) const {
  std::vector<uint8_t> out(plain.size());
  for (size_t off = 0; off + 8 <= plain.size(); off += 8) {
    Block64 b;
    for (int i = 0; i < 8; ++i) b[i] = plain[off + i];
    Block64 c = EncryptBlock(b, first_block_index + off / 8);
    for (int i = 0; i < 8; ++i) out[off + i] = c[i];
  }
  return out;
}

std::vector<uint8_t> PositionCipher::Decrypt(
    const std::vector<uint8_t>& cipher_text,
    uint64_t first_block_index) const {
  std::vector<uint8_t> out(cipher_text.size());
  for (size_t off = 0; off + 8 <= cipher_text.size(); off += 8) {
    Block64 c;
    for (int i = 0; i < 8; ++i) c[i] = cipher_text[off + i];
    Block64 b = DecryptBlock(c, first_block_index + off / 8);
    for (int i = 0; i < 8; ++i) out[off + i] = b[i];
  }
  return out;
}

}  // namespace csxa::crypto
