#ifndef CSXA_CRYPTO_AES_H_
#define CSXA_CRYPTO_AES_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace csxa::crypto {

/// AES-128 (FIPS 197), implemented from scratch: a byte-oriented portable
/// cipher plus AES-NI segment routines selected at runtime. The class only
/// provides the raw block transform; the position-mixed mode built on it
/// lives in cipher_backend.cc.
class Aes128 {
 public:
  using Key = std::array<uint8_t, 16>;

  explicit Aes128(const Key& key);

  /// Single-block portable transforms (used directly by the portable
  /// backend and as the reference the AES-NI path is tested against).
  void EncryptBlockPortable(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlockPortable(const uint8_t in[16], uint8_t out[16]) const;

  /// Position-tweaked ECB over a whole segment, in place; `n` must be a
  /// multiple of 16. Block i of the segment has absolute block index
  /// `first_block + i`; its plaintext is XORed with the tweak — the
  /// 64-bit big-endian absolute *byte* position in the last 8 bytes of a
  /// 16-byte word — before encryption (and after decryption). This is the
  /// paper's position-mixing transposed to a 16-byte block. Dispatches to
  /// AES-NI when `allow_hardware` and the CPU supports it (and
  /// CSXA_FORCE_PORTABLE is unset), else to the portable cipher.
  void EncryptSegmentTweaked(uint8_t* data, size_t n, uint64_t first_block,
                             bool allow_hardware) const;
  void DecryptSegmentTweaked(uint8_t* data, size_t n, uint64_t first_block,
                             bool allow_hardware) const;

  /// True when EncryptSegmentTweaked(allow_hardware=true) would actually
  /// run AES-NI instructions on this machine.
  static bool HardwareAvailable();

 private:
  // Expanded key schedule: 11 round keys of 16 bytes, byte order matching
  // the FIPS state layout, and the AES-NI equivalent-inverse-cipher round
  // keys (InvMixColumns of rounds 1..9), computed only when usable.
  std::array<std::array<uint8_t, 16>, 11> rk_;
  std::array<std::array<uint8_t, 16>, 11> drk_;
  bool have_drk_ = false;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_AES_H_
