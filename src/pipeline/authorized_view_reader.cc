#include "pipeline/authorized_view_reader.h"

#include <utility>

namespace csxa::pipeline {

/// EventHandler bridging the evaluator's push output into the reader's
/// pull queue. Splice markers are enqueued by the deferral listener, which
/// the evaluator fires between a granted deferred element's open and close
/// — exactly the document position the subtree belongs at.
class AuthorizedViewReader::Collector : public xml::EventHandler {
 public:
  explicit Collector(std::deque<OutEntry>* out) : out_(out) {}

  void OnOpen(const std::string& tag, int depth) override {
    out_->push_back({xml::Event::Open(tag), depth, -1});
  }
  void OnValue(const std::string& value, int depth) override {
    out_->push_back({xml::Event::Value(value), depth, -1});
  }
  void OnClose(const std::string& tag, int depth) override {
    out_->push_back({xml::Event::Close(tag), depth, -1});
  }
  void OnDeferralGranted(size_t id) {
    out_->push_back({xml::Event(), 0, static_cast<int>(id)});
  }

 private:
  std::deque<OutEntry>* out_;
};

AuthorizedViewReader::AuthorizedViewReader(
    index::DocumentNavigator* nav, std::vector<access::AccessRule> rules,
    access::RuleEvaluator::Options eval_options, DriveOptions options)
    : nav_(nav),
      options_(options),
      skip_possible_(options.enable_skip && nav->CanSkip()),
      collector_(std::make_unique<Collector>(&out_)),
      eval_(std::make_unique<access::RuleEvaluator>(
          std::move(rules), collector_.get(), eval_options)),
      present_(nav->dictionary().size(), 0) {
  eval_->set_deferral_listener(
      [this](size_t id) { collector_->OnDeferralGranted(id); });
  facts_.may_contain = [this](const std::string& tag) {
    xml::TagId id;
    return nav_->dictionary().Lookup(tag, &id) &&
           present_[id] == generation_;
  };
  // No skip decision will ever cancel a range: tell the planner the whole
  // stream is wanted, so the fetch degenerates into maximal batches.
  if (options_.fetcher != nullptr && !skip_possible_) {
    options_.fetcher->HintStreamAll();
  }
}

void AuthorizedViewReader::HintSubtree(uint64_t begin_bit, uint64_t size_bits,
                                       bool wanted) {
  if (options_.fetcher == nullptr || size_bits == 0) return;
  const uint64_t so = nav_->stream_offset();
  if (wanted) {
    // Outward rounding: every byte touching the subtree will be read.
    options_.fetcher->HintWanted(so + begin_bit / 8,
                                 so + (begin_bit + size_bits + 7) / 8);
  } else {
    // Inward rounding: the boundary bytes carry the element's own header
    // and close marker, which are still live.
    options_.fetcher->HintExcluded(so + (begin_bit + 7) / 8,
                                   so + (begin_bit + size_bits) / 8);
  }
}

AuthorizedViewReader::~AuthorizedViewReader() = default;

Status AuthorizedViewReader::DriveOne() {
  CSXA_ASSIGN_OR_RETURN(auto item, nav_->Next());
  using K = index::DocumentNavigator::ItemKind;
  switch (item.kind) {
    case K::kEnd:
      CSXA_RETURN_NOT_OK(eval_->Finish());
      finished_ = true;
      break;
    case K::kOpen: {
      ++stats_.opens;
      eval_->OnOpen(item.tag, item.depth);
      if (!skip_possible_) break;
      facts_.tags_known = item.has_desc;
      facts_.no_elements_below = item.has_desc && item.desc.empty();
      facts_.subtree_bytes = item.subtree_bits / 8;
      if (item.has_desc) {
        ++generation_;
        for (xml::TagId t : item.desc) present_[t] = generation_;
      }
      switch (eval_->SubtreeDecision(facts_, item.depth)) {
        case access::SkipDecision::kDescend:
          // Look-ahead: a subtree that will provably stream in full is
          // promised to the fetch planner, which batches its fragments
          // into few round trips instead of demand-paging them.
          if (eval_->WholeSubtreeAuthorized(facts_, item.depth)) {
            HintSubtree(item.subtree_begin_bit, item.subtree_bits,
                        /*wanted=*/true);
          }
          break;
        case access::SkipDecision::kSkip:
          // The whole children region is provably inert: jump it via the
          // size field. Its fragments are never requested from the
          // terminal — and the planner cancels any not-yet-issued
          // read-ahead that would have covered them.
          HintSubtree(item.subtree_begin_bit, item.subtree_bits,
                      /*wanted=*/false);
          CSXA_RETURN_NOT_OK(nav_->SkipSubtree());
          ++stats_.skips;
          stats_.skipped_bits += item.subtree_bits;
          break;
        case access::SkipDecision::kDefer: {
          // Pending and too large to buffer: remember where the children
          // region starts (the navigator sits exactly there, with the
          // element's frame on top) and jump it. The bytes are fetched
          // later — only if the decision resolves to permit.
          const size_t id = eval_->RegisterDeferral();
          if (deferrals_.size() <= id) deferrals_.resize(id + 1);
          deferrals_[id] = {nav_->Save(), item.depth, item.subtree_bits};
          HintSubtree(item.subtree_begin_bit, item.subtree_bits,
                      /*wanted=*/false);
          CSXA_RETURN_NOT_OK(nav_->SkipSubtree());
          ++stats_.deferrals;
          stats_.deferred_bits += item.subtree_bits;
          break;
        }
      }
      break;
    }
    case K::kValue:
      ++stats_.values;
      eval_->OnValue(item.value, item.depth);
      break;
    case K::kClose:
      ++stats_.closes;
      eval_->OnClose(item.tag, item.depth);
      break;
  }
  return Status::OK();
}

Status AuthorizedViewReader::BeginSplice(size_t id) {
  if (id >= deferrals_.size()) {
    return Status::Internal("deferral id out of range");
  }
  resume_ = nav_->Save();
  // The grant re-activates the once-cancelled range: promise it to the
  // planner so the re-read arrives in batches (verified bare against the
  // digest cache wherever its chunks were already authenticated).
  HintSubtree(deferrals_[id].checkpoint.bit_pos, deferrals_[id].subtree_bits,
              /*wanted=*/true);
  CSXA_RETURN_NOT_OK(nav_->SeekTo(deferrals_[id].checkpoint));
  splicing_ = true;
  splice_depth_ = deferrals_[id].depth;
  splice_bits_base_ = nav_->bits_read();
  splice_fetch_base_ =
      options_.fetcher != nullptr ? options_.fetcher->bytes_fetched() : 0;
  ++stats_.rereads;
  return Status::OK();
}

Result<ViewItem> AuthorizedViewReader::SpliceNext() {
  // A granted deferral is emitted verbatim: the deferral conditions proved
  // no rule automaton of either sign could match inside, so every node in
  // the subtree inherits exactly the element's (now permitted) decision.
  CSXA_ASSIGN_OR_RETURN(auto item, nav_->Next());
  using K = index::DocumentNavigator::ItemKind;
  if (item.kind == K::kEnd ||
      (item.kind == K::kClose && item.depth == splice_depth_)) {
    // The deferred element's own close is not re-emitted here — the
    // evaluator's queued close event follows in the output queue.
    stats_.reread_bits += nav_->bits_read() - splice_bits_base_;
    if (options_.fetcher != nullptr) {
      stats_.reread_fetched_bytes +=
          options_.fetcher->bytes_fetched() - splice_fetch_base_;
    }
    splicing_ = false;
    CSXA_RETURN_NOT_OK(nav_->SeekTo(resume_));
    return ViewItem{};  // Placeholder; caller loops.
  }
  ViewItem v;
  v.depth = item.depth;
  switch (item.kind) {
    case K::kOpen:
      v.event = xml::Event::Open(item.tag);
      break;
    case K::kValue:
      v.event = xml::Event::Value(item.value);
      break;
    case K::kClose:
      v.event = xml::Event::Close(item.tag);
      break;
    case K::kEnd:
      break;  // Unreachable: handled above.
  }
  return v;
}

Result<ViewItem> AuthorizedViewReader::Next() {
  while (true) {
    if (splicing_) {
      CSXA_ASSIGN_OR_RETURN(ViewItem v, SpliceNext());
      if (splicing_) return v;  // Still inside the re-read subtree.
      continue;                 // Splice ended: resume the normal queue.
    }
    if (!out_.empty()) {
      OutEntry e = std::move(out_.front());
      out_.pop_front();
      if (e.splice >= 0) {
        CSXA_RETURN_NOT_OK(BeginSplice(static_cast<size_t>(e.splice)));
        continue;
      }
      return ViewItem{false, std::move(e.event), e.depth};
    }
    if (finished_) {
      ViewItem v;
      v.end = true;
      return v;
    }
    CSXA_RETURN_NOT_OK(DriveOne());
  }
}

}  // namespace csxa::pipeline
