#include "pipeline/secure_pipeline.h"

#include <utility>

#include "index/encoder.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace csxa::pipeline {

Result<SecureSession> SecureSession::Build(const std::string& xml,
                                           const SessionConfig& cfg) {
  CSXA_ASSIGN_OR_RETURN(auto dom, xml::SaxParser::ParseToDom(xml));
  CSXA_ASSIGN_OR_RETURN(index::EncodedDocument doc,
                        index::Encode(*dom, cfg.variant));
  CSXA_ASSIGN_OR_RETURN(crypto::SecureDocumentStore store,
                        crypto::SecureDocumentStore::Build(
                            doc.bytes, cfg.key, cfg.layout, cfg.version));
  return SecureSession(cfg, std::move(store), doc.bytes.size());
}

Result<std::unique_ptr<ServeStream>> ServeStream::Open(
    const crypto::BatchSource* source, const crypto::ChunkLayout& layout,
    uint64_t plaintext_size, uint64_t ciphertext_size, uint64_t chunk_count,
    const crypto::TripleDes::Key& key, uint32_t version,
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) {
  auto stream = std::unique_ptr<ServeStream>(
      new ServeStream(source, layout, plaintext_size, ciphertext_size,
                      chunk_count, key, version, options));
  CSXA_ASSIGN_OR_RETURN(
      stream->nav_,
      index::DocumentNavigator::OpenBuffer(stream->fetcher_.data(),
                                           stream->fetcher_.size(),
                                           &stream->fetcher_));
  access::RuleEvaluator::Options eval_options;
  eval_options.pending_buffer_budget = options.pending_buffer_budget;
  stream->reader_ = std::make_unique<AuthorizedViewReader>(
      stream->nav_.get(), rules, eval_options,
      DriveOptions{options.enable_skip, &stream->fetcher_});
  return stream;
}

Result<std::unique_ptr<ServeStream>> SecureSession::OpenStream(
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) const {
  return ServeStream::Open(&store_, store_.layout(), store_.plaintext_size(),
                           store_.ciphertext().size(), store_.chunk_count(),
                           cfg_.key, cfg_.version, rules, options);
}

Result<ServeReport> DrainServeStream(ServeStream* stream,
                                     uint64_t encoded_bytes) {
  xml::SerializingHandler serializer;
  while (true) {
    CSXA_ASSIGN_OR_RETURN(ViewItem item, stream->Next());
    if (item.end) break;
    serializer.Feed(item.event, item.depth);
  }

  ServeReport report;
  report.view = serializer.output();
  report.drive = stream->drive();
  report.eval = stream->eval();
  report.encoded_bytes = encoded_bytes;
  report.wire_bytes = stream->fetcher().wire_bytes();
  report.bytes_fetched = stream->fetcher().bytes_fetched();
  report.requests = stream->fetcher().requests();
  report.segments = stream->fetcher().segments();
  report.bare_chunk_reads = stream->fetcher().bare_chunk_reads();
  report.proof_hashes_shipped = stream->fetcher().proof_hashes_shipped();
  report.digest_bytes_shipped = stream->fetcher().digest_bytes_shipped();
  report.gap_fragments_bridged =
      stream->fetcher().planner_stats().gap_fragments_bridged;
  report.fetch_ns = stream->fetcher().fetch_ns();
  report.soe = stream->soe();
  report.digest_cache = stream->cache_stats();
  return report;
}

Result<ServeReport> SecureSession::Serve(
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) const {
  CSXA_ASSIGN_OR_RETURN(auto stream, OpenStream(rules, options));
  return DrainServeStream(stream.get(), encoded_bytes_);
}

}  // namespace csxa::pipeline
