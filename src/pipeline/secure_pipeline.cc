#include "pipeline/secure_pipeline.h"

#include <utility>

#include "index/encoder.h"
#include "index/secure_fetcher.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace csxa::pipeline {

SecurePipeline::SecurePipeline(index::DocumentNavigator* nav,
                               access::RuleEvaluator* eval,
                               DriveOptions options)
    : nav_(nav), eval_(eval), options_(options) {}

Status SecurePipeline::Run() {
  const xml::TagDictionary& dict = nav_->dictionary();
  // Reusable oracle input: the descendant-tag bitmap of the element at
  // hand, as a generation-stamped presence table over the dictionary (no
  // per-event allocation or clearing).
  std::vector<uint32_t> present(dict.size(), 0);
  uint32_t generation = 0;
  access::SubtreeFacts facts;
  facts.may_contain = [&dict, &present,
                       &generation](const std::string& tag) {
    xml::TagId id;
    return dict.Lookup(tag, &id) && present[id] == generation;
  };
  const bool skip_possible = options_.enable_skip && nav_->CanSkip();

  while (true) {
    CSXA_ASSIGN_OR_RETURN(auto item, nav_->Next());
    using K = index::DocumentNavigator::ItemKind;
    switch (item.kind) {
      case K::kEnd:
        return eval_->Finish();
      case K::kOpen: {
        ++stats_.opens;
        eval_->OnOpen(item.tag, item.depth);
        if (!skip_possible) break;
        facts.tags_known = item.has_desc;
        facts.no_elements_below = item.has_desc && item.desc.empty();
        if (item.has_desc) {
          ++generation;
          for (xml::TagId t : item.desc) present[t] = generation;
        }
        if (eval_->SubtreeDecision(facts, item.depth) ==
            access::SkipDecision::kSkip) {
          // The whole children region is provably inert: jump it via the
          // size field. Its fragments are never requested from the
          // terminal; the next Next() yields this element's close event.
          CSXA_RETURN_NOT_OK(nav_->SkipSubtree());
          ++stats_.skips;
          stats_.skipped_bits += item.subtree_bits;
        }
        break;
      }
      case K::kValue:
        ++stats_.values;
        eval_->OnValue(item.value, item.depth);
        break;
      case K::kClose:
        ++stats_.closes;
        eval_->OnClose(item.tag, item.depth);
        break;
    }
  }
}

Result<SecureSession> SecureSession::Build(const std::string& xml,
                                           const SessionConfig& cfg) {
  CSXA_ASSIGN_OR_RETURN(auto dom, xml::SaxParser::ParseToDom(xml));
  CSXA_ASSIGN_OR_RETURN(index::EncodedDocument doc,
                        index::Encode(*dom, cfg.variant));
  CSXA_ASSIGN_OR_RETURN(crypto::SecureDocumentStore store,
                        crypto::SecureDocumentStore::Build(
                            doc.bytes, cfg.key, cfg.layout, cfg.version));
  return SecureSession(cfg, std::move(store), doc.bytes.size());
}

Result<ServeReport> SecureSession::Serve(
    const std::vector<access::AccessRule>& rules, bool enable_skip) const {
  crypto::SoeDecryptor soe(cfg_.key, store_.layout(), store_.plaintext_size(),
                           store_.chunk_count(), cfg_.version);
  index::SecureFetcher fetcher(&store_, &soe);
  CSXA_ASSIGN_OR_RETURN(
      auto nav,
      index::DocumentNavigator::OpenBuffer(fetcher.data(), fetcher.size(),
                                           &fetcher));
  xml::SerializingHandler serializer;
  access::RuleEvaluator evaluator(rules, &serializer);
  SecurePipeline pipeline(nav.get(), &evaluator, DriveOptions{enable_skip});
  CSXA_RETURN_NOT_OK(pipeline.Run());

  ServeReport report;
  report.view = serializer.output();
  report.drive = pipeline.stats();
  report.eval = evaluator.stats();
  report.encoded_bytes = encoded_bytes_;
  report.wire_bytes = fetcher.wire_bytes();
  report.bytes_fetched = fetcher.bytes_fetched();
  report.requests = fetcher.requests();
  report.soe = soe.counters();
  return report;
}

}  // namespace csxa::pipeline
