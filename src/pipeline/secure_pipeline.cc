#include "pipeline/secure_pipeline.h"

#include <utility>

#include "index/encoder.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace csxa::pipeline {

Result<SecureSession> SecureSession::Build(const std::string& xml,
                                           const SessionConfig& cfg) {
  CSXA_ASSIGN_OR_RETURN(auto dom, xml::SaxParser::ParseToDom(xml));
  CSXA_ASSIGN_OR_RETURN(index::EncodedDocument doc,
                        index::Encode(*dom, cfg.variant));
  CSXA_ASSIGN_OR_RETURN(crypto::SecureDocumentStore store,
                        crypto::SecureDocumentStore::Build(
                            doc.bytes, cfg.key, cfg.layout, cfg.version));
  return SecureSession(cfg, std::move(store), doc.bytes.size());
}

Result<std::unique_ptr<ServeStream>> SecureSession::OpenStream(
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) const {
  auto stream = std::unique_ptr<ServeStream>(
      new ServeStream(&store_, cfg_.key, cfg_.version, options));
  CSXA_ASSIGN_OR_RETURN(
      stream->nav_,
      index::DocumentNavigator::OpenBuffer(stream->fetcher_.data(),
                                           stream->fetcher_.size(),
                                           &stream->fetcher_));
  access::RuleEvaluator::Options eval_options;
  eval_options.pending_buffer_budget = options.pending_buffer_budget;
  stream->reader_ = std::make_unique<AuthorizedViewReader>(
      stream->nav_.get(), rules, eval_options,
      DriveOptions{options.enable_skip, &stream->fetcher_});
  return stream;
}

Result<ServeReport> SecureSession::Serve(
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) const {
  CSXA_ASSIGN_OR_RETURN(auto stream, OpenStream(rules, options));
  xml::SerializingHandler serializer;
  while (true) {
    CSXA_ASSIGN_OR_RETURN(ViewItem item, stream->Next());
    if (item.end) break;
    serializer.Feed(item.event, item.depth);
  }

  ServeReport report;
  report.view = serializer.output();
  report.drive = stream->drive();
  report.eval = stream->eval();
  report.encoded_bytes = encoded_bytes_;
  report.wire_bytes = stream->fetcher().wire_bytes();
  report.bytes_fetched = stream->fetcher().bytes_fetched();
  report.requests = stream->fetcher().requests();
  report.segments = stream->fetcher().segments();
  report.bare_chunk_reads = stream->fetcher().bare_chunk_reads();
  report.gap_fragments_bridged =
      stream->fetcher().planner_stats().gap_fragments_bridged;
  report.fetch_ns = stream->fetcher().fetch_ns();
  report.soe = stream->soe();
  report.digest_cache = stream->cache_stats();
  return report;
}

}  // namespace csxa::pipeline
