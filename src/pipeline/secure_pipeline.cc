#include "pipeline/secure_pipeline.h"

#include <utility>

#include "common/clock.h"
#include "index/encoder.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace csxa::pipeline {

Result<SecureSession> SecureSession::Build(const std::string& xml,
                                           const SessionConfig& cfg) {
  CSXA_ASSIGN_OR_RETURN(auto dom, xml::SaxParser::ParseToDom(xml));
  CSXA_ASSIGN_OR_RETURN(index::EncodedDocument doc,
                        index::Encode(*dom, cfg.variant));
  CSXA_ASSIGN_OR_RETURN(crypto::SecureDocumentStore store,
                        crypto::SecureDocumentStore::Build(
                            doc.bytes, cfg.key, cfg.layout, cfg.version,
                            cfg.backend));
  return SecureSession(cfg, std::move(store), doc.bytes.size());
}

Result<std::unique_ptr<ServeStream>> ServeStream::Open(
    const crypto::BatchSource* source, const crypto::ChunkLayout& layout,
    uint64_t plaintext_size, uint64_t ciphertext_size, uint64_t chunk_count,
    const crypto::TripleDes::Key& key, uint32_t version,
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options, crypto::CipherBackendKind backend) {
  auto stream = std::unique_ptr<ServeStream>(
      new ServeStream(source, layout, plaintext_size, ciphertext_size,
                      chunk_count, key, version, options, backend));
  CSXA_ASSIGN_OR_RETURN(
      stream->nav_,
      index::DocumentNavigator::OpenBuffer(stream->fetcher_.verified_view(),
                                           &stream->fetcher_));
  access::RuleEvaluator::Options eval_options;
  eval_options.pending_buffer_budget = options.pending_buffer_budget;
  stream->reader_ = std::make_unique<AuthorizedViewReader>(
      stream->nav_.get(), rules, eval_options,
      DriveOptions{options.enable_skip, &stream->fetcher_});
  return stream;
}

Result<std::unique_ptr<ServeStream>> SecureSession::OpenStream(
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) const {
  return ServeStream::Open(&store_, store_.layout(), store_.plaintext_size(),
                           store_.ciphertext().size(), store_.chunk_count(),
                           cfg_.key, cfg_.version, rules, options,
                           store_.backend());
}

Result<ServeReport> DrainServeStream(ServeStream* stream,
                                     uint64_t encoded_bytes) {
  const uint64_t t0 = NowNs();
  xml::SerializingHandler serializer;
  while (true) {
    CSXA_ASSIGN_OR_RETURN(ViewItem item, stream->Next());
    if (item.end) break;
    serializer.Feed(item.event, item.depth);
  }
  const uint64_t serve_ns = NowNs() - t0;

  ServeReport report;
  report.view = serializer.output();
  report.drive = stream->drive();
  report.eval = stream->eval();
  report.encoded_bytes = encoded_bytes;
  report.wire_bytes = stream->fetcher().wire_bytes();
  report.bytes_fetched = stream->fetcher().bytes_fetched();
  report.requests = stream->fetcher().requests();
  report.segments = stream->fetcher().segments();
  report.bare_chunk_reads = stream->fetcher().bare_chunk_reads();
  report.proof_hashes_shipped = stream->fetcher().proof_hashes_shipped();
  report.digest_bytes_shipped = stream->fetcher().digest_bytes_shipped();
  report.gap_fragments_bridged =
      stream->fetcher().planner_stats().gap_fragments_bridged;
  report.fetch_ns = stream->fetcher().fetch_ns();
  report.retries = stream->fetcher().retries();
  report.reconnects = stream->fetcher().reconnects();
  report.deadline_ns = stream->fetcher().deadline_ns();
  report.soe = stream->soe();
  report.digest_cache = stream->cache_stats();
  report.backend = stream->backend_name();
  report.backend_hardware = stream->backend_hardware_accelerated();
  report.hash_impl = crypto::Sha1::ImplementationName();
  report.hash_hardware = crypto::Sha1::HardwareAccelerated();
  report.serve_ns = serve_ns;
  auto mb_s = [](uint64_t bytes, uint64_t ns) {
    return ns == 0 ? 0.0
                   : static_cast<double>(bytes) * 1e9 /
                         (static_cast<double>(ns) * 1e6);
  };
  report.decrypt_mb_s = mb_s(
      report.soe.bytes_decrypted + report.soe.digest_bytes_decrypted,
      report.soe.decrypt_ns);
  report.hash_mb_s = mb_s(report.soe.bytes_hashed, report.soe.hash_ns);
  report.serve_mb_s = mb_s(report.bytes_fetched, serve_ns);
  return report;
}

Result<ServeReport> SecureSession::Serve(
    const std::vector<access::AccessRule>& rules,
    const ServeOptions& options) const {
  CSXA_ASSIGN_OR_RETURN(auto stream, OpenStream(rules, options));
  return DrainServeStream(stream.get(), encoded_bytes_);
}

}  // namespace csxa::pipeline
