#ifndef CSXA_PIPELINE_SECURE_PIPELINE_H_
#define CSXA_PIPELINE_SECURE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "common/status.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"
#include "index/secure_fetcher.h"
#include "index/variants.h"
#include "pipeline/authorized_view_reader.h"

namespace csxa::pipeline {

/// One encrypted document hosted by an untrusted terminal, with everything
/// needed to serve authorized views to SOE-side sessions — the single
/// public facade of the pipeline. Bundles the owner-side preparation
/// (parse → encode → encrypt → digest) and the per-request SOE chain
/// (fresh decryptor → lazy verified fetcher → navigator → pull-based
/// AuthorizedViewReader), so the demo, the benchmark and the tests
/// measure exactly the same code path.
struct SessionConfig {
  index::Variant variant = index::Variant::kTcsbr;
  crypto::ChunkLayout layout;
  crypto::TripleDes::Key key{};
  uint32_t version = 0;       ///< Document version bound into ChunkDigests.
  bool enable_skip = true;    ///< Default ServeOptions::enable_skip.
  /// Default ServeOptions::pending_buffer_budget (see below).
  uint64_t pending_buffer_budget = UINT64_MAX;
  /// Cipher backend the store is encrypted under (a document property:
  /// every session of the document decrypts with the same backend).
  crypto::CipherBackendKind backend = crypto::CipherBackendKind::k3Des;
};

/// Per-serve overrides, so skip/defer/full comparisons reuse one
/// owner-side build (parse/encode/encrypt happen once).
struct ServeOptions {
  ServeOptions() = default;
  /// The common skip/budget pair; planner and cache knobs keep defaults.
  ServeOptions(bool skip, uint64_t budget)
      : enable_skip(skip), pending_buffer_budget(budget) {}

  bool enable_skip = true;
  /// Largest encoded subtree (bytes) the evaluator may buffer while its
  /// decision is pending; larger pending subtrees are deferred
  /// (skip-now-reread-later) when provably safe. UINT64_MAX never defers.
  uint64_t pending_buffer_budget = UINT64_MAX;
  /// Fetch-planner knobs of this serve (gap threshold, batch horizon).
  index::PlannerOptions planner;
  /// Verified-digest cache entries in the per-serve SOE decryptor; 0
  /// disables bare re-reads. Ignored when `shared_digest_cache` is set.
  size_t digest_cache_capacity = crypto::SoeDecryptor::kDefaultDigestCacheCapacity;
  /// Cross-serve shared verified-digest cache (the server layer's
  /// per-(document, version) instance). When set, this serve reads and
  /// writes the shared pool: a warm cache means trimmed proofs and bare
  /// re-reads from the first request. Must be stamped with the serve's
  /// document version (see SoeDecryptor); null keeps a private cache.
  std::shared_ptr<crypto::VerifiedDigestCache> shared_digest_cache;
  /// Out-of-process terminal: when set, the serve fetches through this
  /// endpoint (e.g. a net::RemoteBatchSource speaking the wire framing
  /// over TCP) instead of the in-process source the session would
  /// otherwise use. The stream keeps the handle alive for its lifetime.
  /// Trust is unchanged — geometry/key/version still arrive out of band,
  /// and every byte this source returns passes the digest chain.
  std::shared_ptr<const crypto::BatchSource> terminal_source;
};

/// Cost-model counters of one serve (the quantities of the paper's
/// Section 5 / Figure 8 comparison).
struct ServeReport {
  std::string view;                      ///< Serialized authorized view.
  DriveStats drive;
  access::RuleEvaluator::Stats eval;
  uint64_t encoded_bytes = 0;            ///< Size of the encoded image.
  uint64_t wire_bytes = 0;               ///< Terminal→SOE channel traffic.
  uint64_t bytes_fetched = 0;            ///< Plaintext materialized.
  uint64_t requests = 0;                 ///< Batched terminal round trips.
  uint64_t segments = 0;                 ///< Ciphertext runs across batches.
  uint64_t bare_chunk_reads = 0;         ///< Chunk reads verified bare.
  uint64_t proof_hashes_shipped = 0;     ///< Merkle siblings the wire carried.
  uint64_t digest_bytes_shipped = 0;     ///< Encrypted ChunkDigest bytes.
  uint64_t gap_fragments_bridged = 0;    ///< Unneeded fragments coalesced in.
  uint64_t fetch_ns = 0;                 ///< Wall clock in terminal reads.
  uint64_t retries = 0;                  ///< Transport attempts beyond the 1st.
  uint64_t reconnects = 0;               ///< Connections re-established.
  uint64_t deadline_ns = 0;              ///< Per-request deadline in force.
  crypto::SoeDecryptor::Counters soe;    ///< Decrypt/hash work in the SOE.
  crypto::VerifiedDigestCache::Stats digest_cache;  ///< Bare-read economics.

  /// Cipher backend this serve decrypted with ("3des", "aes",
  /// "aes-portable") and whether it actually ran hardware crypto
  /// instructions on this machine.
  std::string backend;
  bool backend_hardware = false;
  /// Hash implementation ("sha-ni" or "portable") used for Merkle leaves,
  /// interior nodes and chunk digests.
  std::string hash_impl;
  bool hash_hardware = false;
  /// Per-stage throughput over this serve's own wall clock (MB/s; 0 when
  /// the stage never ran): block decryption, ciphertext hashing, and the
  /// end-to-end serve rate (plaintext materialized over total serve time).
  double decrypt_mb_s = 0.0;
  double hash_mb_s = 0.0;
  double serve_mb_s = 0.0;
  uint64_t serve_ns = 0;  ///< Wall clock of the whole drain (open to end).
};

/// The pull endpoint of one serve: owns the per-request SOE chain
/// (decryptor, fetcher, navigator, reader) and yields the authorized view
/// one event at a time, fetching/decrypting lazily as it goes. Obtain via
/// SecureSession::OpenStream; the session must outlive the stream.
class ServeStream {
 public:
  /// Wires a complete per-serve SOE chain over any terminal endpoint: the
  /// single-document facade passes its own store; the server layer passes
  /// the document entry's live link (current store behind a lock) plus the
  /// geometry/version of the snapshot the session was opened for, and the
  /// shared digest cache via `options.shared_digest_cache`.
  static Result<std::unique_ptr<ServeStream>> Open(
      const crypto::BatchSource* source, const crypto::ChunkLayout& layout,
      uint64_t plaintext_size, uint64_t ciphertext_size, uint64_t chunk_count,
      const crypto::TripleDes::Key& key, uint32_t version,
      const std::vector<access::AccessRule>& rules,
      const ServeOptions& options,
      crypto::CipherBackendKind backend = crypto::CipherBackendKind::k3Des);

  ServeStream(const ServeStream&) = delete;
  ServeStream& operator=(const ServeStream&) = delete;

  /// Next authorized-view event; `.end` true after the last one.
  Result<ViewItem> Next() { return reader_->Next(); }

  const DriveStats& drive() const { return reader_->stats(); }
  const access::RuleEvaluator::Stats& eval() const {
    return reader_->eval_stats();
  }
  const index::SecureFetcher& fetcher() const { return fetcher_; }
  const crypto::SoeDecryptor::Counters& soe() const {
    return soe_.counters();
  }
  crypto::VerifiedDigestCache::Stats cache_stats() const {
    return soe_.cache_stats();
  }
  const char* backend_name() const { return soe_.backend_name(); }
  bool backend_hardware_accelerated() const {
    return soe_.backend_hardware_accelerated();
  }

 private:
  ServeStream(const crypto::BatchSource* source,
              const crypto::ChunkLayout& layout, uint64_t plaintext_size,
              uint64_t ciphertext_size, uint64_t chunk_count,
              const crypto::TripleDes::Key& key, uint32_t version,
              const ServeOptions& options, crypto::CipherBackendKind backend)
      : owned_source_(options.terminal_source),
        soe_(key, layout, plaintext_size, chunk_count, version,
             options.digest_cache_capacity, options.shared_digest_cache,
             backend),
        fetcher_(owned_source_ != nullptr ? owned_source_.get() : source,
                 layout, plaintext_size, ciphertext_size, &soe_,
                 options.planner) {}

  /// Keep-alive for ServeOptions::terminal_source (remote endpoints are
  /// shared across sessions; the in-process `source` is caller-owned).
  std::shared_ptr<const crypto::BatchSource> owned_source_;
  crypto::SoeDecryptor soe_;
  index::SecureFetcher fetcher_;
  std::unique_ptr<index::DocumentNavigator> nav_;
  std::unique_ptr<AuthorizedViewReader> reader_;
};

/// Drains `stream` into a serialized view plus the cost-model counters of
/// the serve — the one reporting path the demo, bench, tests and the
/// server layer all share.
Result<ServeReport> DrainServeStream(ServeStream* stream,
                                     uint64_t encoded_bytes);

class SecureSession {
 public:
  /// Owner side: parses `xml`, encodes it under cfg.variant and hands the
  /// encrypted image to the (simulated) terminal store.
  static Result<SecureSession> Build(const std::string& xml,
                                     const SessionConfig& cfg);

  /// SOE side: opens a pull stream of the authorized view for `rules`
  /// (already selected for the requesting subject) with fresh cost
  /// counters.
  Result<std::unique_ptr<ServeStream>> OpenStream(
      const std::vector<access::AccessRule>& rules,
      const ServeOptions& options) const;

  /// Convenience: drains a stream into a serialized view + cost report.
  Result<ServeReport> Serve(const std::vector<access::AccessRule>& rules,
                            const ServeOptions& options) const;
  Result<ServeReport> Serve(
      const std::vector<access::AccessRule>& rules) const {
    return Serve(rules, DefaultOptions());
  }
  Result<ServeReport> Serve(const std::vector<access::AccessRule>& rules,
                            bool enable_skip) const {
    ServeOptions options = DefaultOptions();
    options.enable_skip = enable_skip;
    return Serve(rules, options);
  }

  const crypto::SecureDocumentStore& store() const { return store_; }
  /// Attack-emulation hooks (TamperByte etc.) for tests.
  crypto::SecureDocumentStore* mutable_store() { return &store_; }
  uint64_t encoded_bytes() const { return encoded_bytes_; }

 private:
  SecureSession(SessionConfig cfg, crypto::SecureDocumentStore store,
                uint64_t encoded_bytes)
      : cfg_(std::move(cfg)),
        store_(std::move(store)),
        encoded_bytes_(encoded_bytes) {}

  ServeOptions DefaultOptions() const {
    ServeOptions options;
    options.enable_skip = cfg_.enable_skip;
    options.pending_buffer_budget = cfg_.pending_buffer_budget;
    return options;
  }

  SessionConfig cfg_;
  crypto::SecureDocumentStore store_;
  uint64_t encoded_bytes_;
};

}  // namespace csxa::pipeline

#endif  // CSXA_PIPELINE_SECURE_PIPELINE_H_
