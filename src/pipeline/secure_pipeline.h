#ifndef CSXA_PIPELINE_SECURE_PIPELINE_H_
#define CSXA_PIPELINE_SECURE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "common/status.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"
#include "index/variants.h"

namespace csxa::pipeline {

/// Knobs of the navigate→evaluate driver.
struct DriveOptions {
  /// Consult the evaluator's skip oracle at each open event and jump inert
  /// subtrees via the index's size fields. Off = faithful full streaming
  /// (the reference the skip path must be byte-identical to).
  bool enable_skip = true;
};

/// What the driver did with the event stream.
struct DriveStats {
  uint64_t opens = 0;
  uint64_t values = 0;
  uint64_t closes = 0;
  uint64_t skips = 0;          ///< Subtrees pruned before being fetched.
  uint64_t skipped_bits = 0;   ///< Encoded bits those subtrees span.
};

/// The SOE-side driver of the paper's architecture: owns the
/// navigate→evaluate loop and *inverts* it relative to naive streaming.
/// Instead of pulling every event and letting the evaluator prune after
/// the fact, the driver consults the evaluator's token analysis
/// (RuleEvaluator::SubtreeDecision) at each element open — when the rule
/// automata prove the subtree inert, it calls SkipSubtree() *before* any
/// of the subtree's fragments are fetched, so forbidden or irrelevant
/// bytes never cross the terminal→SOE boundary (Section 4.1's reason for
/// the Skip index to exist).
class SecurePipeline {
 public:
  /// `nav` and `eval` must outlive the pipeline. The evaluator's output
  /// handler receives the authorized view.
  SecurePipeline(index::DocumentNavigator* nav, access::RuleEvaluator* eval,
                 DriveOptions options = {});

  /// Drives the whole document (or what remains of it) through the
  /// evaluator, skipping as allowed, and finishes the evaluator.
  Status Run();

  const DriveStats& stats() const { return stats_; }

 private:
  index::DocumentNavigator* nav_;
  access::RuleEvaluator* eval_;
  DriveOptions options_;
  DriveStats stats_;
};

/// One encrypted document hosted by an untrusted terminal, with everything
/// needed to serve authorized views to SOE-side sessions. Bundles the
/// owner-side preparation (parse → encode → encrypt → digest) and the
/// per-request SOE chain (fresh decryptor → lazy verified fetcher →
/// navigator → evaluator → pipeline), so the demo, the benchmark and the
/// tests measure exactly the same code path.
struct SessionConfig {
  index::Variant variant = index::Variant::kTcsbr;
  crypto::ChunkLayout layout;
  crypto::TripleDes::Key key{};
  uint32_t version = 0;       ///< Document version bound into ChunkDigests.
  bool enable_skip = true;    ///< DriveOptions::enable_skip for Serve().
};

/// Cost-model counters of one Serve() run (the quantities of the paper's
/// Section 5 / Figure 8 comparison).
struct ServeReport {
  std::string view;                      ///< Serialized authorized view.
  DriveStats drive;
  access::RuleEvaluator::Stats eval;
  uint64_t encoded_bytes = 0;            ///< Size of the encoded image.
  uint64_t wire_bytes = 0;               ///< Terminal→SOE channel traffic.
  uint64_t bytes_fetched = 0;            ///< Plaintext materialized.
  uint64_t requests = 0;                 ///< Terminal round trips.
  crypto::SoeDecryptor::Counters soe;    ///< Decrypt/hash work in the SOE.
};

class SecureSession {
 public:
  /// Owner side: parses `xml`, encodes it under cfg.variant and hands the
  /// encrypted image to the (simulated) terminal store.
  static Result<SecureSession> Build(const std::string& xml,
                                     const SessionConfig& cfg);

  /// SOE side: serves the authorized view for `rules` (already selected
  /// for the requesting subject) with fresh cost counters. The overload
  /// overrides the config's enable_skip, so skip-vs-full comparisons reuse
  /// one owner-side build (parse/encode/encrypt happen once).
  Result<ServeReport> Serve(
      const std::vector<access::AccessRule>& rules) const {
    return Serve(rules, cfg_.enable_skip);
  }
  Result<ServeReport> Serve(const std::vector<access::AccessRule>& rules,
                            bool enable_skip) const;

  const crypto::SecureDocumentStore& store() const { return store_; }
  /// Attack-emulation hooks (TamperByte etc.) for tests.
  crypto::SecureDocumentStore* mutable_store() { return &store_; }
  uint64_t encoded_bytes() const { return encoded_bytes_; }

 private:
  SecureSession(SessionConfig cfg, crypto::SecureDocumentStore store,
                uint64_t encoded_bytes)
      : cfg_(std::move(cfg)),
        store_(std::move(store)),
        encoded_bytes_(encoded_bytes) {}

  SessionConfig cfg_;
  crypto::SecureDocumentStore store_;
  uint64_t encoded_bytes_;
};

}  // namespace csxa::pipeline

#endif  // CSXA_PIPELINE_SECURE_PIPELINE_H_
