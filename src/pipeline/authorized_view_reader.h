#ifndef CSXA_PIPELINE_AUTHORIZED_VIEW_READER_H_
#define CSXA_PIPELINE_AUTHORIZED_VIEW_READER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "common/status.h"
#include "index/decoder.h"
#include "xml/event.h"

namespace csxa::pipeline {

/// Knobs of the navigate→evaluate→deliver driver.
struct DriveOptions {
  /// Consult the evaluator's skip oracle at each open event and jump
  /// inert/deferred subtrees via the index's size fields. Off = faithful
  /// full streaming (the reference the skip path must be byte-identical
  /// to); deferral needs skipping and is off with it.
  bool enable_skip = true;
  /// The fetcher materializing the navigator's buffer, if any: the driver
  /// feeds it look-ahead hints (skip/defer decisions cancel planned
  /// ranges, fully authorized subtrees and granted deferrals become
  /// batched prefetches, an unskippable stream becomes one big planned
  /// read). Hints never affect the decoded view, only batching.
  index::Fetcher* fetcher = nullptr;
};

/// What the driver did with the event stream.
struct DriveStats {
  uint64_t opens = 0;
  uint64_t values = 0;
  uint64_t closes = 0;
  uint64_t skips = 0;          ///< Subtrees pruned before being fetched.
  uint64_t skipped_bits = 0;   ///< Encoded bits those subtrees span.
  uint64_t deferrals = 0;      ///< Pending subtrees skipped-for-later.
  uint64_t deferred_bits = 0;  ///< Encoded bits those subtrees span.
  uint64_t rereads = 0;        ///< Granted deferrals spliced back in.
  uint64_t reread_bits = 0;    ///< Encoded bits re-decoded during splices.
  /// Plaintext bytes the fetcher actually pulled during splices — the
  /// honest re-read cost. Smaller than reread_bits/8 whenever boundary
  /// fragments were already held, and on a warm shared cache the pull is
  /// additionally material-free (bare chunk reads).
  uint64_t reread_fetched_bytes = 0;
};

/// One authorized-view event, pulled from an AuthorizedViewReader.
struct ViewItem {
  bool end = false;  ///< True once the view is exhausted; `event` invalid.
  xml::Event event;
  int depth = 0;
};

/// The SOE-side driver of the paper's architecture, redesigned as a *pull*
/// API: each Next() returns the next event of the authorized view, in
/// document order, and internally advances the navigate→evaluate loop just
/// far enough to produce it.
///
/// The driver consults the evaluator's token analysis
/// (RuleEvaluator::SubtreeDecision) at each element open:
///
///  - kSkip: the subtree is provably inert — SkipSubtree() jumps it before
///    any of its fragments are fetched (Section 4.1's reason for the Skip
///    index to exist).
///  - kDefer: the subtree's fate hinges on predicates resolving elsewhere
///    and it is too large to buffer — the driver saves a navigator
///    Checkpoint, skips the bytes, and if (and only if) the evaluator
///    later emits the element as granted, seeks back and re-reads exactly
///    the granted bytes, splicing them into the output at their original
///    document position (Section 5's pending-part re-reads). Denied
///    deferrals cost zero re-read bytes.
///
/// The reader owns the evaluator; the document never materializes in SOE
/// memory beyond the evaluator's (budgeted) pending buffer and one event.
class AuthorizedViewReader {
 public:
  /// `nav` must outlive the reader. `rules` is the rule set already
  /// selected for the requesting subject.
  AuthorizedViewReader(index::DocumentNavigator* nav,
                       std::vector<access::AccessRule> rules,
                       access::RuleEvaluator::Options eval_options,
                       DriveOptions options);
  AuthorizedViewReader(index::DocumentNavigator* nav,
                       std::vector<access::AccessRule> rules)
      : AuthorizedViewReader(nav, std::move(rules),
                             access::RuleEvaluator::Options(),
                             DriveOptions()) {}
  ~AuthorizedViewReader();

  /// Pulls the next authorized-view event; `.end` is true after the last
  /// one. Errors (integrity, corruption) surface as failed Results.
  Result<ViewItem> Next();

  const DriveStats& stats() const { return stats_; }
  const access::RuleEvaluator::Stats& eval_stats() const {
    return eval_->stats();
  }

 private:
  /// Decided output of the evaluator, queued until pulled. `splice` ≥ 0
  /// marks the position where deferred subtree #splice must be re-read and
  /// merged back (right between the element's open and close events).
  struct OutEntry {
    xml::Event event;
    int depth = 0;
    int splice = -1;
  };

  /// Everything needed to re-enter a deferred subtree later.
  struct Deferral {
    index::DocumentNavigator::Checkpoint checkpoint;
    int depth = 0;
    uint64_t subtree_bits = 0;
  };

  class Collector;

  Status DriveOne();               ///< Feed one navigator item to the evaluator.
  Status BeginSplice(size_t id);   ///< Seek into deferred subtree #id.
  Result<ViewItem> SpliceNext();   ///< Pull one re-read event.
  /// Converts a stream-relative subtree extent into document byte offsets
  /// and forwards it to the fetcher as a wanted/cancelled prefetch range.
  void HintSubtree(uint64_t begin_bit, uint64_t size_bits, bool wanted);

  index::DocumentNavigator* nav_;
  DriveOptions options_;
  bool skip_possible_ = false;
  std::unique_ptr<Collector> collector_;
  std::unique_ptr<access::RuleEvaluator> eval_;

  std::deque<OutEntry> out_;
  std::vector<Deferral> deferrals_;
  bool finished_ = false;

  /// Splice state: while active, Next() streams raw events from the
  /// navigator (re-positioned at the deferral's checkpoint) until the
  /// deferred element closes, then seeks back to `resume_`.
  bool splicing_ = false;
  int splice_depth_ = 0;
  uint64_t splice_bits_base_ = 0;
  uint64_t splice_fetch_base_ = 0;
  index::DocumentNavigator::Checkpoint resume_;

  /// Reusable skip-oracle input: generation-stamped presence table of the
  /// current element's descendant-tag bitmap over the dictionary, queried
  /// through a facts object built once (no per-event allocation).
  std::vector<uint32_t> present_;
  uint32_t generation_ = 0;
  access::SubtreeFacts facts_;

  DriveStats stats_;
};

}  // namespace csxa::pipeline

#endif  // CSXA_PIPELINE_AUTHORIZED_VIEW_READER_H_
