#ifndef CSXA_INDEX_ENCODED_DOCUMENT_H_
#define CSXA_INDEX_ENCODED_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/tag_dictionary.h"

namespace csxa::index {

/// Structure-encoding variants compared in Figure 8 of the paper.
///
/// - kNc    : original non-compressed XML text (reference point only).
/// - kTc    : dictionary tag compression; explicit end-of-children markers.
/// - kTcs   : TC + per-subtree size fields (skipping becomes possible,
///            closing tags disappear).
/// - kTcsb  : TCS + a bitmap of descendant tags per internal element.
/// - kTcsbr : the Skip index — TCSB with *recursive* encoding: tag codes,
///            descendant bitmaps and size fields are all expressed relative
///            to the parent element's metadata, shrinking as the decoder
///            descends.
enum class Variant : uint8_t {
  kNc = 0,
  kTc = 1,
  kTcs = 2,
  kTcsb = 3,
  kTcsbr = 4,
};

const char* VariantName(Variant variant);

/// Decoded header of an encoded document (everything the SOE must know
/// before consuming the bit stream).
struct HeaderInfo {
  Variant variant = Variant::kTcsbr;
  xml::TagDictionary dictionary;
  size_t stream_offset = 0;     ///< Byte offset where the bit stream starts.
  uint64_t root_size_bits = 0;  ///< Children-region bits of the root.
};

/// Parses a header from a raw buffer. Returns Corruption if truncated or
/// malformed; a caller with a lazily materialized buffer can grow the
/// ensured prefix and retry.
Result<HeaderInfo> ParseHeaderInfo(const uint8_t* data, size_t size);

/// A binary-encoded document: header (magic, variant, tag dictionary, root
/// size) followed by the bit-packed structure stream.
///
/// Stream grammar (TCS / TCSB / TCSBR), MSB-first bits:
///
///   root     := kind=1, internal, tag, [tagarray], children
///   node     := kind(1) ( element | text )
///   element  := internal(1) size(W(parent)) tag [tagarray] children
///   text     := length(W(parent)) payload(8*length)
///
/// `size` counts the bits of the children region only: a decoder that has
/// read an element's tag (needed to raise the open event) and its tagarray
/// (needed for token filtering) can skip the whole subtree by advancing
/// `size` bits. W(e) = BitWidth(size(e)) is the field width used by e's
/// children; the root's size sits in the header as a u64. Text lengths are
/// byte counts and always fit W(parent) since 8*len <= size(parent).
///
/// TCSBR narrows `tag` to an index into the parent's descendant-tag set and
/// `tagarray` to one bit per member of that set; TCS/TCSB use
/// dictionary-wide widths. TC uses 2-bit node markers (01 element,
/// 10 text, 00 end-of-children), dictionary-wide tag codes and nibble
/// varint text lengths.
struct EncodedDocument {
  Variant variant = Variant::kTcsbr;
  xml::TagDictionary dictionary;
  std::vector<uint8_t> bytes;     ///< Full image: header + stream.
  size_t stream_offset = 0;       ///< Byte offset where the bit stream starts.
  uint64_t root_size_bits = 0;    ///< Children-region bits of the root.

  // Size accounting for Figure 8.
  uint64_t structure_bits = 0;    ///< Everything except text payloads.
  uint64_t text_bits = 0;         ///< 8 * total text bytes.

  /// structure/text ratio in percent (Figure 8's Y axis).
  double StructTextRatio() const {
    return text_bits == 0 ? 0.0
                          : 100.0 * static_cast<double>(structure_bits) /
                                static_cast<double>(text_bits);
  }
};

/// Reads and validates an encoded document image (header metadata only;
/// size accounting fields are left zero).
Result<EncodedDocument> ParseHeader(const std::vector<uint8_t>& bytes);

namespace format {
inline constexpr char kMagic[4] = {'C', 'S', 'X', 'A'};
inline constexpr size_t kMagicSize = 4;
// Header: magic(4) variant(1) dictionary(var) root_size_bits(8).
}  // namespace format

}  // namespace csxa::index

#endif  // CSXA_INDEX_ENCODED_DOCUMENT_H_
