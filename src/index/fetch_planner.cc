#include "index/fetch_planner.h"

#include <algorithm>

namespace csxa::index {

FetchPlanner::FetchPlanner(uint64_t document_bytes, uint32_t fragment_size,
                           uint32_t chunk_size, const PlannerOptions& options)
    : document_bytes_(document_bytes),
      fragment_size_(fragment_size),
      chunk_size_(chunk_size),
      fragment_count_((document_bytes + fragment_size - 1) / fragment_size),
      gap_threshold_(options.gap_threshold_bytes == UINT64_MAX
                         ? fragment_size
                         : options.gap_threshold_bytes),
      max_batch_(options.max_batch_bytes == 0 ? uint64_t{4} * chunk_size
                                              : options.max_batch_bytes),
      marks_(fragment_count_, Mark::kUnknown) {}

void FetchPlanner::HintWanted(uint64_t begin, uint64_t end) {
  end = std::min(end, document_bytes_);
  if (begin >= end) return;
  ++stats_.hints_wanted;
  // Outward rounding: a partially wanted fragment is fetched whole anyway.
  uint64_t first = begin / fragment_size_;
  uint64_t last = (end - 1) / fragment_size_;
  for (uint64_t f = first; f <= last; ++f) marks_[f] = Mark::kWanted;
}

void FetchPlanner::HintExcluded(uint64_t begin, uint64_t end) {
  end = std::min(end, document_bytes_);
  if (begin >= end) return;
  ++stats_.hints_excluded;
  // Skip evidence: stop speculating — a skip-dense region must page
  // conservatively or the readahead re-fetches what skipping just saved.
  readahead_bytes_ = 0;
  // Inward rounding: boundary fragments carry live neighbouring bytes
  // (the element's own header before the subtree, its close marker after).
  uint64_t first = (begin + fragment_size_ - 1) / fragment_size_;
  uint64_t last_end = end / fragment_size_;  // exclusive
  for (uint64_t f = first; f < last_end; ++f) marks_[f] = Mark::kExcluded;
}

void FetchPlanner::HintStreamAll() {
  ++stats_.hints_wanted;
  std::fill(marks_.begin(), marks_.end(), Mark::kWanted);
}

namespace {

/// Exact sibling-hash count of a contiguous-range Merkle proof (mirrors
/// MerkleTree::ProofForRange).
uint64_t ProofNodeCount(uint64_t leaf_count, uint64_t first, uint64_t last) {
  uint64_t n = 0, lo = first, hi = last;
  for (uint64_t width = leaf_count; width > 1; width /= 2, lo /= 2, hi /= 2) {
    if (lo % 2 == 1) ++n;
    if (hi % 2 == 0 && hi + 1 < width) ++n;
  }
  return n;
}

constexpr uint64_t kHashBytes = 20;  // SHA-1 proof node on the wire.

}  // namespace

std::vector<FragmentRun> FetchPlanner::Plan(uint64_t begin, uint64_t end,
                                            const std::vector<bool>& valid,
                                            const BareProbe& bare_probe) {
  std::vector<FragmentRun> runs;
  end = std::min(end, document_bytes_);
  if (begin >= end) return runs;
  const uint64_t d0 = begin / fragment_size_;
  const uint64_t d1 = (end - 1) / fragment_size_;  // inclusive

  uint64_t first_missing = d0;
  while (first_missing <= d1 && valid[first_missing]) ++first_missing;
  if (first_missing > d1) return runs;  // Demand already held.

  // Adaptive window: a demand that continues exactly where the last batch
  // ended is sequential streaming — speculate twice as far as last time
  // (seeded by the demand's own span, so wide demands jump straight to
  // wide batches). A demand landing anywhere else just skipped or seeked:
  // restart cautious.
  if (first_missing == frontier_) {
    const uint64_t demand_bytes = (d1 - d0 + 1) * fragment_size_;
    readahead_bytes_ = std::min<uint64_t>(
        max_batch_,
        std::max<uint64_t>(std::max<uint64_t>(readahead_bytes_ * 2,
                                              demand_bytes),
                           fragment_size_));
  } else {
    readahead_bytes_ = 0;
  }
  const uint64_t readahead_frags = readahead_bytes_ / fragment_size_;

  // Hard horizon, anchored at the first fragment this batch must carry;
  // never empty, so oversized demands still make progress.
  const uint64_t horizon_frags =
      std::max<uint64_t>(1, max_batch_ / fragment_size_);
  const uint64_t window_end =
      std::min(fragment_count_, first_missing + horizon_frags);
  const uint64_t spec_end =
      std::min(window_end, first_missing + readahead_frags);

  // The working set spans whole chunks around the window so that chunk
  // completion can round outward in both directions.
  const uint64_t frags_per_chunk = chunk_size_ / fragment_size_;
  const uint64_t base = first_missing / frags_per_chunk * frags_per_chunk;
  const uint64_t extent =
      std::min(fragment_count_,
               (window_end + frags_per_chunk - 1) / frags_per_chunk *
                   frags_per_chunk);
  std::vector<uint8_t> include(extent - base, 0);
  auto inc = [&](uint64_t f) { return include[f - base] != 0; };

  // Pass 1 — mark what the batch needs: the demand, hinted-wanted
  // fragments, and the speculative window (which never crosses an
  // exclusion).
  for (uint64_t f = first_missing; f < window_end; ++f) {
    if (valid[f]) continue;  // Never re-fetch held fragments.
    if (f <= d1 || marks_[f] == Mark::kWanted ||
        (f < spec_end && marks_[f] != Mark::kExcluded)) {
      include[f - base] = 1;
    }
  }

  // Pass 2 — bridge sub-threshold gaps between included runs (no valid
  // fragment may be re-fetched, so any held fragment splits).
  if (gap_threshold_ > 0) {
    uint64_t prev_inc = UINT64_MAX;
    for (uint64_t f = base; f < extent; ++f) {
      if (!inc(f)) continue;
      if (prev_inc != UINT64_MAX && f > prev_inc + 1) {
        const uint64_t gap = f - prev_inc - 1;
        bool gap_fetchable = gap * fragment_size_ <= gap_threshold_;
        for (uint64_t g = prev_inc + 1; gap_fetchable && g < f; ++g) {
          if (valid[g]) gap_fetchable = false;
        }
        if (gap_fetchable) {
          for (uint64_t g = prev_inc + 1; g < f; ++g) include[g - base] = 1;
          stats_.gap_fragments_bridged += gap;
        }
      }
      prev_inc = f;
    }
  }

  // Pass 3 — proof-aware chunk completion: if a chunk's planned coverage
  // is partial, the batch must carry a sibling-hash set for it (unless the
  // digest cache already authenticates the covered ranges). When the
  // chunk's missing-but-fetchable bytes cost less than those hashes,
  // fetch them instead: full coverage ships an empty proof.
  for (uint64_t cf = base; cf < extent; cf += frags_per_chunk) {
    const uint64_t ce = std::min(extent, cf + frags_per_chunk);
    uint64_t covered = 0, missing_bytes = 0, proof_nodes = 0;
    bool has_valid = false, all_bare = true;
    // Walk the chunk's covered ranges, summing per-range proofs.
    uint64_t range_start = UINT64_MAX;
    auto close_range = [&](uint64_t range_end_excl) {
      if (range_start == UINT64_MAX) return;
      proof_nodes += ProofNodeCount(frags_per_chunk,
                                    range_start - cf,
                                    range_end_excl - 1 - cf);
      if (all_bare && bare_probe != nullptr) {
        all_bare = bare_probe(cf / frags_per_chunk,
                              static_cast<uint32_t>(range_start - cf),
                              static_cast<uint32_t>(range_end_excl - 1 - cf));
      } else if (bare_probe == nullptr) {
        all_bare = false;
      }
      range_start = UINT64_MAX;
    };
    for (uint64_t f = cf; f < ce; ++f) {
      if (valid[f]) has_valid = true;
      if (inc(f)) {
        ++covered;
        if (range_start == UINT64_MAX) range_start = f;
      } else {
        close_range(f);
        if (!valid[f]) {
          missing_bytes += std::min<uint64_t>(
              fragment_size_, document_bytes_ - f * fragment_size_);
        }
      }
    }
    close_range(ce);
    if (covered == 0 || missing_bytes == 0 || has_valid || all_bare) {
      continue;  // Untouched, already complete, unmergeable, or material-free.
    }
    // What completion actually saves is the proof *delta*: an interior
    // chunk drops to an empty proof, but a truncated tail chunk keeps
    // its EmptyLeaf-padding siblings even at full byte coverage.
    const uint64_t proof_after =
        ProofNodeCount(frags_per_chunk, 0, ce - cf - 1);
    const uint64_t saved =
        proof_nodes > proof_after ? proof_nodes - proof_after : 0;
    if (missing_bytes <= saved * kHashBytes) {
      for (uint64_t f = cf; f < ce; ++f) include[f - base] = 1;
      stats_.chunks_completed += 1;
    }
  }

  // Emit maximal included runs.
  for (uint64_t f = base; f < extent; ++f) {
    if (!inc(f)) continue;
    if (!runs.empty() && runs.back().end_frag == f) {
      runs.back().end_frag = f + 1;
    } else {
      runs.push_back({f, f + 1});
    }
  }
  if (!runs.empty()) frontier_ = runs.back().end_frag;
  return runs;
}

}  // namespace csxa::index
