#include "index/fetch_planner.h"

#include <algorithm>
#include <map>
#include <utility>

namespace csxa::index {

FetchPlanner::FetchPlanner(uint64_t document_bytes, uint32_t fragment_size,
                           uint32_t chunk_size, const PlannerOptions& options)
    : document_bytes_(document_bytes),
      fragment_size_(fragment_size),
      chunk_size_(chunk_size),
      fragment_count_((document_bytes + fragment_size - 1) / fragment_size),
      gap_threshold_(options.gap_threshold_bytes == UINT64_MAX
                         ? fragment_size
                         : options.gap_threshold_bytes),
      max_batch_(options.max_batch_bytes == 0 ? uint64_t{4} * chunk_size
                                              : options.max_batch_bytes),
      marks_(fragment_count_, Mark::kUnknown),
      planned_(fragment_count_, 0) {}

uint64_t FetchPlanner::FragmentBytes(uint64_t f) const {
  return std::min<uint64_t>(fragment_size_,
                            document_bytes_ - f * fragment_size_);
}

void FetchPlanner::HintWanted(uint64_t begin, uint64_t end) {
  end = std::min(end, document_bytes_);
  if (begin >= end) return;
  ++stats_.hints_wanted;
  // Outward rounding: a partially wanted fragment is fetched whole anyway.
  uint64_t first = begin / fragment_size_;
  uint64_t last = (end - 1) / fragment_size_;
  for (uint64_t f = first; f <= last; ++f) {
    // Re-promising a cancelled range (a granted deferral) takes its bytes
    // back out of the fallback's avoidance ledger.
    if (marks_[f] == Mark::kExcluded && !planned_[f]) {
      avoided_bytes_ -= FragmentBytes(f);
    }
    marks_[f] = Mark::kWanted;
  }
}

void FetchPlanner::HintExcluded(uint64_t begin, uint64_t end) {
  end = std::min(end, document_bytes_);
  if (begin >= end) return;
  // Once the fallback proved skipping a net loss, exclusions are ignored:
  // the navigator still jumps the subtrees, but the wire streams whole
  // chunks with empty proofs — cancelling ranges again would only re-open
  // the hole-vs-proof bleed the fallback just stopped.
  if (stream_all_fallback_) return;
  ++stats_.hints_excluded;
  // Skip evidence: stop speculating — a skip-dense region must page
  // conservatively or the readahead re-fetches what skipping just saved.
  readahead_bytes_ = 0;
  // Inward rounding: boundary fragments carry live neighbouring bytes
  // (the element's own header before the subtree, its close marker after).
  uint64_t first = (begin + fragment_size_ - 1) / fragment_size_;
  uint64_t last_end = end / fragment_size_;  // exclusive
  uint64_t wasted_frags = 0;
  for (uint64_t f = first; f < last_end; ++f) {
    if (marks_[f] == Mark::kExcluded) continue;
    // An exclusion over a fragment some batch actually emitted cancels
    // bytes speculation already paid for: that part of the skip saved
    // nothing. (Holes below the frontier were never fetched — not waste;
    // they enter the fallback's avoidance ledger instead.)
    if (planned_[f]) {
      ++wasted_frags;
    } else {
      avoided_bytes_ += FragmentBytes(f);
    }
    marks_[f] = Mark::kExcluded;
  }
  stats_.speculation_waste_bytes += wasted_frags * fragment_size_;
}

void FetchPlanner::HintStreamAll() {
  ++stats_.hints_wanted;
  std::fill(marks_.begin(), marks_.end(), Mark::kWanted);
  avoided_bytes_ = 0;
}

namespace {

/// Exact sibling-hash count of a contiguous-range Merkle proof (mirrors
/// MerkleTree::ProofForRange).
uint64_t ProofNodeCount(uint64_t leaf_count, uint64_t first, uint64_t last) {
  uint64_t n = 0, lo = first, hi = last;
  for (uint64_t width = leaf_count; width > 1; width /= 2, lo /= 2, hi /= 2) {
    if (lo % 2 == 1) ++n;
    if (hi % 2 == 0 && hi + 1 < width) ++n;
  }
  return n;
}

constexpr uint64_t kHashBytes = 20;  // SHA-1 proof node on the wire.

}  // namespace

std::vector<FragmentRun> FetchPlanner::Plan(uint64_t begin, uint64_t end,
                                            const std::vector<bool>& valid,
                                            const ProofCostProbe& proof_cost) {
  std::vector<FragmentRun> runs;
  end = std::min(end, document_bytes_);
  if (begin >= end) return runs;
  const uint64_t d0 = begin / fragment_size_;
  const uint64_t d1 = (end - 1) / fragment_size_;  // inclusive

  uint64_t first_missing = d0;
  while (first_missing <= d1 && valid[first_missing]) ++first_missing;
  if (first_missing > d1) return runs;  // Demand already held.

  // Stream-all fallback: skipping has to *pay for itself*. Every hole a
  // skip leaves in a chunk's coverage forces sibling hashes onto the wire
  // that whole-chunk streaming would never ship; when the hashes paid so
  // far outweigh the ciphertext actually avoided (exclusions usually
  // arrive after readahead already fetched part of the subtree), the serve
  // is strictly worse off than full streaming — flip to stream-all for
  // the rest. Checked against *realized* numbers, not projections, so
  // workloads whose prunes span chunks (where skipping wins big) never
  // come close to flipping. The minimum-exclusions threshold keeps the
  // verdict out of transient windows: right after a granted deferral is
  // re-promised, "avoided" legitimately dips to near zero although the
  // deferral strategy's savings (the *denied* subtrees) are still ahead.
  constexpr uint64_t kMinExclusionsForFallback = 6;
  if (!stream_all_fallback_ &&
      stats_.hints_excluded >= kMinExclusionsForFallback &&
      proof_overhead_bytes_ > avoided_bytes_) {
    stream_all_fallback_ = true;
    ++stats_.stream_all_fallbacks;
    std::fill(marks_.begin(), marks_.end(), Mark::kWanted);
    avoided_bytes_ = 0;
  }

  // Adaptive window: a demand that continues exactly where the last batch
  // ended is sequential streaming — speculate twice as far as last time
  // (seeded by the demand's own span, so wide demands jump straight to
  // wide batches). A demand landing anywhere else just skipped or seeked:
  // restart cautious.
  if (first_missing == frontier_) {
    const uint64_t demand_bytes = (d1 - d0 + 1) * fragment_size_;
    readahead_bytes_ = std::min<uint64_t>(
        max_batch_,
        std::max<uint64_t>(std::max<uint64_t>(readahead_bytes_ * 2,
                                              demand_bytes),
                           fragment_size_));
  } else {
    readahead_bytes_ = 0;
  }
  const uint64_t readahead_frags = readahead_bytes_ / fragment_size_;

  // Hard horizon, anchored at the first fragment this batch must carry;
  // never empty, so oversized demands still make progress.
  const uint64_t horizon_frags =
      std::max<uint64_t>(1, max_batch_ / fragment_size_);
  const uint64_t window_end =
      std::min(fragment_count_, first_missing + horizon_frags);
  const uint64_t spec_end =
      std::min(window_end, first_missing + readahead_frags);

  // The working set spans whole chunks around the window so that chunk
  // completion can round outward in both directions.
  const uint64_t frags_per_chunk = chunk_size_ / fragment_size_;
  const uint64_t base = first_missing / frags_per_chunk * frags_per_chunk;
  const uint64_t extent =
      std::min(fragment_count_,
               (window_end + frags_per_chunk - 1) / frags_per_chunk *
                   frags_per_chunk);
  std::vector<uint8_t> include(extent - base, 0);
  auto inc = [&](uint64_t f) { return include[f - base] != 0; };

  // Pass 1 — mark what the batch needs: the demand, hinted-wanted
  // fragments, and the speculative window (which never crosses an
  // exclusion).
  for (uint64_t f = first_missing; f < window_end; ++f) {
    if (valid[f]) continue;  // Never re-fetch held fragments.
    if (f <= d1 || marks_[f] == Mark::kWanted ||
        (f < spec_end && marks_[f] != Mark::kExcluded)) {
      include[f - base] = 1;
    }
  }

  // Pass 2 — bridge sub-threshold gaps between included runs (no valid
  // fragment may be re-fetched, so any held fragment splits).
  if (gap_threshold_ > 0) {
    uint64_t prev_inc = UINT64_MAX;
    for (uint64_t f = base; f < extent; ++f) {
      if (!inc(f)) continue;
      if (prev_inc != UINT64_MAX && f > prev_inc + 1) {
        const uint64_t gap = f - prev_inc - 1;
        bool gap_fetchable = gap * fragment_size_ <= gap_threshold_;
        for (uint64_t g = prev_inc + 1; gap_fetchable && g < f; ++g) {
          if (valid[g]) gap_fetchable = false;
        }
        if (gap_fetchable) {
          for (uint64_t g = prev_inc + 1; g < f; ++g) include[g - base] = 1;
          stats_.gap_fragments_bridged += gap;
        }
      }
      prev_inc = f;
    }
  }

  // Pass 3 — proof-aware coverage shaping, per chunk. Every hole in a
  // chunk's planned coverage costs sibling hashes on the wire; every fill
  // costs the hole's ciphertext. Price both with the digest-cache probe
  // (post-trimming: already-cached hashes ship regardless of shape — for
  // free) and keep the cheaper coverage. Greedy hole-by-hole first, then
  // whole-chunk completion (which also captures edge extension and
  // multi-hole combinations the greedy step prices individually).
  for (uint64_t cf = base; cf < extent; cf += frags_per_chunk) {
    const uint64_t ce = std::min(extent, cf + frags_per_chunk);
    const uint64_t chunk = cf / frags_per_chunk;

    // Wire bytes of the sibling hashes the chunk's current coverage would
    // ship (only genuinely new hashes when the probe is set). The greedy
    // loop below prices the same ranges repeatedly — memoize per chunk so
    // the (shared, mutex-guarded) cache probe runs once per distinct
    // range instead of once per candidate evaluation.
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> cost_memo;
    auto range_cost = [&](uint64_t first, uint64_t last) -> uint64_t {
      auto [it, fresh] = cost_memo.try_emplace({first, last}, 0);
      if (fresh) {
        const uint64_t nodes =
            proof_cost != nullptr
                ? proof_cost(chunk, static_cast<uint32_t>(first - cf),
                             static_cast<uint32_t>(last - cf))
                : ProofNodeCount(frags_per_chunk, first - cf, last - cf);
        it->second = nodes * kHashBytes;
      }
      return it->second;
    };
    auto coverage_cost = [&]() -> uint64_t {
      uint64_t cost = 0, range_start = UINT64_MAX;
      for (uint64_t f = cf; f < ce; ++f) {
        if (inc(f)) {
          if (range_start == UINT64_MAX) range_start = f;
        } else if (range_start != UINT64_MAX) {
          cost += range_cost(range_start, f - 1);
          range_start = UINT64_MAX;
        }
      }
      if (range_start != UINT64_MAX) cost += range_cost(range_start, ce - 1);
      return cost;
    };
    auto actual_bytes = [&](uint64_t first, uint64_t last) -> uint64_t {
      const uint64_t b = first * fragment_size_;
      const uint64_t e = std::min((last + 1) * fragment_size_,
                                  document_bytes_);
      return e > b ? e - b : 0;
    };

    bool any_included = false, any_valid_in_chunk = false;
    uint64_t missing_bytes = 0;
    for (uint64_t f = cf; f < ce; ++f) {
      any_included |= inc(f);
      any_valid_in_chunk |= valid[f];
      if (!inc(f) && !valid[f]) missing_bytes += actual_bytes(f, f);
    }
    if (!any_included || missing_bytes == 0) continue;

    // Greedy: fill any maximal hole (run of unplanned, unheld fragments)
    // whose ciphertext costs no more than the proof hashes it removes.
    // Valid fragments bound holes — they can never be re-fetched.
    uint64_t cost_before = coverage_cost();
    bool filled = true;
    while (filled && cost_before > 0) {
      filled = false;
      for (uint64_t f = cf; f < ce; ++f) {
        if (inc(f) || valid[f]) continue;
        uint64_t h1 = f;
        while (h1 + 1 < ce && !inc(h1 + 1) && !valid[h1 + 1]) ++h1;
        const uint64_t hole_bytes = actual_bytes(f, h1);
        for (uint64_t g = f; g <= h1; ++g) include[g - base] = 1;
        const uint64_t cost_after = coverage_cost();
        if (cost_before >= cost_after &&
            cost_before - cost_after >= hole_bytes && hole_bytes > 0) {
          cost_before = cost_after;
          stats_.proof_holes_filled += 1;
          filled = true;
        } else {
          for (uint64_t g = f; g <= h1; ++g) include[g - base] = 0;
        }
        f = h1;
      }
    }
    // Whole-chunk completion: combinations of holes (and edge gaps) can
    // be jointly profitable where each alone is not — full coverage
    // collapses the proof to the EmptyLeaf padding of a tail chunk, or to
    // nothing. Only when no held fragment forbids the merge.
    if (!any_valid_in_chunk) {
      uint64_t still_missing = 0;
      for (uint64_t f = cf; f < ce; ++f) {
        if (!inc(f)) still_missing += actual_bytes(f, f);
      }
      if (still_missing > 0) {
        const uint64_t cost_full = range_cost(cf, ce - 1);
        if (cost_before >= cost_full &&
            cost_before - cost_full >= still_missing) {
          for (uint64_t f = cf; f < ce; ++f) include[f - base] = 1;
          stats_.chunks_completed += 1;
        }
      }
    }
  }

  // Emit maximal included runs.
  for (uint64_t f = base; f < extent; ++f) {
    if (!inc(f)) continue;
    // An excluded fragment the batch fetches anyway (bridged, hole-filled
    // or demanded outright) stops being avoided ciphertext.
    if (marks_[f] == Mark::kExcluded && !planned_[f]) {
      avoided_bytes_ -= FragmentBytes(f);
    }
    planned_[f] = 1;
    if (!runs.empty() && runs.back().end_frag == f) {
      runs.back().end_frag = f + 1;
    } else {
      runs.push_back({f, f + 1});
    }
  }
  if (!runs.empty()) frontier_ = runs.back().end_frag;
  return runs;
}

}  // namespace csxa::index
