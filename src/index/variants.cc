#include "index/variants.h"

#include "index/encoder.h"
#include "xml/serializer.h"

namespace csxa::index {

Result<SizeReport> MeasureVariant(const xml::Node& root, Variant variant) {
  SizeReport report;
  report.variant = variant;
  if (variant == Variant::kNc) {
    std::string text = xml::Serialize(root);
    report.total_bytes = text.size();
    report.text_bytes = root.TextLength();
    report.structure_bytes = report.total_bytes - report.text_bytes;
    return report;
  }
  auto encoded = Encode(root, variant);
  if (!encoded.ok()) return encoded.status();
  const EncodedDocument& doc = encoded.value();
  report.total_bytes = doc.bytes.size();
  report.text_bytes = doc.text_bits / 8;
  report.structure_bytes = (doc.structure_bits + 7) / 8;
  return report;
}

}  // namespace csxa::index
