#ifndef CSXA_INDEX_ENCODER_H_
#define CSXA_INDEX_ENCODER_H_

#include "common/status.h"
#include "index/encoded_document.h"
#include "xml/node.h"

namespace csxa::index {

/// Encodes a DOM tree into one of the binary structure formats (Section 4.1
/// of the paper). Variant::kNc is not a binary format — use
/// `MeasureVariant` from index/variants.h for its Figure 8 numbers.
///
/// The recursive size fields of TCS/TCSB/TCSBR are self-referential (a
/// subtree's size includes its children's size fields, whose widths depend
/// on that very size); the encoder resolves this with a bottom-up /
/// top-down iteration to the least fixed point, which converges in a
/// handful of rounds.
Result<EncodedDocument> Encode(const xml::Node& root, Variant variant);

}  // namespace csxa::index

#endif  // CSXA_INDEX_ENCODER_H_
