#include "index/encoder.h"

#include <algorithm>
#include <memory>

#include "common/bitstream.h"

namespace csxa::index {

namespace {

using xml::Node;
using xml::TagDictionary;
using xml::TagId;

/// Per-element annotation used during encoding.
struct Ann {
  const Node* node = nullptr;
  TagId tag = 0;
  bool internal = false;            // has at least one element child
  std::vector<TagId> desc;          // sorted tags of strict descendants
  std::vector<std::unique_ptr<Ann>> children;  // element children, in order
  uint64_t size_bits = 0;           // C(e): bits of the children region
  int width = 64;                   // W(e): size-field width for children
};

std::unique_ptr<Ann> Annotate(const Node& node, TagDictionary* dict) {
  auto ann = std::make_unique<Ann>();
  ann->node = &node;
  ann->tag = dict->Intern(node.tag());
  std::vector<TagId> desc;
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    ann->internal = true;
    auto child_ann = Annotate(*child, dict);
    desc.push_back(child_ann->tag);
    desc.insert(desc.end(), child_ann->desc.begin(), child_ann->desc.end());
    ann->children.push_back(std::move(child_ann));
  }
  std::sort(desc.begin(), desc.end());
  desc.erase(std::unique(desc.begin(), desc.end()), desc.end());
  ann->desc = std::move(desc);
  return ann;
}

struct Layout {
  Variant variant;
  size_t dict_size;  // Nt

  int TagBits(size_t parent_ctx_size) const {
    if (variant == Variant::kTcsbr) {
      return BitsFor(static_cast<uint64_t>(parent_ctx_size));
    }
    return BitsFor(static_cast<uint64_t>(dict_size));
  }
  int ArrayBits(size_t parent_ctx_size, bool internal) const {
    if (!internal) return 0;
    if (variant == Variant::kTcsb) return static_cast<int>(dict_size);
    if (variant == Variant::kTcsbr) return static_cast<int>(parent_ctx_size);
    return 0;
  }
};

/// One bottom-up pass computing size_bits given the current widths.
/// `parent_ctx_size` is |DescTag_parent(e)| (dictionary size for the root).
void ComputeSizes(Ann* e, size_t parent_ctx_size, const Layout& layout) {
  uint64_t bits = 0;
  size_t elem_index = 0;
  for (const auto& child : e->node->children()) {
    if (child->is_text()) {
      bits += 1 + static_cast<uint64_t>(e->width) + 8 * child->value().size();
    } else {
      Ann* ce = e->children[elem_index++].get();
      ComputeSizes(ce, e->desc.size(), layout);
      bits += 2 + static_cast<uint64_t>(e->width) +
              layout.TagBits(e->desc.size()) +
              layout.ArrayBits(e->desc.size(), ce->internal) + ce->size_bits;
    }
  }
  (void)parent_ctx_size;
  e->size_bits = bits;
}

/// Top-down width refresh; returns true if any width changed.
bool RefreshWidths(Ann* e) {
  bool changed = false;
  int w = BitWidth(e->size_bits);
  if (w != e->width) {
    e->width = w;
    changed = true;
  }
  for (auto& child : e->children) changed |= RefreshWidths(child.get());
  return changed;
}

/// Index of `tag` in the sorted context `ctx`.
uint64_t TagIndexIn(const std::vector<TagId>& ctx, TagId tag) {
  auto it = std::lower_bound(ctx.begin(), ctx.end(), tag);
  return static_cast<uint64_t>(it - ctx.begin());
}

class Emitter {
 public:
  Emitter(const Layout& layout, const TagDictionary& dict)
      : layout_(layout), dict_(dict) {
    for (TagId i = 0; i < dict.size(); ++i) full_ctx_.push_back(i);
  }

  void EmitElement(const Ann& e, const std::vector<TagId>& parent_ctx,
                   int parent_width, bool is_root) {
    writer_.WriteBit(true);  // kind = element
    writer_.WriteBit(e.internal);
    if (!is_root) writer_.WriteBits(e.size_bits, parent_width);
    // Tag code.
    if (layout_.variant == Variant::kTcsbr) {
      writer_.WriteBits(TagIndexIn(parent_ctx, e.tag),
                        layout_.TagBits(parent_ctx.size()));
    } else {
      writer_.WriteBits(e.tag, layout_.TagBits(parent_ctx.size()));
    }
    // Descendant-tag bitmap.
    if (e.internal && layout_.variant == Variant::kTcsb) {
      for (TagId t = 0; t < dict_.size(); ++t) {
        writer_.WriteBit(std::binary_search(e.desc.begin(), e.desc.end(), t));
      }
    } else if (e.internal && layout_.variant == Variant::kTcsbr) {
      for (TagId t : parent_ctx) {
        writer_.WriteBit(std::binary_search(e.desc.begin(), e.desc.end(), t));
      }
    }
    // Children.
    size_t elem_index = 0;
    for (const auto& child : e.node->children()) {
      if (child->is_text()) {
        writer_.WriteBit(false);  // kind = text
        writer_.WriteBits(child->value().size(), e.width);
        for (unsigned char c : child->value()) writer_.WriteBits(c, 8);
        text_bits_ += 8 * child->value().size();
      } else {
        EmitElement(*e.children[elem_index++], e.desc, e.width,
                    /*is_root=*/false);
      }
    }
  }

  /// TC scheme: 2-bit markers, explicit end-of-children, varint lengths.
  void EmitTc(const Node& node) {
    if (node.is_text()) {
      writer_.WriteBits(0b10, 2);
      EmitVarint(node.value().size());
      for (unsigned char c : node.value()) writer_.WriteBits(c, 8);
      text_bits_ += 8 * node.value().size();
      return;
    }
    writer_.WriteBits(0b01, 2);
    TagId tag = 0;
    dict_.Lookup(node.tag(), &tag);
    writer_.WriteBits(tag, BitsFor(dict_.size()));
    for (const auto& child : node.children()) EmitTc(*child);
    writer_.WriteBits(0b00, 2);  // end of children
  }

  BitWriter& writer() { return writer_; }
  uint64_t text_bits() const { return text_bits_; }
  const std::vector<TagId>& full_ctx() const { return full_ctx_; }

 private:
  void EmitVarint(uint64_t v) {
    // Little-endian 4-bit groups, each preceded by a continuation bit.
    do {
      uint64_t group = v & 0xF;
      v >>= 4;
      writer_.WriteBit(v != 0);
      writer_.WriteBits(group, 4);
    } while (v != 0);
  }

  const Layout& layout_;
  const TagDictionary& dict_;
  std::vector<TagId> full_ctx_;
  BitWriter writer_;
  uint64_t text_bits_ = 0;
};

}  // namespace

Result<EncodedDocument> Encode(const Node& root, Variant variant) {
  if (variant == Variant::kNc) {
    return Status::InvalidArgument(
        "NC is raw XML text, not a binary encoding; use MeasureVariant");
  }
  if (!root.is_element()) {
    return Status::InvalidArgument("document root must be an element");
  }

  EncodedDocument doc;
  doc.variant = variant;

  TagDictionary dict;
  auto ann = Annotate(root, &dict);
  Layout layout{variant, dict.size()};

  if (variant != Variant::kTc) {
    // Least fixed point of (sizes, widths): widths start at 64 and only
    // shrink; each round recomputes sizes bottom-up then widths top-down.
    int rounds = 0;
    do {
      ComputeSizes(ann.get(), dict.size(), layout);
      ++rounds;
      if (rounds > 64) {
        return Status::Internal("size fixed point did not converge");
      }
    } while (RefreshWidths(ann.get()));
  }

  Emitter emitter(layout, dict);
  if (variant == Variant::kTc) {
    emitter.EmitTc(root);
  } else {
    emitter.EmitElement(*ann, emitter.full_ctx(), /*parent_width=*/0,
                        /*is_root=*/true);
  }

  // Assemble header + stream.
  std::vector<uint8_t> bytes(format::kMagic,
                             format::kMagic + format::kMagicSize);
  bytes.push_back(static_cast<uint8_t>(variant));
  std::vector<uint8_t> dict_bytes = dict.Serialize();
  bytes.insert(bytes.end(), dict_bytes.begin(), dict_bytes.end());
  uint64_t root_bits = variant == Variant::kTc ? 0 : ann->size_bits;
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<uint8_t>(root_bits >> (56 - 8 * i)));
  }
  doc.stream_offset = bytes.size();
  uint64_t stream_bits = emitter.writer().bit_size();
  std::vector<uint8_t> stream = emitter.writer().TakeBytes();
  bytes.insert(bytes.end(), stream.begin(), stream.end());

  doc.bytes = std::move(bytes);
  doc.dictionary = std::move(dict);
  doc.root_size_bits = root_bits;
  doc.text_bits = emitter.text_bits();
  doc.structure_bits =
      doc.stream_offset * 8 + stream_bits - emitter.text_bits();
  return doc;
}

}  // namespace csxa::index
