#ifndef CSXA_INDEX_FETCH_PLANNER_H_
#define CSXA_INDEX_FETCH_PLANNER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace csxa::index {

/// Knobs of the range-coalescing fetch planner.
struct PlannerOptions {
  /// Largest run of *unneeded* bytes the planner bridges (fetches anyway)
  /// to keep two nearby needed ranges in one contiguous segment: one
  /// segment means one chunk-proof set instead of two, and no extra round
  /// trip. 0 never bridges. The sentinel UINT64_MAX resolves to one
  /// fragment at construction — sub-fragment holes are free to bridge
  /// (the hashing unit forces whole fragments anyway), anything larger is
  /// skipped content whose transfer the Skip index exists to avoid.
  uint64_t gap_threshold_bytes = UINT64_MAX;

  /// Upper bound on ciphertext bytes per terminal round trip — the SOE's
  /// response buffer. Look-ahead never plans past this horizon; oversized
  /// demands are split into successive batches. The sentinel 0 resolves
  /// to four chunks at construction.
  uint64_t max_batch_bytes = 0;
};

/// One planned fragment run [begin_frag, end_frag), to be fetched as a
/// single contiguous ciphertext segment.
struct FragmentRun {
  uint64_t begin_frag = 0;
  uint64_t end_frag = 0;
};

/// Range-coalescing planner of the batched verified fetch: turns the
/// navigator's byte-at-a-time demands into few, large, chunk-shaped
/// terminal reads.
///
/// The planner keeps one classification per fragment, driven by look-ahead
/// hints from the pipeline's skip oracle:
///
///  - *wanted*  — the oracle proved the bytes will be streamed (a fully
///    authorized subtree, a granted deferral about to be re-read, or the
///    whole document when the stream cannot skip). Wanted fragments are
///    prefetched into the current batch up to the batch horizon.
///  - *excluded* — a skip/defer decision cancelled the range: the bytes
///    will not be needed (or not now). Excluded fragments are never
///    planned ahead; they are fetched only if demanded outright (a defer
///    later re-hinted as wanted) or bridged as a sub-threshold gap.
///  - *unknown* — no evidence either way. Prefetched only by the adaptive
///    sequential window below: blind speculation past the decode frontier
///    would transfer bytes the very next skip decision prunes, which is
///    the cost model this system exists to minimize.
///
/// Unknown fragments are covered by *adaptive readahead*: while demands
/// arrive exactly at the previous batch's frontier (sequential streaming),
/// the readahead window doubles — so a run that never skips converges to
/// maximal chunk-aligned batches, indistinguishable from a planned
/// stream-all read, with empty Merkle proofs (full-chunk coverage needs no
/// siblings). Once the window spans at least a chunk, batch ends snap
/// outward to chunk boundaries so whole-chunk coverage (and the empty
/// proof that comes with it) is the common case.
///
/// The moment the skip oracle cancels a range, the window collapses to
/// zero: a skip-dense region pages conservatively and keeps the skip
/// savings intact.
///
/// Skipping also has to *pay for itself* — the stream-all fallback. Every
/// hole a skip leaves in a chunk's coverage forces sibling hashes onto the
/// wire that whole-chunk streaming would never ship, and exclusions often
/// arrive after readahead already fetched part of the subtree (the saving
/// shrinks, the proof overhead stays). The planner therefore compares two
/// realized quantities every batch: proof bytes actually shipped (fed back
/// by the fetcher via ReportProofBytes) against ciphertext actually
/// avoided (excluded fragments never fetched). When the overhead
/// overtakes the avoidance, the serve is strictly worse off than full
/// streaming — it flips to stream-all for the rest: the navigator still
/// jumps subtrees, but the wire moves whole chunks with empty proofs.
/// Workloads whose prunes span chunks (where the Skip index wins big)
/// keep avoidance far ahead of overhead and never flip.
///
/// Demands always win: the fragments of the demanded range are planned
/// regardless of classification (the navigator's reads are ground truth).
/// Hints are pure prefetch policy — they can change when bytes cross the
/// wire, never whether the decoded view is correct.
class FetchPlanner {
 public:
  FetchPlanner(uint64_t document_bytes, uint32_t fragment_size,
               uint32_t chunk_size, const PlannerOptions& options);

  /// Look-ahead hint: [begin, end) will be streamed. Rounds outward to
  /// fragment boundaries (a partially wanted fragment must be fetched
  /// whole anyway). Overrides earlier exclusions — later evidence wins.
  void HintWanted(uint64_t begin, uint64_t end);

  /// Skip-oracle cancellation: [begin, end) will not be needed. Rounds
  /// inward to fragment boundaries (boundary fragments carry neighbouring
  /// live bytes). Overrides earlier wanted marks.
  void HintExcluded(uint64_t begin, uint64_t end);

  /// The consumer will stream the entire document (no skip capability, or
  /// skipping disabled): everything becomes wanted.
  void HintStreamAll();

  /// Feedback from the fetcher after each batch: how many proof-hash
  /// bytes the response actually carried. Drives the stream-all fallback
  /// (see class comment).
  void ReportProofBytes(uint64_t bytes) { proof_overhead_bytes_ += bytes; }

  /// Number of sibling hashes a Merkle proof for fragments [first, last]
  /// of `chunk` would have to *ship*, given what the SOE's verified-digest
  /// cache already holds (0 when the range verifies bare, the full
  /// ProofForRange count when the chunk is cold). Used by the proof-aware
  /// coverage shaping below; may be null (cold-cache estimate).
  using ProofCostProbe =
      std::function<uint64_t(uint64_t chunk, uint32_t first, uint32_t last)>;

  /// Plans the batch that satisfies the demand [begin, end): the missing
  /// demand fragments, extended through missing wanted fragments and the
  /// adaptive readahead window up to the batch horizon, with
  /// sub-threshold gaps bridged into contiguous runs. `valid[f]` marks
  /// fragments already held — they are never re-planned, and a valid
  /// fragment always splits a run (re-fetching held bytes is the one
  /// waste coalescing must never introduce).
  ///
  /// Proof-aware coverage shaping: every hole in a chunk's planned
  /// coverage costs sibling hashes (20 bytes per shipped proof node) on
  /// the wire, while filling it costs the unneeded fragments' ciphertext.
  /// Per chunk the planner greedily fills each hole whose ciphertext is no
  /// dearer than the proof hashes it removes, then considers completing
  /// the chunk outright (full coverage ships an empty proof). Costs come
  /// from `proof_cost` — the post-trimming wire price, so warm chunks
  /// (material already cached) are never "completed" to save hashes that
  /// would not have shipped anyway. This is the amortization arithmetic
  /// that makes batched reads chunk-shaped on a cold cache, and exactly
  /// demand-shaped on a warm one; it is also what keeps skip-mode wire
  /// under full streaming: a skip hole survives into the request only when
  /// the ciphertext it avoids outweighs the proof overhead it causes,
  /// otherwise the plan falls back toward stream-all of its own accord.
  ///
  /// The returned runs are sorted and disjoint, and always include the
  /// first missing demand fragment (progress guarantee); a demand wider
  /// than the horizon completes over successive calls.
  std::vector<FragmentRun> Plan(uint64_t begin, uint64_t end,
                                const std::vector<bool>& valid,
                                const ProofCostProbe& proof_cost = nullptr);

  uint64_t fragment_count() const { return fragment_count_; }
  uint64_t gap_threshold_bytes() const { return gap_threshold_; }
  uint64_t max_batch_bytes() const { return max_batch_; }

  /// Planner-side cost counters.
  struct Stats {
    uint64_t hints_wanted = 0;
    uint64_t hints_excluded = 0;
    uint64_t gap_fragments_bridged = 0;  ///< Unneeded fragments fetched.
    uint64_t chunks_completed = 0;  ///< Rounded to full coverage (proof < gap).
    uint64_t proof_holes_filled = 0;  ///< Coverage holes cheaper than proofs.
    uint64_t speculation_waste_bytes = 0;  ///< Fetched, then excluded.
    uint64_t stream_all_fallbacks = 0;  ///< 1 when this serve flipped.
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class Mark : uint8_t { kUnknown, kWanted, kExcluded };

  /// Actual document bytes of fragment `f` (tail fragments are short).
  uint64_t FragmentBytes(uint64_t f) const;

  uint64_t document_bytes_;
  uint32_t fragment_size_;
  uint32_t chunk_size_;
  uint64_t fragment_count_;
  uint64_t gap_threshold_;
  uint64_t max_batch_;
  std::vector<Mark> marks_;
  /// Adaptive sequential readahead: fragment right after the last planned
  /// batch, and the current window (bytes of unknown fragments a batch may
  /// speculate through). Doubles on sequential demands, zeroed by
  /// HintExcluded (skip evidence).
  uint64_t frontier_ = 0;
  uint64_t readahead_bytes_ = 0;
  /// Fragments emitted in some batch's runs — what speculation actually
  /// paid for (the waste stat must not count never-fetched holes).
  std::vector<uint8_t> planned_;
  /// Stream-all fallback state (see class comment). `avoided_bytes_` is
  /// the incrementally maintained Σ bytes of excluded-and-never-planned
  /// fragments (mark transitions keep it exact), so the per-batch
  /// overhead-vs-avoidance check is O(1), not O(fragments).
  uint64_t proof_overhead_bytes_ = 0;
  uint64_t avoided_bytes_ = 0;
  bool stream_all_fallback_ = false;
  mutable Stats stats_;
};

}  // namespace csxa::index

#endif  // CSXA_INDEX_FETCH_PLANNER_H_
