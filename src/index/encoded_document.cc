#include "index/encoded_document.h"

#include <cstring>

namespace csxa::index {

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kNc:
      return "NC";
    case Variant::kTc:
      return "TC";
    case Variant::kTcs:
      return "TCS";
    case Variant::kTcsb:
      return "TCSB";
    case Variant::kTcsbr:
      return "TCSBR";
  }
  return "?";
}

Result<HeaderInfo> ParseHeaderInfo(const uint8_t* data, size_t size) {
  if (size < format::kMagicSize + 1) {
    return Status::Corruption("encoded document too short");
  }
  if (std::memcmp(data, format::kMagic, format::kMagicSize) != 0) {
    return Status::Corruption("bad magic (not a CSXA encoded document)");
  }
  HeaderInfo info;
  uint8_t raw_variant = data[format::kMagicSize];
  if (raw_variant < 1 || raw_variant > 4) {
    return Status::Corruption("unknown encoding variant");
  }
  info.variant = static_cast<Variant>(raw_variant);
  size_t pos = format::kMagicSize + 1;
  size_t dict_bytes = 0;
  auto dict =
      xml::TagDictionary::Deserialize(data + pos, size - pos, &dict_bytes);
  if (!dict.ok()) return dict.status();
  info.dictionary = dict.take();
  pos += dict_bytes;
  if (pos + 8 > size) {
    return Status::Corruption("encoded document header truncated");
  }
  uint64_t root_bits = 0;
  for (int i = 0; i < 8; ++i) root_bits = (root_bits << 8) | data[pos + i];
  info.root_size_bits = root_bits;
  info.stream_offset = pos + 8;
  return info;
}

Result<EncodedDocument> ParseHeader(const std::vector<uint8_t>& bytes) {
  auto info = ParseHeaderInfo(bytes.data(), bytes.size());
  if (!info.ok()) return info.status();
  EncodedDocument doc;
  doc.variant = info.value().variant;
  doc.dictionary = std::move(info.value().dictionary);
  doc.stream_offset = info.value().stream_offset;
  doc.root_size_bits = info.value().root_size_bits;
  doc.bytes = bytes;
  return doc;
}

}  // namespace csxa::index
