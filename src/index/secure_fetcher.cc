#include "index/secure_fetcher.h"

#include <algorithm>

namespace csxa::index {

SecureFetcher::SecureFetcher(const crypto::SecureDocumentStore* store,
                             crypto::SoeDecryptor* soe)
    : store_(store),
      soe_(soe),
      fragment_size_(store->layout().fragment_size),
      buffer_(store->plaintext_size(), 0),
      fragment_valid_(
          (store->plaintext_size() + store->layout().fragment_size - 1) /
              store->layout().fragment_size,
          false) {}

Status SecureFetcher::Ensure(uint64_t begin, uint64_t end) {
  end = std::min<uint64_t>(end, buffer_.size());
  if (begin >= end) return Status::OK();

  uint64_t first_frag = begin / fragment_size_;
  uint64_t last_frag = (end - 1) / fragment_size_;
  for (uint64_t f = first_frag; f <= last_frag; ++f) {
    if (fragment_valid_[f]) continue;
    // Coalesce the run of missing fragments into one terminal round trip.
    uint64_t run_end = f;
    while (run_end + 1 <= last_frag && !fragment_valid_[run_end + 1]) {
      ++run_end;
    }
    uint64_t pos = f * fragment_size_;
    uint64_t n =
        std::min<uint64_t>((run_end + 1) * fragment_size_, buffer_.size()) -
        pos;
    auto resp = store_->ReadRange(pos, n);
    CSXA_RETURN_NOT_OK(resp.status());
    wire_bytes_ += resp.value().WireBytes();
    ++requests_;
    CSXA_ASSIGN_OR_RETURN(std::vector<uint8_t> plain,
                          soe_->DecryptVerified(resp.value(), pos, n));
    std::copy(plain.begin(), plain.end(), buffer_.begin() + pos);
    bytes_fetched_ += n;
    for (uint64_t g = f; g <= run_end; ++g) fragment_valid_[g] = true;
    f = run_end;
  }
  return Status::OK();
}

}  // namespace csxa::index
