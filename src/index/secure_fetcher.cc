#include "index/secure_fetcher.h"

#include <algorithm>

#include "common/clock.h"

namespace csxa::index {

SecureFetcher::SecureFetcher(const crypto::SecureDocumentStore* store,
                             crypto::SoeDecryptor* soe,
                             const PlannerOptions& planner_options)
    : store_(store),
      soe_(soe),
      fragment_size_(store->layout().fragment_size),
      planner_(store->ciphertext().size(), store->layout().fragment_size,
               store->layout().chunk_size, planner_options),
      buffer_(store->plaintext_size(), 0),
      fragment_valid_(planner_.fragment_count(), false) {}

Status SecureFetcher::Ensure(uint64_t begin, uint64_t end) {
  end = std::min<uint64_t>(end, buffer_.size());
  if (begin >= end) return Status::OK();
  const uint32_t chunk_size = store_->layout().chunk_size;
  const uint64_t padded_size = store_->ciphertext().size();

  // One planner batch per terminal round trip; a demand wider than the
  // batch horizon completes over successive iterations (each is
  // guaranteed to validate at least the first missing demand fragment).
  const FetchPlanner::BareProbe bare_probe =
      [this](uint64_t chunk, uint32_t first, uint32_t last) {
        return soe_->CanVerifyBare(chunk, first, last);
      };
  while (true) {
    std::vector<FragmentRun> runs =
        planner_.Plan(begin, end, fragment_valid_, bare_probe);
    if (runs.empty()) return Status::OK();  // Demand fully held.

    crypto::BatchRequest req;
    req.runs.reserve(runs.size());
    for (const FragmentRun& run : runs) {
      crypto::BatchRequest::Run r;
      r.begin = run.begin_frag * fragment_size_;
      r.end = std::min<uint64_t>(run.end_frag * fragment_size_, padded_size);
      req.runs.push_back(r);
    }
    // Waive integrity material for every chunk whose covered fragment
    // ranges the SOE can already verify from its digest cache. A chunk
    // split across two runs (rare: an already-valid fragment between
    // them) is waived only when *every* covered range verifies bare.
    // Probe each (chunk, covered range) exactly once; a chunk split
    // across two runs (rare) is waived only when every cover verifies.
    struct ChunkClaim {
      uint64_t chunk;
      bool all_bare;
    };
    std::vector<ChunkClaim> claims;
    for (const crypto::BatchRequest::Run& r : req.runs) {
      uint64_t first_chunk = r.begin / chunk_size;
      uint64_t last_chunk = (r.end - 1) / chunk_size;
      for (uint64_t c = first_chunk; c <= last_chunk; ++c) {
        uint64_t chunk_begin = c * chunk_size;
        uint64_t cover_begin = std::max<uint64_t>(chunk_begin, r.begin);
        uint64_t cover_end =
            std::min<uint64_t>(chunk_begin + chunk_size, r.end);
        const bool bare = soe_->CanVerifyBare(
            c,
            static_cast<uint32_t>((cover_begin - chunk_begin) /
                                  fragment_size_),
            static_cast<uint32_t>((cover_end - 1 - chunk_begin) /
                                  fragment_size_));
        if (!claims.empty() && claims.back().chunk == c) {
          claims.back().all_bare &= bare;
        } else {
          claims.push_back({c, bare});
        }
      }
    }
    // Runs are sorted and disjoint, so covers of one chunk are adjacent
    // and `claims` holds each chunk exactly once.
    for (const ChunkClaim& claim : claims) {
      if (claim.all_bare) {
        req.bare_chunks.push_back(claim.chunk);
        continue;
      }
      // Not fully bare: trim the proof instead — declare every tree node
      // the SOE already holds so the terminal ships only the genuinely
      // new hashes (and no digest once the root is authenticated).
      crypto::BatchRequest::ChunkHint hint = soe_->CacheHintFor(claim.chunk);
      if (hint.known_nodes != 0 || hint.root_known) {
        req.hints.push_back(hint);
      }
    }

    const uint64_t t0 = NowNs();
    auto resp = store_->ReadBatch(req);
    fetch_ns_ += NowNs() - t0;
    CSXA_RETURN_NOT_OK(resp.status());
    wire_bytes_ += resp.value().WireBytes();
    ++requests_;
    segments_ += req.runs.size();
    bare_chunk_reads_ += req.bare_chunks.size();
    CSXA_RETURN_NOT_OK(soe_->DecryptVerifiedBatch(req, resp.value(),
                                                  buffer_.data(),
                                                  buffer_.size()));
    for (const FragmentRun& run : runs) {
      for (uint64_t f = run.begin_frag; f < run.end_frag; ++f) {
        fragment_valid_[f] = true;
      }
      uint64_t b = run.begin_frag * fragment_size_;
      uint64_t e = std::min<uint64_t>(run.end_frag * fragment_size_,
                                      buffer_.size());
      if (e > b) bytes_fetched_ += e - b;
    }
  }
}

}  // namespace csxa::index
