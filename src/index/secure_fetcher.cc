#include "index/secure_fetcher.h"

#include <algorithm>

#include "common/clock.h"

namespace csxa::index {

SecureFetcher::SecureFetcher(const crypto::BatchSource* source,
                             const crypto::ChunkLayout& layout,
                             uint64_t plaintext_size, uint64_t ciphertext_size,
                             crypto::SoeDecryptor* soe,
                             const PlannerOptions& planner_options)
    : source_(source),
      soe_(soe),
      fragment_size_(layout.fragment_size),
      chunk_size_(layout.chunk_size),
      planner_(ciphertext_size, layout.fragment_size, layout.chunk_size,
               planner_options),
      buffer_(plaintext_size, 0),
      view_(soe->VerifiedViewOf(buffer_.data(), buffer_.size())),
      padded_size_(ciphertext_size),
      fragment_valid_(planner_.fragment_count(), false),
      transport_base_(source->transport_stats()) {}

Status SecureFetcher::Ensure(uint64_t begin, uint64_t end) {
  end = std::min<uint64_t>(end, buffer_.size());
  if (begin >= end) return Status::OK();

  // One planner batch per terminal round trip; a demand wider than the
  // batch horizon completes over successive iterations (each is
  // guaranteed to validate at least the first missing demand fragment).
  // The planner prices coverage holes at their *incremental* proof cost:
  // hashes the digest cache already holds are trimmed off the wire anyway,
  // so they must not justify fetching skip-saved bytes.
  const FetchPlanner::ProofCostProbe proof_probe =
      [this](uint64_t chunk, uint32_t first, uint32_t last) {
        return soe_->MissingProofNodes(chunk, first, last);
      };
  while (true) {
    std::vector<FragmentRun> runs =
        planner_.Plan(begin, end, fragment_valid_, proof_probe);
    if (runs.empty()) return Status::OK();  // Demand fully held.

    // One pass over the runs derives both the request ranges and every
    // (chunk, covered fragment interval) pair the batch touches. Runs are
    // sorted and disjoint, so covers of one chunk are adjacent.
    struct ChunkCover {
      uint64_t chunk;
      uint32_t first;  ///< Covered fragment interval within the chunk.
      uint32_t last;
    };
    crypto::BatchRequest req;
    req.runs.reserve(runs.size());
    std::vector<ChunkCover> covers;
    std::vector<uint64_t> touched_chunks;
    for (const FragmentRun& run : runs) {
      crypto::BatchRequest::Run r;
      r.begin = run.begin_frag * fragment_size_;
      r.end = std::min<uint64_t>(run.end_frag * fragment_size_, padded_size_);
      req.runs.push_back(r);
      for (uint64_t c = r.begin / chunk_size_; c <= (r.end - 1) / chunk_size_;
           ++c) {
        uint64_t chunk_begin = c * chunk_size_;
        uint64_t cover_begin = std::max<uint64_t>(chunk_begin, r.begin);
        uint64_t cover_end =
            std::min<uint64_t>(chunk_begin + chunk_size_, r.end);
        covers.push_back(
            {c,
             static_cast<uint32_t>((cover_begin - chunk_begin) /
                                   fragment_size_),
             static_cast<uint32_t>((cover_end - 1 - chunk_begin) /
                                   fragment_size_)});
        if (touched_chunks.empty() || touched_chunks.back() != c) {
          touched_chunks.push_back(c);
        }
      }
    }
    // Pin the batch's chunks *before* probing the cache: with the cache
    // shared across serves, a concurrent session's insertions could evict
    // an entry between the waiver probe below and the verification that
    // relies on it — failing an honest response. Pinned entries cannot be
    // displaced until the guard dies (after DecryptVerifiedBatch).
    crypto::VerifiedDigestCache::PinScope pin =
        soe_->PinChunks(touched_chunks);

    // Waive integrity material for every chunk whose covered fragment
    // ranges the SOE can already verify from its digest cache. A chunk
    // split across two runs (rare: an already-valid fragment between
    // them) is waived only when *every* covered range verifies bare.
    // Probe each (chunk, covered range) exactly once.
    struct ChunkClaim {
      uint64_t chunk;
      bool all_bare;
    };
    std::vector<ChunkClaim> claims;
    for (const ChunkCover& cover : covers) {
      const bool bare =
          soe_->CanVerifyBare(cover.chunk, cover.first, cover.last);
      if (!claims.empty() && claims.back().chunk == cover.chunk) {
        claims.back().all_bare &= bare;
      } else {
        claims.push_back({cover.chunk, bare});
      }
    }
    for (const ChunkClaim& claim : claims) {
      if (claim.all_bare) {
        req.bare_chunks.push_back(claim.chunk);
        continue;
      }
      // Not fully bare: trim the proof instead — declare every tree node
      // the SOE already holds so the terminal ships only the genuinely
      // new hashes (and no digest once the root is authenticated).
      crypto::BatchRequest::ChunkHint hint = soe_->CacheHintFor(claim.chunk);
      if (hint.known_nodes != 0 || hint.root_known) {
        req.hints.push_back(hint);
      }
    }

    const uint64_t t0 = NowNs();
    auto resp = source_->ReadBatch(req);
    fetch_ns_ += NowNs() - t0;
    CSXA_RETURN_NOT_OK(resp.status());
    wire_bytes_ += resp.value().WireBytes();
    ++requests_;
    segments_ += req.runs.size();
    bare_chunk_reads_ += req.bare_chunks.size();
    uint64_t batch_proof_bytes = 0;
    for (const crypto::RangeResponse::ChunkMaterial& mat :
         resp.value().chunks) {
      proof_hashes_shipped_ += mat.proof.size();
      digest_bytes_shipped_ += mat.encrypted_digest.size();
      batch_proof_bytes += mat.proof.size() * sizeof(crypto::Sha1Digest);
    }
    // Feed the realized proof overhead back: the planner's stream-all
    // fallback weighs it against the ciphertext skipping actually avoided.
    planner_.ReportProofBytes(batch_proof_bytes);
    CSXA_RETURN_NOT_OK(soe_->DecryptVerifiedBatch(req, resp.value(),
                                                  buffer_.data(),
                                                  buffer_.size()));
    for (const FragmentRun& run : runs) {
      for (uint64_t f = run.begin_frag; f < run.end_frag; ++f) {
        fragment_valid_[f] = true;
      }
      uint64_t b = run.begin_frag * fragment_size_;
      uint64_t e = std::min<uint64_t>(run.end_frag * fragment_size_,
                                      buffer_.size());
      if (e > b) bytes_fetched_ += e - b;
    }
  }
}

}  // namespace csxa::index
