#include "index/decoder.h"

#include <algorithm>

#include "common/bitstream.h"

namespace csxa::index {

Result<std::unique_ptr<DocumentNavigator>> DocumentNavigator::Open(
    const EncodedDocument* doc) {
  // Owner-side trusted path: the document never crossed the terminal, so
  // there is nothing to verify and no witness to demand.
  auto nav = std::unique_ptr<DocumentNavigator>(new DocumentNavigator());
  CSXA_RETURN_NOT_OK(nav->Init(doc->bytes.data(), doc->bytes.size(), nullptr));
  return nav;
}

Result<std::unique_ptr<DocumentNavigator>> DocumentNavigator::OpenBuffer(
    const common::VerifiedPlaintext& doc, Fetcher* fetcher) {
  auto nav = std::unique_ptr<DocumentNavigator>(new DocumentNavigator());
  CSXA_RETURN_NOT_OK(nav->Init(doc.data(), doc.size(), fetcher));
  return nav;
}

Status DocumentNavigator::Init(const uint8_t* data, size_t size,
                               Fetcher* fetcher) {
  data_ = data;
  fetcher_ = fetcher;
  // Materialize enough prefix to parse the header, growing on demand. Start
  // small: over-ensuring here defeats the lazy fetch path (skipped subtrees
  // must never be transferred), and headers are dominated by the tag
  // dictionary, which stays tiny. The prefetch is rounded up to the
  // fetcher's transfer granularity (fragment size): an unaligned prefetch
  // would end mid-fragment, and the follow-up read of the straddled
  // fragment would re-plan bytes the fetcher already holds.
  const size_t align =
      fetcher_ != nullptr
          ? static_cast<size_t>(std::max<uint64_t>(
                1, fetcher_->preferred_alignment()))
          : 1;
  auto round_up = [align, size](size_t n) {
    return std::min(size, (n + align - 1) / align * align);
  };
  size_t ensured = round_up(std::min<size_t>(size, 256));
  while (true) {
    if (fetcher_ != nullptr) CSXA_RETURN_NOT_OK(fetcher_->Ensure(0, ensured));
    auto info = ParseHeaderInfo(data, ensured);
    if (info.ok()) {
      variant_ = info.value().variant;
      dict_ = std::move(info.value().dictionary);
      stream_offset_ = info.value().stream_offset;
      root_size_bits_ = info.value().root_size_bits;
      break;
    }
    if (ensured == size) return info.status();
    ensured = round_up(ensured * 2);
  }
  size_bits_ = (size - stream_offset_) * 8;
  Touch(0, stream_offset_);
  return Status::OK();
}

void DocumentNavigator::Touch(uint64_t begin_byte, uint64_t end_byte) {
  if (begin_byte >= end_byte) return;
  if (!trace_.empty() && begin_byte >= trace_.back().begin &&
      begin_byte <= trace_.back().end) {
    trace_.back().end = std::max(trace_.back().end, end_byte);
    return;
  }
  trace_.push_back({begin_byte, end_byte});
}

Result<uint64_t> DocumentNavigator::ReadBits(int width) {
  if (width == 0) return uint64_t{0};
  if (pos_ + static_cast<size_t>(width) > size_bits_) {
    return Status::Corruption("encoded stream truncated");
  }
  uint64_t begin_byte = stream_offset_ + pos_ / 8;
  uint64_t end_byte = stream_offset_ + (pos_ + width + 7) / 8;
  if (fetcher_ != nullptr) {
    CSXA_RETURN_NOT_OK(fetcher_->Ensure(begin_byte, end_byte));
  }
  Touch(begin_byte, end_byte);
  const uint8_t* stream = data_ + stream_offset_;
  uint64_t v = 0;
  size_t p = pos_;
  for (int i = 0; i < width; ++i, ++p) {
    v = (v << 1) | ((stream[p >> 3] >> (7 - (p & 7))) & 1);
  }
  pos_ = p;
  bits_read_ += static_cast<uint64_t>(width);
  return v;
}

Status DocumentNavigator::ReadText(uint64_t len, std::string* out) {
  out->clear();
  out->reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    auto byte = ReadBits(8);
    if (!byte.ok()) return byte.status();
    out->push_back(static_cast<char>(byte.value()));
  }
  return Status::OK();
}

Result<uint64_t> DocumentNavigator::ReadTcVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    auto cont = ReadBits(1);
    if (!cont.ok()) return cont.status();
    auto group = ReadBits(4);
    if (!group.ok()) return group.status();
    v |= group.value() << shift;
    shift += 4;
    if (cont.value() == 0) break;
    if (shift > 60) return Status::Corruption("varint too long");
  }
  return v;
}

Result<DocumentNavigator::Item> DocumentNavigator::Next() {
  if (variant_ == Variant::kTc) return NextTc();
  return NextPacked();
}

Result<DocumentNavigator::Item> DocumentNavigator::NextPacked() {
  Item item;
  if (done_) {
    item.kind = ItemKind::kEnd;
    return item;
  }
  const size_t nt = dict_.size();

  if (!started_) {
    started_ = true;
    auto kind = ReadBits(1);
    if (!kind.ok()) return kind.status();
    if (kind.value() != 1) {
      return Status::Corruption("root node must be an element");
    }
    auto internal = ReadBits(1);
    if (!internal.ok()) return internal.status();
    auto tag = ReadBits(BitsFor(nt));
    if (!tag.ok()) return tag.status();
    if (tag.value() >= nt) return Status::Corruption("root tag out of range");
    Checkpoint::Frame frame;
    frame.tag = static_cast<xml::TagId>(tag.value());
    // Descendant-tag bitmap over the full dictionary.
    if (internal.value() != 0 &&
        (variant_ == Variant::kTcsb || variant_ == Variant::kTcsbr)) {
      for (xml::TagId t = 0; t < nt; ++t) {
        auto bit = ReadBits(1);
        if (!bit.ok()) return bit.status();
        if (bit.value()) frame.ctx.push_back(t);
      }
      item.has_desc = true;
      item.desc = frame.ctx;
    }
    frame.end_bit = pos_ + root_size_bits_;
    frame.width = BitWidth(root_size_bits_);
    if (frame.end_bit > size_bits_) {
      return Status::Corruption("root size exceeds stream");
    }
    frames_.push_back(std::move(frame));
    depth_ = 1;
    item.subtree_bits = root_size_bits_;
    item.subtree_begin_bit = pos_;
    item.kind = ItemKind::kOpen;
    item.depth = 1;
    item.tag_id = static_cast<xml::TagId>(tag.value());
    item.tag = dict_.Name(item.tag_id);
    return item;
  }

  Checkpoint::Frame& top = frames_.back();
  if (pos_ > top.end_bit) {
    return Status::Corruption("decoder overran subtree boundary");
  }
  if (pos_ == top.end_bit) {
    item.kind = ItemKind::kClose;
    item.depth = depth_;
    item.tag_id = top.tag;
    item.tag = dict_.Name(top.tag);
    frames_.pop_back();
    --depth_;
    if (frames_.empty()) done_ = true;
    return item;
  }

  auto kind = ReadBits(1);
  if (!kind.ok()) return kind.status();
  if (kind.value() == 0) {  // text node
    auto len = ReadBits(top.width);
    if (!len.ok()) return len.status();
    CSXA_RETURN_NOT_OK(ReadText(len.value(), &item.value));
    item.kind = ItemKind::kValue;
    item.depth = depth_ + 1;
    return item;
  }

  // Element node.
  auto internal = ReadBits(1);
  if (!internal.ok()) return internal.status();
  auto size = ReadBits(top.width);
  if (!size.ok()) return size.status();

  xml::TagId tag_id = 0;
  if (variant_ == Variant::kTcsbr) {
    auto idx = ReadBits(BitsFor(top.ctx.size()));
    if (!idx.ok()) return idx.status();
    if (idx.value() >= top.ctx.size()) {
      return Status::Corruption("tag index outside parent context");
    }
    tag_id = top.ctx[idx.value()];
  } else {
    auto tag = ReadBits(BitsFor(nt));
    if (!tag.ok()) return tag.status();
    if (tag.value() >= nt) return Status::Corruption("tag out of range");
    tag_id = static_cast<xml::TagId>(tag.value());
  }

  Checkpoint::Frame frame;
  frame.tag = tag_id;
  if (internal.value() != 0) {
    if (variant_ == Variant::kTcsb) {
      for (xml::TagId t = 0; t < nt; ++t) {
        auto bit = ReadBits(1);
        if (!bit.ok()) return bit.status();
        if (bit.value()) frame.ctx.push_back(t);
      }
      item.has_desc = true;
      item.desc = frame.ctx;
    } else if (variant_ == Variant::kTcsbr) {
      for (xml::TagId t : top.ctx) {
        auto bit = ReadBits(1);
        if (!bit.ok()) return bit.status();
        if (bit.value()) frame.ctx.push_back(t);
      }
      item.has_desc = true;
      item.desc = frame.ctx;
    }
  } else if (variant_ == Variant::kTcsb || variant_ == Variant::kTcsbr) {
    // Leaf element: DescTag is known to be empty.
    item.has_desc = true;
  }
  frame.end_bit = pos_ + size.value();
  frame.width = BitWidth(size.value());
  if (frame.end_bit > top.end_bit) {
    return Status::Corruption("child subtree exceeds parent extent");
  }
  frames_.push_back(std::move(frame));
  ++depth_;
  item.subtree_bits = size.value();
  item.subtree_begin_bit = pos_;
  item.kind = ItemKind::kOpen;
  item.depth = depth_;
  item.tag_id = tag_id;
  item.tag = dict_.Name(tag_id);
  return item;
}

Result<DocumentNavigator::Item> DocumentNavigator::NextTc() {
  Item item;
  if (done_) {
    item.kind = ItemKind::kEnd;
    return item;
  }
  auto marker = ReadBits(2);
  if (!marker.ok()) return marker.status();
  switch (marker.value()) {
    case 0b00: {  // end of children
      if (tc_stack_.empty()) {
        return Status::Corruption("unbalanced end-of-children marker");
      }
      item.kind = ItemKind::kClose;
      item.depth = depth_;
      item.tag_id = tc_stack_.back();
      item.tag = dict_.Name(item.tag_id);
      tc_stack_.pop_back();
      --depth_;
      if (tc_stack_.empty()) done_ = true;
      return item;
    }
    case 0b01: {  // element
      if (!started_) started_ = true;
      auto tag = ReadBits(BitsFor(dict_.size()));
      if (!tag.ok()) return tag.status();
      if (tag.value() >= dict_.size()) {
        return Status::Corruption("tag out of range");
      }
      tc_stack_.push_back(static_cast<xml::TagId>(tag.value()));
      ++depth_;
      item.kind = ItemKind::kOpen;
      item.depth = depth_;
      item.tag_id = tc_stack_.back();
      item.tag = dict_.Name(item.tag_id);
      return item;
    }
    case 0b10: {  // text
      auto len = ReadTcVarint();
      if (!len.ok()) return len.status();
      CSXA_RETURN_NOT_OK(ReadText(len.value(), &item.value));
      item.kind = ItemKind::kValue;
      item.depth = depth_ + 1;
      return item;
    }
    default:
      return Status::Corruption("invalid TC node marker");
  }
}

Status DocumentNavigator::SkipSubtree() {
  if (!CanSkip()) {
    return Status::NotSupported("TC streams cannot skip subtrees");
  }
  if (frames_.empty()) {
    return Status::InvalidArgument("no open element to skip");
  }
  pos_ = frames_.back().end_bit;
  return Status::OK();
}

DocumentNavigator::Checkpoint DocumentNavigator::Save() const {
  Checkpoint cp;
  cp.bit_pos = pos_;
  cp.depth = depth_;
  cp.started = started_;
  cp.frames = frames_;
  cp.tc_stack = tc_stack_;
  return cp;
}

Status DocumentNavigator::SeekTo(const Checkpoint& checkpoint) {
  if (checkpoint.bit_pos > size_bits_) {
    return Status::OutOfRange("checkpoint past end of stream");
  }
  for (const Checkpoint::Frame& f : checkpoint.frames) {
    if (f.end_bit > size_bits_) {
      return Status::OutOfRange("checkpoint frame past end of stream");
    }
  }
  pos_ = checkpoint.bit_pos;
  depth_ = checkpoint.depth;
  started_ = checkpoint.started;
  frames_ = checkpoint.frames;
  tc_stack_ = checkpoint.tc_stack;
  done_ = started_ && frames_.empty() && tc_stack_.empty();
  return Status::OK();
}

}  // namespace csxa::index
