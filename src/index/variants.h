#ifndef CSXA_INDEX_VARIANTS_H_
#define CSXA_INDEX_VARIANTS_H_

#include "common/status.h"
#include "index/encoded_document.h"
#include "xml/node.h"

namespace csxa::index {

/// Size decomposition of one encoding variant applied to one document —
/// the quantity Figure 8 plots as structure/text %.
struct SizeReport {
  Variant variant = Variant::kNc;
  uint64_t total_bytes = 0;
  uint64_t structure_bytes = 0;
  uint64_t text_bytes = 0;

  double StructTextPercent() const {
    return text_bytes == 0 ? 0.0
                           : 100.0 * static_cast<double>(structure_bytes) /
                                 static_cast<double>(text_bytes);
  }
};

/// Measures the size of `root` under any variant, including NC (raw XML).
Result<SizeReport> MeasureVariant(const xml::Node& root, Variant variant);

}  // namespace csxa::index

#endif  // CSXA_INDEX_VARIANTS_H_
