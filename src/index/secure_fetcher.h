#ifndef CSXA_INDEX_SECURE_FETCHER_H_
#define CSXA_INDEX_SECURE_FETCHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"
#include "index/fetch_planner.h"

namespace csxa::index {

/// Fetcher that materializes the encoded document lazily from the
/// untrusted terminal, in *batches*: each Ensure() asks the FetchPlanner
/// for the coalesced set of fragment runs worth pulling now (the missing
/// demand plus oracle-hinted look-ahead), issues them as one BatchRequest
/// round trip, has the SOE verify the response against per-chunk Merkle
/// material — or, for chunks whose digests the SOE already authenticated,
/// against the verified-digest cache with no material on the wire at all —
/// and decrypts the plaintext in place into the fixed buffer the
/// DocumentNavigator reads from.
///
/// Bytes the navigator skips over (pruned subtrees) are never transferred,
/// verified or decrypted — the property Section 5's cost model measures;
/// the skip oracle's HintExcluded() calls cancel them out of planned
/// batches before they are issued.
///
/// The terminal endpoint is a crypto::BatchSource, not necessarily one
/// immutable store: a server's document entry forwards to whatever store
/// version is current, so a session built for an older version fails
/// closed ("stale chunk digest") the moment its fetches cross a bump.
class SecureFetcher : public Fetcher {
 public:
  /// `source` and `soe` must outlive the fetcher. `layout`,
  /// `plaintext_size` and `ciphertext_size` describe the document version
  /// this fetcher was opened for.
  SecureFetcher(const crypto::BatchSource* source,
                const crypto::ChunkLayout& layout, uint64_t plaintext_size,
                uint64_t ciphertext_size, crypto::SoeDecryptor* soe,
                const PlannerOptions& planner_options = PlannerOptions());

  /// Convenience for the single-store case.
  SecureFetcher(const crypto::SecureDocumentStore* store,
                crypto::SoeDecryptor* soe,
                const PlannerOptions& planner_options = PlannerOptions())
      : SecureFetcher(store, store->layout(), store->plaintext_size(),
                      store->ciphertext().size(), soe, planner_options) {}

  /// Verified view of the plaintext_size()-byte document image; valid only
  /// where Ensure() succeeded. The image is written exclusively by
  /// DecryptVerifiedBatch (the mint site), which is what entitles the
  /// fetcher to hold a standing common::VerifiedPlaintext over it.
  const common::VerifiedPlaintext& verified_view() const { return view_; }
  size_t size() const { return buffer_.size(); }

  Status Ensure(uint64_t begin, uint64_t end) override;

  // Skip-oracle look-ahead (see FetchPlanner).
  void HintWanted(uint64_t begin, uint64_t end) override {
    planner_.HintWanted(begin, end);
  }
  void HintExcluded(uint64_t begin, uint64_t end) override {
    planner_.HintExcluded(begin, end);
  }
  void HintStreamAll() override { planner_.HintStreamAll(); }
  uint64_t preferred_alignment() const override { return fragment_size_; }

  /// Total bytes moved over the terminal->SOE channel so far.
  uint64_t wire_bytes() const { return wire_bytes_; }
  /// Plaintext bytes materialized so far (fragment granularity).
  uint64_t bytes_fetched() const override { return bytes_fetched_; }
  /// Number of batched round trips to the terminal.
  uint64_t requests() const { return requests_; }
  /// Contiguous ciphertext segments across all batches.
  uint64_t segments() const { return segments_; }
  /// Chunk reads served bare — ciphertext only, verified from the cache.
  uint64_t bare_chunk_reads() const { return bare_chunk_reads_; }
  /// Merkle sibling hashes the terminal actually shipped this serve — 0
  /// across a whole serve means every proof was trimmed away by the
  /// (shared) digest cache, the warm-serve ideal.
  uint64_t proof_hashes_shipped() const { return proof_hashes_shipped_; }
  /// Encrypted ChunkDigest bytes shipped this serve (DigestCipherBytes of
  /// the store's backend per cold chunk).
  uint64_t digest_bytes_shipped() const { return digest_bytes_shipped_; }
  /// Wall clock spent in terminal round trips (the simulated wire).
  uint64_t fetch_ns() const { return fetch_ns_; }
  /// Transport unreliability, attributed to this serve: attempts beyond
  /// the first and connections re-established since this fetcher opened.
  /// Deltas against the source's cumulative stats (a remote endpoint is
  /// shared across sessions); in-process sources report zeros.
  uint64_t retries() const {
    return source_->transport_stats().retries - transport_base_.retries;
  }
  uint64_t reconnects() const {
    return source_->transport_stats().reconnects - transport_base_.reconnects;
  }
  /// Per-request deadline the transport enforces (0 = none/in-process).
  uint64_t deadline_ns() const {
    return source_->transport_stats().deadline_ns;
  }
  const FetchPlanner::Stats& planner_stats() const {
    return planner_.stats();
  }

 private:
  const crypto::BatchSource* source_;
  crypto::SoeDecryptor* soe_;
  uint32_t fragment_size_;
  uint32_t chunk_size_;
  FetchPlanner planner_;
  std::vector<uint8_t> buffer_;
  /// Standing witness over buffer_ (declared after it: minted from its
  /// final, never-reallocated storage).
  common::VerifiedPlaintext view_;
  uint64_t padded_size_;
  std::vector<bool> fragment_valid_;
  uint64_t wire_bytes_ = 0;
  uint64_t bytes_fetched_ = 0;
  uint64_t requests_ = 0;
  uint64_t segments_ = 0;
  uint64_t bare_chunk_reads_ = 0;
  uint64_t proof_hashes_shipped_ = 0;
  uint64_t digest_bytes_shipped_ = 0;
  uint64_t fetch_ns_ = 0;
  /// Source transport stats at construction (delta base for this serve).
  crypto::BatchSource::TransportStats transport_base_;
};

}  // namespace csxa::index

#endif  // CSXA_INDEX_SECURE_FETCHER_H_
