#ifndef CSXA_INDEX_SECURE_FETCHER_H_
#define CSXA_INDEX_SECURE_FETCHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"

namespace csxa::index {

/// Fetcher that materializes the encoded document lazily from the
/// untrusted terminal: each Ensure() pulls the missing fragments as a
/// RangeResponse from the SecureDocumentStore, verifies them against the
/// Merkle chunk digests and decrypts them inside the SOE
/// (crypto::SoeDecryptor), then caches the plaintext in a fixed buffer the
/// DocumentNavigator reads from.
///
/// Bytes the navigator skips over (pruned subtrees) are never transferred,
/// verified or decrypted — the property Section 5's cost model measures.
class SecureFetcher : public Fetcher {
 public:
  /// `store` and `soe` must outlive the fetcher.
  SecureFetcher(const crypto::SecureDocumentStore* store,
                crypto::SoeDecryptor* soe);

  /// Buffer of plaintext_size() bytes; valid only where Ensure() succeeded.
  const uint8_t* data() const { return buffer_.data(); }
  size_t size() const { return buffer_.size(); }

  Status Ensure(uint64_t begin, uint64_t end) override;

  /// Total bytes moved over the terminal->SOE channel so far.
  uint64_t wire_bytes() const { return wire_bytes_; }
  /// Plaintext bytes materialized so far (fragment granularity).
  uint64_t bytes_fetched() const { return bytes_fetched_; }
  /// Number of ReadRange round trips to the terminal.
  uint64_t requests() const { return requests_; }

 private:
  const crypto::SecureDocumentStore* store_;
  crypto::SoeDecryptor* soe_;
  uint32_t fragment_size_;
  std::vector<uint8_t> buffer_;
  std::vector<bool> fragment_valid_;
  uint64_t wire_bytes_ = 0;
  uint64_t bytes_fetched_ = 0;
  uint64_t requests_ = 0;
};

}  // namespace csxa::index

#endif  // CSXA_INDEX_SECURE_FETCHER_H_
