#ifndef CSXA_INDEX_SECURE_FETCHER_H_
#define CSXA_INDEX_SECURE_FETCHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"
#include "index/fetch_planner.h"

namespace csxa::index {

/// Fetcher that materializes the encoded document lazily from the
/// untrusted terminal, in *batches*: each Ensure() asks the FetchPlanner
/// for the coalesced set of fragment runs worth pulling now (the missing
/// demand plus oracle-hinted look-ahead), issues them as one BatchRequest
/// round trip, has the SOE verify the response against per-chunk Merkle
/// material — or, for chunks whose digests the SOE already authenticated,
/// against the verified-digest cache with no material on the wire at all —
/// and decrypts the plaintext in place into the fixed buffer the
/// DocumentNavigator reads from.
///
/// Bytes the navigator skips over (pruned subtrees) are never transferred,
/// verified or decrypted — the property Section 5's cost model measures;
/// the skip oracle's HintExcluded() calls cancel them out of planned
/// batches before they are issued.
class SecureFetcher : public Fetcher {
 public:
  /// `store` and `soe` must outlive the fetcher.
  SecureFetcher(const crypto::SecureDocumentStore* store,
                crypto::SoeDecryptor* soe,
                const PlannerOptions& planner_options = PlannerOptions());

  /// Buffer of plaintext_size() bytes; valid only where Ensure() succeeded.
  const uint8_t* data() const { return buffer_.data(); }
  size_t size() const { return buffer_.size(); }

  Status Ensure(uint64_t begin, uint64_t end) override;

  // Skip-oracle look-ahead (see FetchPlanner).
  void HintWanted(uint64_t begin, uint64_t end) override {
    planner_.HintWanted(begin, end);
  }
  void HintExcluded(uint64_t begin, uint64_t end) override {
    planner_.HintExcluded(begin, end);
  }
  void HintStreamAll() override { planner_.HintStreamAll(); }
  uint64_t preferred_alignment() const override { return fragment_size_; }

  /// Total bytes moved over the terminal->SOE channel so far.
  uint64_t wire_bytes() const { return wire_bytes_; }
  /// Plaintext bytes materialized so far (fragment granularity).
  uint64_t bytes_fetched() const { return bytes_fetched_; }
  /// Number of batched round trips to the terminal.
  uint64_t requests() const { return requests_; }
  /// Contiguous ciphertext segments across all batches.
  uint64_t segments() const { return segments_; }
  /// Chunk reads served bare — ciphertext only, verified from the cache.
  uint64_t bare_chunk_reads() const { return bare_chunk_reads_; }
  /// Wall clock spent in terminal round trips (the simulated wire).
  uint64_t fetch_ns() const { return fetch_ns_; }
  const FetchPlanner::Stats& planner_stats() const {
    return planner_.stats();
  }

 private:
  const crypto::SecureDocumentStore* store_;
  crypto::SoeDecryptor* soe_;
  uint32_t fragment_size_;
  FetchPlanner planner_;
  std::vector<uint8_t> buffer_;
  std::vector<bool> fragment_valid_;
  uint64_t wire_bytes_ = 0;
  uint64_t bytes_fetched_ = 0;
  uint64_t requests_ = 0;
  uint64_t segments_ = 0;
  uint64_t bare_chunk_reads_ = 0;
  uint64_t fetch_ns_ = 0;
};

}  // namespace csxa::index

#endif  // CSXA_INDEX_SECURE_FETCHER_H_
