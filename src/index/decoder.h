#ifndef CSXA_INDEX_DECODER_H_
#define CSXA_INDEX_DECODER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tainted.h"
#include "index/encoded_document.h"
#include "xml/tag_dictionary.h"

namespace csxa::index {

/// Supplies the navigator with document bytes on demand. The in-memory
/// case needs no fetcher; the SOE pipeline plugs in one that pulls,
/// verifies and decrypts chunks from the untrusted terminal lazily, so
/// skipped regions are never transferred or decrypted.
class Fetcher {
 public:
  virtual ~Fetcher() = default;
  /// Ensures bytes [begin, end) of the encoded document are valid in the
  /// buffer the navigator reads from. Returns IntegrityError on tampering.
  virtual Status Ensure(uint64_t begin, uint64_t end) = 0;

  /// Look-ahead hints from the consumer's skip oracle — pure prefetch
  /// policy (they steer what a batching fetcher pulls per round trip,
  /// never what Ensure() guarantees). Default: ignored.
  /// [begin, end) will be streamed soon.
  virtual void HintWanted(uint64_t begin, uint64_t end) {
    (void)begin;
    (void)end;
  }
  /// [begin, end) was skipped — cancel it out of planned read-ahead.
  virtual void HintExcluded(uint64_t begin, uint64_t end) {
    (void)begin;
    (void)end;
  }
  /// The consumer will stream the entire document.
  virtual void HintStreamAll() {}
  /// Granularity the fetcher transfers at (fragment size); consumers
  /// round prefetches to it so a batched read never straddles a unit the
  /// fetcher already holds.
  virtual uint64_t preferred_alignment() const { return 1; }
  /// Plaintext bytes this fetcher has materialized so far; deltas around a
  /// deferral splice give the honest re-read cost (bytes actually pulled,
  /// not bytes re-decoded — boundary fragments already held are free).
  virtual uint64_t bytes_fetched() const { return 0; }
};

/// Byte interval [begin, end) of the encoded document that was actually
/// consumed (not skipped) — the access trace drives the cost model.
struct ByteInterval {
  uint64_t begin;
  uint64_t end;
};

/// Streaming decoder of an encoded document with skip support.
///
/// The navigator is the SOE-resident counterpart of the paper's SkipStack
/// (Section 4.1): it keeps, per open element, the decoded DescTag set and
/// the subtree extent, and decodes each element's metadata relative to its
/// parent's.
class DocumentNavigator {
 public:
  /// What Next() produced.
  enum class ItemKind { kOpen, kValue, kClose, kEnd };

  struct Item {
    ItemKind kind = ItemKind::kEnd;
    int depth = 0;              ///< Element depth (root = 1); value = +1.
    xml::TagId tag_id = 0;      ///< kOpen/kClose.
    std::string tag;            ///< kOpen/kClose.
    std::string value;          ///< kValue.
    /// kOpen only: DescTag set of the opened element (tags that can appear
    /// strictly below it) — has_desc=false for TC/TCS streams.
    bool has_desc = false;
    std::vector<xml::TagId> desc;
    /// kOpen only: remaining bits of the element's children region — what
    /// SkipSubtree() would jump over without fetching. 0 for TC streams
    /// (no size fields).
    uint64_t subtree_bits = 0;
    /// kOpen only: stream-relative bit offset where the children region
    /// starts (the position right after the element's header). With
    /// subtree_bits and stream_offset() this locates the subtree's bytes,
    /// so the pipeline can hint the fetch planner. 0 for TC streams.
    uint64_t subtree_begin_bit = 0;
  };

  /// Opens over a fully materialized document. `doc` must outlive the
  /// navigator.
  static Result<std::unique_ptr<DocumentNavigator>> Open(
      const EncodedDocument* doc);

  /// Opens over a verified document image whose contents materialize
  /// through `fetcher` (may be null). The buffer behind `doc` must stay
  /// valid and fixed-size; the fetcher fills it in place. Taking a
  /// common::VerifiedPlaintext (not raw bytes) is the typestate wall: a
  /// navigator can only ever read bytes the Merkle verification path
  /// vouched for.
  static Result<std::unique_ptr<DocumentNavigator>> OpenBuffer(
      const common::VerifiedPlaintext& doc, Fetcher* fetcher);

  /// Advances to the next event.
  Result<Item> Next();

  /// True if the stream supports subtree skipping (TCS and richer).
  bool CanSkip() const { return variant_ != Variant::kTc; }

  /// Skips the remaining children of the most recently opened element; the
  /// following Next() yields that element's kClose. Skipped bytes are never
  /// fetched or decoded.
  Status SkipSubtree();

  /// Immutable decode-state snapshot for pending-subtree re-reads
  /// (Section 5: parts left aside are read back later without re-analyzing
  /// anything else). Holds everything relative decoding needs to re-enter
  /// the stream at an element-open position: the bit offset, the open
  /// element path (tag + subtree extent + size-field width per frame, with
  /// the TCSBR relative-decoding tag context of each ancestor), and — for
  /// TC streams, which have no frames — the open-tag stack. Size and
  /// SeekTo() cost are O(depth), never O(document).
  struct Checkpoint {
    size_t bit_pos = 0;
    int depth = 0;
    bool started = false;
    struct Frame {
      xml::TagId tag = 0;
      uint64_t end_bit = 0;
      int width = 0;
      std::vector<xml::TagId> ctx;  // children decode context (TCSBR)
    };
    std::vector<Frame> frames;
    std::vector<xml::TagId> tc_stack;  // TC-only open-element tags
  };
  Checkpoint Save() const;

  /// Re-enters the stream at `checkpoint`, which must have been produced by
  /// Save() on a navigator over the same encoded document. The next Next()
  /// decodes exactly what it would have decoded there; nothing between the
  /// current position and the target is fetched or replayed.
  Status SeekTo(const Checkpoint& checkpoint);

  /// Total bits consumed by reads (skips excluded).
  uint64_t bits_read() const { return bits_read_; }
  /// Merged byte intervals actually read, in first-touch order.
  const std::vector<ByteInterval>& trace() const { return trace_; }

  const xml::TagDictionary& dictionary() const { return dict_; }
  Variant variant() const { return variant_; }
  /// Byte offset of the encoded event stream within the document image
  /// (everything before it is the header + tag dictionary). Converts
  /// stream-relative bit positions (Item::subtree_begin_bit, checkpoints)
  /// into document byte offsets for the fetch planner.
  size_t stream_offset() const { return stream_offset_; }

 private:
  DocumentNavigator() = default;

  Status Init(const uint8_t* data, size_t size, Fetcher* fetcher);
  Result<uint64_t> ReadBits(int width);
  Status ReadText(uint64_t len, std::string* out);
  Result<uint64_t> ReadTcVarint();
  void Touch(uint64_t begin_byte, uint64_t end_byte);

  Result<Item> NextPacked();
  Result<Item> NextTc();

  const uint8_t* data_ = nullptr;
  size_t size_bits_ = 0;
  Fetcher* fetcher_ = nullptr;
  Variant variant_ = Variant::kTcsbr;
  xml::TagDictionary dict_;
  size_t stream_offset_ = 0;  // bytes
  uint64_t root_size_bits_ = 0;

  size_t pos_ = 0;  // absolute bit position, relative to stream start
  bool started_ = false;
  bool done_ = false;
  int depth_ = 0;
  std::vector<Checkpoint::Frame> frames_;
  std::vector<xml::TagId> tc_stack_;  // TC-only open-element tags

  uint64_t bits_read_ = 0;
  std::vector<ByteInterval> trace_;
};

}  // namespace csxa::index

#endif  // CSXA_INDEX_DECODER_H_
