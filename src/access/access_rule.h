#ifndef CSXA_ACCESS_ACCESS_RULE_H_
#define CSXA_ACCESS_ACCESS_RULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"

namespace csxa::access {

/// Sign of an access rule (Section 3.1): positive rules grant, negative
/// rules deny.
enum class Sign {
  kPermit,
  kDeny,
};

const char* SignName(Sign sign);

/// One access rule of the paper's model: a signed XPath expression in
/// XP{[],*,//} attached to a subject (user, role or user group). A rule
/// applies to every node its expression selects and propagates to the
/// subtrees of those nodes.
struct AccessRule {
  Sign sign = Sign::kDeny;
  std::string subject;  ///< Empty = applies to every subject.
  xpath::Path path;

  /// "+ subject: /a//b" (subject omitted when empty).
  std::string ToString() const;
};

/// Parses one rule from the textual form used by rule files and tests:
///
///   rule    := sign [ subject ':' ] path
///   sign    := '+' | '-'
///
/// e.g. `+ doctor: /Folder//MedActs` or `- /Folder/Admin`.
Result<AccessRule> ParseRule(std::string_view text);

/// Parses a newline-separated rule list; '#' starts a comment line.
Result<std::vector<AccessRule>> ParseRuleList(std::string_view text);

/// Rules applicable to `subject`: rules with a matching subject plus rules
/// with no subject.
std::vector<AccessRule> RulesForSubject(const std::vector<AccessRule>& rules,
                                        const std::string& subject);

/// Static rule-set minimization (Section 3.3): drops every rule whose
/// expression is provably contained (xpath::Contains) in the expression of
/// another rule with the same sign and subject.
///
/// Soundness: specificity in the conflict-resolution policy is measured by
/// the *depth of the target node*, not by the shape of the rule. If
/// Contains(outer, inner) then every node targeted by `inner` is also
/// targeted by `outer` — at the same node, hence at the same specificity
/// and with the same sign — so removing `inner` can never change a
/// decision, whatever other rules exist.
///
/// Containment is tested with the conservative homomorphism check, so this
/// only removes rules whose redundancy is provable. Mutually contained
/// (equivalent) rules keep the earliest occurrence.
std::vector<AccessRule> EliminateRedundantRules(std::vector<AccessRule> rules);

}  // namespace csxa::access

#endif  // CSXA_ACCESS_ACCESS_RULE_H_
