#include "access/rule_evaluator.h"

#include <algorithm>
#include <utility>

namespace csxa::access {

namespace internal {

PathMatcher::PathMatcher(const std::vector<xpath::Step>* steps, int base_depth)
    : steps_(steps), base_depth_(base_depth) {
  Frame root;
  TokenState init;
  if (!steps_->empty() && (*steps_)[0].axis == xpath::Axis::kDescendant) {
    root.desc.push_back(std::move(init));
  } else {
    root.exact.push_back(std::move(init));
  }
  stack_.push_back(std::move(root));
  live_ = 1;
}

void PathMatcher::OnOpen(const std::string& tag, int depth,
                         RuleEvaluatorContext* ctx,
                         std::vector<CondSet>* full_matches) {
  // Self-align on the context node: events at or above base_depth_ (or
  // out of step with the frames) are outside this matcher's subtree.
  if (depth != base_depth_ + static_cast<int>(live_)) return;
  if (stack_.size() == live_) stack_.emplace_back();
  const Frame& top = stack_[live_ - 1];
  Frame& next = stack_[live_];
  // Tokens stay alive below a descendant-axis step for the whole subtree.
  // assign() into the pooled frame reuses its retained capacity.
  next.exact.clear();
  next.desc.assign(top.desc.begin(), top.desc.end());

  auto advance = [&](const TokenState& t) {
    const xpath::Step& step = (*steps_)[t.next_step];
    if (!step.Matches(tag)) return;
    TokenState adv;
    adv.next_step = t.next_step + 1;
    adv.conds = t.conds;
    for (const xpath::Predicate& pred : step.predicates) {
      adv.conds.push_back(ctx->Spawn(&pred, depth));
    }
    if (adv.next_step == steps_->size()) {
      full_matches->push_back(std::move(adv.conds));
      return;
    }
    // Each token lives in exactly one set: `exact` feeds child-axis
    // advancement at the next level only, `desc` survives down the
    // whole subtree.
    if ((*steps_)[adv.next_step].axis == xpath::Axis::kDescendant) {
      next.desc.push_back(std::move(adv));
    } else {
      next.exact.push_back(std::move(adv));
    }
  };

  // Child-axis continuations only extend paths that end exactly at the
  // parent; descendant-axis continuations fire from any ancestor.
  for (const TokenState& t : top.exact) {
    if ((*steps_)[t.next_step].axis == xpath::Axis::kChild) advance(t);
  }
  // advance() appends to next.desc while this walks top.desc — distinct
  // pooled frames, so no iterator is invalidated.
  for (const TokenState& t : top.desc) advance(t);

  ++live_;
}

void PathMatcher::OnClose(int depth) {
  if (live_ > 1 && depth == base_depth_ + static_cast<int>(live_) - 1) {
    --live_;  // The popped frame parks in the pool, capacity intact.
  }
}

bool PathMatcher::CanCompleteWithin(const SubtreeFacts& facts) const {
  const Frame& top = stack_[live_ - 1];
  if (top.exact.empty() && top.desc.empty()) return false;
  // Any full match below needs at least one more element open.
  if (facts.tags_known && facts.no_elements_below) return false;

  auto feasible = [&](const TokenState& t) {
    if (!facts.tags_known) return true;  // No bitmap: cannot rule it out.
    for (size_t s = t.next_step; s < steps_->size(); ++s) {
      const xpath::Step& step = (*steps_)[s];
      if (!step.wildcard && !facts.may_contain(step.name)) return false;
    }
    return true;
  };
  for (const TokenState& t : top.exact) {
    if (feasible(t)) return true;
  }
  for (const TokenState& t : top.desc) {
    if (feasible(t)) return true;
  }
  return false;
}

}  // namespace internal

using internal::CondSet;
using internal::PredInstance;

// ---------------------------------------------------------------------------
// Evaluator internals
// ---------------------------------------------------------------------------

struct RuleEvaluator::NodeRec {
  /// A rule targeting this node or one of its ancestors (propagation).
  struct Hit {
    const AccessRule* rule = nullptr;
    int target_depth = 0;  ///< Depth of the target node = specificity.
    CondSet conds;         ///< Pending predicates the match traversed.
  };

  int depth = 0;
  std::shared_ptr<NodeRec> parent;
  /// Hits whose target is this very node; Decide() walks the parent chain
  /// for the inherited (propagated) ones.
  std::vector<Hit> hits;

  bool closed = false;
  size_t open_qpos = 0;
  size_t close_qpos = 0;  ///< Valid once closed.

  /// Undecided buffered events strictly inside (open_qpos, close_qpos).
  /// Maintained incrementally so "is this subtree fully decided" — the
  /// gate for pruning a denied element — is O(1) instead of a queue scan.
  size_t undecided_inside = 0;

  enum class OpenState { kUndecided, kEmit, kDrop };
  OpenState open_state = OpenState::kUndecided;

  /// ≥ 0 when the element's subtree was skipped unseen under the deferral
  /// strategy: the id the driver re-reads the subtree by if the open is
  /// eventually emitted.
  int deferral_id = -1;
};

struct RuleEvaluator::OutEvent {
  using S = RuleEvaluator::EventStatus;
  xml::Event ev;
  int depth = 0;
  S status = S::kUndecided;
  /// Open/close: the element itself. Value: the parent element.
  std::shared_ptr<NodeRec> node;

  /// Pending instances this event already registered a watcher with, so
  /// re-examinations (and several hits blocked on one instance) never
  /// subscribe the same (event, instance) pair twice.
  internal::CondSet subscribed;

  /// First node whose subtree strictly contains this event: the parent
  /// element for open/close events, the carrying element for values.
  NodeRec* EnclosingNode() const {
    if (node == nullptr) return nullptr;
    return ev.kind == xml::EventKind::kValue ? node.get() : node->parent.get();
  }
};

RuleEvaluator::RuleEvaluator(std::vector<AccessRule> rules,
                             xml::EventHandler* out, Options options)
    : rules_(std::move(rules)), out_(out), options_(options) {
  matchers_.reserve(rules_.size());
  for (const AccessRule& r : rules_) {
    matchers_.push_back(std::make_unique<internal::PathMatcher>(&r.path.steps,
                                                                /*base=*/0));
  }
}

RuleEvaluator::~RuleEvaluator() = default;

std::shared_ptr<PredInstance> RuleEvaluator::Spawn(const xpath::Predicate* pred,
                                                   int depth) {
  // Several tokens crossing the same predicated step during one open event
  // share one instance (the predicate is relative to the same node).
  for (const auto& [memo_pred, inst] : spawn_memo_) {
    if (memo_pred == pred) return inst;
  }
  auto inst = std::make_shared<PredInstance>(pred, depth);
  instances_.push_back(inst);
  spawn_memo_.emplace_back(pred, inst);
  ++stats_.predicates_spawned;
  return inst;
}

RuleEvaluator::OutEvent& RuleEvaluator::EventAt(size_t qpos) {
  return queue_[qpos - queue_base_];
}

namespace {

/// Applicability of a hit / candidate given its pending-predicate set.
enum class CondState { kTrue, kFalse, kPending };

CondState EvalConds(const CondSet& conds, CondSet* blockers = nullptr) {
  CondState st = CondState::kTrue;
  for (const auto& c : conds) {
    if (c->state == PredInstance::State::kFalse) return CondState::kFalse;
    if (c->state == PredInstance::State::kPending) {
      st = CondState::kPending;
      if (blockers != nullptr) blockers->push_back(c);
    }
  }
  return st;
}

}  // namespace

Decision RuleEvaluator::Decide(const NodeRec& node, CondSet* blockers) const {
  // Applicable hits are the node's own plus every ancestor's
  // (propagation), reached by walking the parent chain rather than copying
  // hit vectors into each node.
  //
  // Most specific target takes precedence: walk distinct target depths
  // from the deepest. At one depth: a resolved denial wins (denial takes
  // precedence); a resolved permission wins unless a pending denial at the
  // same depth could still override it; any other pending hit leaves the
  // whole decision open. A depth whose hits all turned false is skipped.
  //
  // Stability: hit sets are fixed once a node is open and predicate states
  // only move kPending -> {kTrue, kFalse}, so a kDeny or kPermit returned
  // here is irrevocable — the property the skip oracle builds on.
  std::vector<int>& depths = depths_scratch_;
  depths.clear();
  for (const NodeRec* n = &node; n != nullptr; n = n->parent.get()) {
    for (const auto& h : n->hits) depths.push_back(h.target_depth);
  }
  std::sort(depths.rbegin(), depths.rend());
  depths.erase(std::unique(depths.begin(), depths.end()), depths.end());

  for (int level : depths) {
    bool resolved_neg = false, resolved_pos = false;
    bool pending = false, pending_neg = false;
    for (const NodeRec* n = &node; n != nullptr; n = n->parent.get()) {
      for (const auto& h : n->hits) {
        if (h.target_depth != level) continue;
        switch (EvalConds(h.conds, blockers)) {
          case CondState::kFalse:
            break;
          case CondState::kTrue:
            (h.rule->sign == Sign::kDeny ? resolved_neg : resolved_pos) =
                true;
            break;
          case CondState::kPending:
            pending = true;
            if (h.rule->sign == Sign::kDeny) pending_neg = true;
            break;
        }
      }
    }
    if (resolved_neg) return Decision::kDeny;
    if (resolved_pos) {
      return pending_neg ? Decision::kPending : Decision::kPermit;
    }
    if (pending) return Decision::kPending;
  }
  return Decision::kDeny;  // Closed-world default.
}

SkipDecision RuleEvaluator::SubtreeDecision(const SubtreeFacts& facts,
                                            int depth) {
  ++stats_.skip_checks;
  if (element_stack_.empty() || element_stack_.back()->depth != depth) {
    return SkipDecision::kDescend;  // Misaligned caller: never unsafe.
  }
  // 1. A permitted element must stream its content; denied and pending
  //    elements are skip/defer candidates, gated below.
  const Decision decision = Decide(*element_stack_.back());
  if (decision == Decision::kPermit) return SkipDecision::kDescend;
  // 2. A pending predicate gathering evidence in this subtree governs
  //    buffered events elsewhere (e.g. already-seen siblings) — and, for a
  //    pending element, possibly the element itself. A live value
  //    collection always forces a descent — text nodes are invisible to
  //    the descendant-tag bitmap.
  for (const auto& inst : instances_) {
    if (inst->state != PredInstance::State::kPending) continue;
    if (!inst->collections.empty()) return SkipDecision::kDescend;
    if (inst->matcher.CanCompleteWithin(facts)) return SkipDecision::kDescend;
  }
  if (decision == Decision::kDeny) {
    // 3. A deeper positive target inside the subtree would override the
    //    denial (most-specific-takes-precedence). Negative rules cannot
    //    change anything below an irrevocable deny: their hits and spawned
    //    predicates would only govern nodes of this — entirely denied —
    //    subtree.
    for (size_t r = 0; r < rules_.size(); ++r) {
      if (rules_[r].sign != Sign::kPermit) continue;
      if (matchers_[r]->CanCompleteWithin(facts)) {
        return SkipDecision::kDescend;
      }
    }
    ++stats_.skips_advised;
    return SkipDecision::kSkip;
  }
  // decision == kPending: the element hinges on predicates whose evidence
  // — by step 2 — lies entirely outside this subtree. The budget is a
  // *global* bound, so the subtree is charged against what remains of it
  // after the bytes already buffered (many small pending siblings must not
  // accumulate past the budget). Within the remainder the classic strategy
  // (stream and buffer until the predicates resolve) is cheaper; beyond
  // it, deferral is offered if the subtree provably cannot host a rule
  // match of *either* sign: a granted deferral is re-read and emitted
  // verbatim, so no deeper target may re-decide any inside node.
  const uint64_t remaining =
      options_.pending_buffer_budget > buffered_bytes_
          ? options_.pending_buffer_budget - buffered_bytes_
          : 0;
  if (facts.subtree_bytes <= remaining) {
    return SkipDecision::kDescend;
  }
  for (size_t r = 0; r < rules_.size(); ++r) {
    if (matchers_[r]->CanCompleteWithin(facts)) return SkipDecision::kDescend;
  }
  ++stats_.defers_advised;
  return SkipDecision::kDefer;
}

bool RuleEvaluator::WholeSubtreeAuthorized(const SubtreeFacts& facts,
                                           int depth) {
  if (element_stack_.empty() || element_stack_.back()->depth != depth) {
    return false;  // Misaligned caller: never promise.
  }
  // 1. The element itself must be irrevocably permitted (kPermit is stable
  //    — see Decide()); pending or denied elements stream selectively.
  if (Decide(*element_stack_.back()) != Decision::kPermit) return false;
  // 2. No pending predicate may gather evidence inside: a value collection
  //    or a possible predicate-path match below could flip decisions of
  //    buffered events — the subtree would still stream, but a conservative
  //    promise is worthless if its conditions ever need revisiting.
  for (const auto& inst : instances_) {
    if (inst->state != PredInstance::State::kPending) continue;
    if (!inst->collections.empty()) return false;
    if (inst->matcher.CanCompleteWithin(facts)) return false;
  }
  // 3. No rule automaton of either sign can reach a target inside: a
  //    deeper positive target is harmless (already permitted) but could
  //    spawn pending predicates; a deeper negative target would deny — and
  //    therefore skip — a descendant subtree. Either way the "streams in
  //    full" promise would break.
  for (const auto& matcher : matchers_) {
    if (matcher->CanCompleteWithin(facts)) return false;
  }
  ++stats_.full_grants_advised;
  return true;
}

size_t RuleEvaluator::RegisterDeferral() {
  const size_t id = stats_.subtrees_deferred++;
  element_stack_.back()->deferral_id = static_cast<int>(id);
  return id;
}

void RuleEvaluator::MarkStatus(OutEvent& e, EventStatus status) {
  // Transition an event out of kUndecided exactly once, keeping every
  // enclosing element's undecided_inside count in sync.
  e.status = status;
  for (NodeRec* n = e.EnclosingNode(); n != nullptr; n = n->parent.get()) {
    --n->undecided_inside;
  }
}

void RuleEvaluator::ForceEmit(NodeRec* node) {
  // Ancestors of a permitted node stay visible (tags only) to preserve the
  // structure of the authorized view.
  while (node != nullptr &&
         node->open_state != NodeRec::OpenState::kEmit) {
    node->open_state = NodeRec::OpenState::kEmit;
    OutEvent& open_ev = EventAt(node->open_qpos);
    if (open_ev.status == EventStatus::kUndecided) {
      MarkStatus(open_ev, EventStatus::kEmit);
    }
    if (node->closed) {
      OutEvent& close_ev = EventAt(node->close_qpos);
      if (close_ev.status == EventStatus::kUndecided) {
        MarkStatus(close_ev, EventStatus::kEmit);
      }
    }
    node = node->parent.get();
  }
}

void RuleEvaluator::SettleInstance(const std::shared_ptr<PredInstance>& inst,
                                   PredInstance::State state) {
  inst->state = state;
  wave_.push_back(inst);
}

void RuleEvaluator::SettleCandidates() {
  // Pending-predicate fixpoint: an instance turns true as soon as one of
  // its match candidates has all nested conditions true.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& inst : instances_) {
      if (inst->state != PredInstance::State::kPending) continue;
      auto& cands = inst->candidates;
      for (auto it = cands.begin(); it != cands.end();) {
        CondState st = EvalConds(*it);
        if (st == CondState::kTrue) {
          SettleInstance(inst, PredInstance::State::kTrue);
          changed = true;
          break;
        }
        it = st == CondState::kFalse ? cands.erase(it) : ++it;
      }
    }
  }
}

bool RuleEvaluator::ResolveEvent(size_t qpos) {
  OutEvent& e = EventAt(qpos);
  if (e.status != EventStatus::kUndecided) return false;
  // Events that stay undecided because of pending predicates subscribe to
  // exactly the blocking instances; they are re-examined when (and only
  // when) one of those resolves. `blockers` may name one instance several
  // times (identical token spawns at the same step share an instance, so
  // several hits can be blocked on it) and a re-examination may rediscover
  // instances the event already watches — each (event, instance) pair
  // registers exactly once.
  CondSet blockers;
  auto subscribe = [&]() {
    for (const auto& b : blockers) {
      if (b->state != PredInstance::State::kPending) continue;
      if (std::find(e.subscribed.begin(), e.subscribed.end(), b) !=
          e.subscribed.end()) {
        continue;
      }
      e.subscribed.push_back(b);
      b->watchers.push_back(qpos);
      ++stats_.watcher_subscriptions;
    }
  };
  switch (e.ev.kind) {
    case xml::EventKind::kValue: {
      // Text is disclosed iff its parent element is permitted; denied
      // ancestors of permitted nodes expose tags, never text.
      Decision d = e.node ? Decide(*e.node, &blockers) : Decision::kDeny;
      if (d == Decision::kPermit) {
        MarkStatus(e, EventStatus::kEmit);
        return true;
      }
      if (d == Decision::kDeny) {
        MarkStatus(e, EventStatus::kDrop);
        return true;
      }
      subscribe();
      return false;
    }
    case xml::EventKind::kOpen: {
      Decision d = Decide(*e.node, &blockers);
      if (d == Decision::kPermit) {
        ForceEmit(e.node.get());
        return true;
      }
      if (d == Decision::kPending) {
        subscribe();
        return false;
      }
      if (e.node->closed && e.node->undecided_inside == 0) {
        // Fully decided subtree with nothing emitted: prune the element
        // altogether. (Not yet closed / not yet decided inside: retried at
        // close time or by TryPruneEnclosing when the last inner event
        // resolves.)
        e.node->open_state = NodeRec::OpenState::kDrop;
        MarkStatus(e, EventStatus::kDrop);
        MarkStatus(EventAt(e.node->close_qpos), EventStatus::kDrop);
        return true;
      }
      return false;
    }
    case xml::EventKind::kClose: {
      if (e.node->open_state == NodeRec::OpenState::kEmit) {
        MarkStatus(e, EventStatus::kEmit);
        return true;
      }
      return false;
    }
  }
  return false;
}

void RuleEvaluator::TryPruneEnclosing(NodeRec* node) {
  // An inner event just resolved: closed, denied elements up the chain may
  // now have fully decided subtrees and become prunable. Each successful
  // prune decides two more events, possibly unlocking the next ancestor.
  while (node != nullptr && node->closed &&
         node->open_state == NodeRec::OpenState::kUndecided &&
         node->undecided_inside == 0) {
    if (!ResolveEvent(node->open_qpos)) break;
    node = node->parent.get();
  }
}

void RuleEvaluator::DrainWave() {
  while (!wave_.empty()) {
    std::shared_ptr<PredInstance> inst = std::move(wave_.back());
    wave_.pop_back();
    std::vector<size_t> watchers = std::move(inst->watchers);
    inst->watchers.clear();
    for (size_t qpos : watchers) {
      if (qpos < queue_base_) continue;  // Already flushed.
      NodeRec* enclosing = EventAt(qpos).EnclosingNode();
      if (ResolveEvent(qpos)) TryPruneEnclosing(enclosing);
    }
    // A resolution may make other instances' candidates decidable.
    SettleCandidates();
  }
}

void RuleEvaluator::Resolve() {
  SettleCandidates();
  // Tail path: the newly queued event — plus, when it is a close, the
  // matching open: a denied element becomes prunable exactly when it
  // closes, and that check lives on its open event.
  if (!queue_.empty()) {
    OutEvent& last = queue_.back();
    if (last.ev.kind == xml::EventKind::kClose &&
        last.node->open_state == NodeRec::OpenState::kUndecided) {
      ResolveEvent(last.node->open_qpos);
    }
    ResolveEvent(queue_base_ + queue_.size() - 1);
  }
  DrainWave();
}

void RuleEvaluator::Flush() {
  stats_.peak_buffered = std::max(stats_.peak_buffered, queue_.size());
  stats_.peak_buffered_bytes =
      std::max(stats_.peak_buffered_bytes, buffered_bytes_);
  while (!queue_.empty() &&
         queue_.front().status != EventStatus::kUndecided) {
    OutEvent& e = queue_.front();
    const bool deferred_open =
        e.ev.kind == xml::EventKind::kOpen && e.node->deferral_id >= 0;
    if (e.status == EventStatus::kEmit) {
      ++stats_.events_emitted;
      switch (e.ev.kind) {
        case xml::EventKind::kOpen:
          out_->OnOpen(e.ev.text, e.depth);
          break;
        case xml::EventKind::kValue:
          out_->OnValue(e.ev.text, e.depth);
          break;
        case xml::EventKind::kClose:
          out_->OnClose(e.ev.text, e.depth);
          break;
      }
      if (deferred_open) {
        // The deferred element is granted after all: its (never-streamed)
        // subtree belongs right here, between the open just forwarded and
        // the close that follows — the splice point of the driver's
        // checkpoint re-read.
        ++stats_.deferrals_granted;
        if (deferral_listener_) {
          deferral_listener_(static_cast<size_t>(e.node->deferral_id));
        }
      }
    } else {
      ++stats_.events_pruned;
      if (deferred_open) ++stats_.deferrals_denied;
    }
    buffered_bytes_ -= e.ev.text.size();
    queue_.pop_front();
    ++queue_base_;
  }
}

void RuleEvaluator::OnOpen(const std::string& tag, int depth) {
  ++stats_.events_in;
  spawn_memo_.clear();

  // 1. Pending predicates watch the subtree of the element they decorate.
  //    Instances spawned during this very event have root_depth == depth
  //    and are skipped by the guard.
  for (size_t i = 0; i < instances_.size(); ++i) {
    auto inst = instances_[i];
    if (inst->state != PredInstance::State::kPending) continue;
    if (depth <= inst->root_depth) continue;
    std::vector<CondSet>& fulls = fulls_scratch_;
    fulls.clear();
    inst->matcher.OnOpen(tag, depth, this, &fulls);
    for (CondSet& conds : fulls) {
      if (inst->pred->op == xpath::CompareOp::kExists) {
        if (EvalConds(conds) == CondState::kTrue) {
          SettleInstance(inst, PredInstance::State::kTrue);
        } else {
          inst->candidates.push_back(std::move(conds));
        }
      } else {
        // Comparison predicates need the node's string value, complete
        // only when the node closes.
        inst->collections.push_back({depth, std::string(), std::move(conds)});
      }
    }
  }

  // 2. Rule automata.
  std::vector<NodeRec::Hit> own_hits;
  for (size_t r = 0; r < rules_.size(); ++r) {
    std::vector<CondSet>& fulls = fulls_scratch_;
    fulls.clear();
    matchers_[r]->OnOpen(tag, depth, this, &fulls);
    for (CondSet& conds : fulls) {
      own_hits.push_back({&rules_[r], depth, std::move(conds)});
      ++stats_.rule_hits;
    }
  }

  // 3. Node record. Only hits targeting this node are stored; Decide()
  //    reaches the propagated ones through the parent chain.
  auto node = std::make_shared<NodeRec>();
  node->depth = depth;
  node->parent = element_stack_.empty() ? nullptr : element_stack_.back();
  node->hits = std::move(own_hits);
  node->open_qpos = queue_base_ + queue_.size();
  for (NodeRec* n = node->parent.get(); n != nullptr; n = n->parent.get()) {
    ++n->undecided_inside;
  }
  element_stack_.push_back(node);
  queue_.push_back({xml::Event::Open(tag), depth, EventStatus::kUndecided,
                    std::move(node), {}});
  buffered_bytes_ += tag.size();

  Resolve();
  Flush();
}

void RuleEvaluator::OnValue(const std::string& value, int depth) {
  ++stats_.events_in;

  // Feed string-value collections of pending comparison predicates.
  for (auto& inst : instances_) {
    if (inst->state != PredInstance::State::kPending) continue;
    for (auto& coll : inst->collections) {
      if (depth > coll.node_depth) coll.value += value;
    }
  }

  std::shared_ptr<NodeRec> parent =
      element_stack_.empty() ? nullptr : element_stack_.back();
  for (NodeRec* n = parent.get(); n != nullptr; n = n->parent.get()) {
    ++n->undecided_inside;
  }
  queue_.push_back({xml::Event::Value(value), depth, EventStatus::kUndecided,
                    std::move(parent), {}});
  buffered_bytes_ += value.size();

  Resolve();
  Flush();
}

void RuleEvaluator::OnClose(const std::string& tag, int depth) {
  ++stats_.events_in;
  if (element_stack_.empty()) return;  // Malformed stream; Finish() reports.

  // 1. Predicate lifecycle at this close: finish value collections of
  //    nodes closing now, pop matcher frames, and resolve instances whose
  //    root closes (no satisfying match by now means false).
  for (size_t i = 0; i < instances_.size(); ++i) {
    auto inst = instances_[i];
    if (inst->state != PredInstance::State::kPending) continue;
    if (depth > inst->root_depth) {
      inst->matcher.OnClose(depth);
      auto& colls = inst->collections;
      for (auto it = colls.begin(); it != colls.end();) {
        if (it->node_depth != depth) {
          ++it;
          continue;
        }
        if (xpath::EvalCompare(inst->pred->op, it->value,
                               inst->pred->literal)) {
          if (EvalConds(it->conds) == CondState::kTrue) {
            SettleInstance(inst, PredInstance::State::kTrue);
          } else {
            inst->candidates.push_back(std::move(it->conds));
          }
        }
        it = colls.erase(it);
      }
    }
  }

  for (auto& matcher : matchers_) matcher->OnClose(depth);

  // Give nested resolutions a chance to settle candidates before roots
  // closing at this depth are forced false (no satisfying match by now
  // means the predicate failed).
  SettleCandidates();
  for (auto& inst : instances_) {
    if (inst->state != PredInstance::State::kPending) continue;
    if (inst->root_depth == depth) {
      SettleInstance(inst, PredInstance::State::kFalse);
    }
  }

  // 2. Close the element.
  std::shared_ptr<NodeRec> node = element_stack_.back();
  element_stack_.pop_back();
  node->closed = true;
  node->close_qpos = queue_base_ + queue_.size();
  for (NodeRec* n = node->parent.get(); n != nullptr; n = n->parent.get()) {
    ++n->undecided_inside;
  }
  queue_.push_back({xml::Event::Close(tag), depth, EventStatus::kUndecided,
                    node, {}});
  buffered_bytes_ += tag.size();

  Resolve();
  Flush();

  // Drop settled instances (hits keep their own shared_ptr references).
  instances_.erase(
      std::remove_if(instances_.begin(), instances_.end(),
                     [](const auto& inst) {
                       return inst->state != PredInstance::State::kPending;
                     }),
      instances_.end());
}

Status RuleEvaluator::Finish() {
  if (!element_stack_.empty()) {
    return Status::Internal("event stream ended with open elements");
  }
  Resolve();
  Flush();
  if (!queue_.empty()) {
    return Status::Internal("unresolved events buffered at end of stream");
  }
  return Status::OK();
}

}  // namespace csxa::access
