#include "access/access_rule.h"

#include <algorithm>

#include "xpath/containment.h"
#include "xpath/parser.h"

namespace csxa::access {

const char* SignName(Sign sign) {
  return sign == Sign::kPermit ? "+" : "-";
}

std::string AccessRule::ToString() const {
  std::string out = SignName(sign);
  out.push_back(' ');
  if (!subject.empty()) {
    out += subject;
    out += ": ";
  }
  out += path.ToString();
  return out;
}

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<AccessRule> ParseRule(std::string_view text) {
  std::string_view s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("empty access rule");
  AccessRule rule;
  if (s.front() == '+') {
    rule.sign = Sign::kPermit;
  } else if (s.front() == '-') {
    rule.sign = Sign::kDeny;
  } else {
    return Status::InvalidArgument("access rule must start with '+' or '-': " +
                                   std::string(text));
  }
  s = Trim(s.substr(1));
  // A ':' before the first '/' separates the subject from the path.
  size_t slash = s.find('/');
  size_t colon = s.find(':');
  if (colon != std::string_view::npos &&
      (slash == std::string_view::npos || colon < slash)) {
    rule.subject = std::string(Trim(s.substr(0, colon)));
    s = Trim(s.substr(colon + 1));
  }
  CSXA_ASSIGN_OR_RETURN(rule.path, xpath::ParsePath(s));
  return rule;
}

Result<std::vector<AccessRule>> ParseRuleList(std::string_view text) {
  std::vector<AccessRule> rules;
  while (!text.empty()) {
    size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view()
                                        : text.substr(nl + 1);
    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    CSXA_ASSIGN_OR_RETURN(AccessRule rule, ParseRule(line));
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<AccessRule> RulesForSubject(const std::vector<AccessRule>& rules,
                                        const std::string& subject) {
  std::vector<AccessRule> out;
  for (const AccessRule& r : rules) {
    if (r.subject.empty() || r.subject == subject) out.push_back(r);
  }
  return out;
}

std::vector<AccessRule> EliminateRedundantRules(std::vector<AccessRule> rules) {
  std::vector<bool> dropped(rules.size(), false);
  for (size_t i = 0; i < rules.size(); ++i) {
    if (dropped[i]) continue;
    for (size_t j = 0; j < rules.size(); ++j) {
      if (i == j || dropped[j]) continue;
      if (rules[i].sign != rules[j].sign ||
          rules[i].subject != rules[j].subject) {
        continue;
      }
      // Keep the earlier rule when both contain each other (equivalence).
      if (xpath::Contains(rules[i].path, rules[j].path) &&
          !(j < i && xpath::Contains(rules[j].path, rules[i].path))) {
        dropped[j] = true;
      }
    }
  }
  std::vector<AccessRule> out;
  out.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    if (!dropped[i]) out.push_back(std::move(rules[i]));
  }
  return out;
}

}  // namespace csxa::access
