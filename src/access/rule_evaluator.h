#ifndef CSXA_ACCESS_RULE_EVALUATOR_H_
#define CSXA_ACCESS_RULE_EVALUATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "common/status.h"
#include "xml/event.h"
#include "xpath/ast.h"

namespace csxa::access {

/// Tri-valued node authorization while predicates are undecided.
enum class Decision {
  kDeny,
  kPermit,
  kPending,
};

/// What the Skip index reveals about the subtree of the element that was
/// just opened. Consumed by RuleEvaluator::SubtreeDecision; produced by the
/// pipeline from the navigator's decoded descendant-tag bitmap
/// (TCSB/TCSBR), or left at its defaults for streams without tag
/// information (TCS: skipping is still possible when no automaton holds a
/// live token for the subtree).
struct SubtreeFacts {
  /// True when the encoding carries a descendant-tag bitmap.
  bool tags_known = false;
  /// True when the bitmap is empty: no element can occur strictly below
  /// (leaf element). Only meaningful when tags_known.
  bool no_elements_below = false;
  /// Whether an element named `tag` can appear strictly below. Only
  /// consulted when tags_known && !no_elements_below.
  std::function<bool(const std::string&)> may_contain;
  /// Encoded size of the subtree (the index's size field), the quantity the
  /// deferral budget is compared against. 0 when the stream has no size
  /// fields (TC), which disables deferral for the element.
  uint64_t subtree_bytes = 0;
};

/// Answer of the per-element skip oracle.
enum class SkipDecision {
  /// The subtree may contain authorized content, a deeper target that
  /// grants, or evidence a pending predicate needs — it must be streamed.
  kDescend,
  /// The element is irrevocably denied and the subtree is provably inert:
  /// no live token of a positive rule can complete below it and no pending
  /// predicate can gather evidence there. Pruning it unseen cannot change
  /// the authorized view.
  kSkip,
  /// The element's decision hinges on predicates whose evidence lies
  /// entirely *outside* the subtree, no rule automaton of either sign can
  /// match inside it, and its encoded size exceeds the buffering budget:
  /// instead of streaming-and-buffering it, the driver should skip it now,
  /// register a deferral (RegisterDeferral) and re-read the bytes later —
  /// only if the decision resolves to permit. The paper's skip-now-
  /// reread-later strategy for pending parts (Sections 4.1/5).
  kDefer,
};

namespace internal {

struct PredInstance;

/// Interface the matchers use to instantiate pending predicates.
class RuleEvaluatorContext {
 public:
  virtual ~RuleEvaluatorContext() = default;
  virtual std::shared_ptr<PredInstance> Spawn(const xpath::Predicate* pred,
                                              int depth) = 0;
};

/// Streaming evaluation of one predicate, rooted at the element whose step
/// carried it (Section 4.2: a predicate cannot in general be decided when
/// the element is met; its evaluation stays *pending* until a matching
/// value arrives or the subtree closes).
///
/// Condition attached to a token or a rule hit: the conjunction of the
/// pending predicate instances it traversed.
using CondSet = std::vector<std::shared_ptr<PredInstance>>;

/// One token of a rule (or predicate-path) automaton: `next_step` steps
/// already matched, under the conditions in `conds`.
struct TokenState {
  size_t next_step = 0;
  CondSet conds;
};

/// Nondeterministic automaton matching one step sequence of the
/// XP{[],*,//} fragment against the event stream — the paper's
/// one-automaton-per-rule construction. Descendant steps keep tokens alive
/// down the subtree; each open event advances tokens; each full match is
/// reported with the conditions accumulated from predicates.
class PathMatcher {
 public:
  /// `steps` must outlive the matcher. `base_depth` is the depth of the
  /// context node: 0 for absolute rule paths, the predicated element's
  /// depth for predicate paths.
  PathMatcher(const std::vector<xpath::Step>* steps, int base_depth);

  /// Advances tokens over `<tag>`. Events that are not the next well-nested
  /// open/close below base_depth (e.g. at or above the context node) are
  /// ignored, so the matcher stays aligned by itself. Full matches (the
  /// opened element is a target) are appended to `full_matches`; predicates
  /// traversed en route are instantiated through `ctx`.
  void OnOpen(const std::string& tag, int depth, RuleEvaluatorContext* ctx,
              std::vector<CondSet>* full_matches);
  void OnClose(int depth);

  /// Skip-oracle reachability: true if some live token could still produce
  /// a full match strictly below the most recently opened element, given
  /// `facts`. A token is live when it sits in the top frame; it is feasible
  /// when every remaining named step's tag can occur in the subtree
  /// (wildcards pass as long as any element can occur at all). Conservative
  /// in the descend direction: never rules out a reachable match.
  bool CanCompleteWithin(const SubtreeFacts& facts) const;

 private:
  const std::vector<xpath::Step>* steps_;
  int base_depth_;
  struct Frame {
    std::vector<TokenState> exact;  ///< Prefix matched ending at this node.
    std::vector<TokenState> desc;   ///< Waiting on a descendant-axis match.
  };
  /// Frame pool: stack_[0..live_) are the active frames (stack_[0] = the
  /// virtual context node); slots above live_ keep their vectors'
  /// capacity, so the push on every element open reuses storage instead
  /// of allocating (PR 2 flagged the per-event churn).
  std::vector<Frame> stack_;
  size_t live_ = 0;
};

struct PredInstance {
  enum class State { kPending, kTrue, kFalse };

  const xpath::Predicate* pred = nullptr;
  int root_depth = 0;  ///< Depth of the element the predicate decorates.
  State state = State::kPending;
  PathMatcher matcher;

  /// A full match of the predicate path whose own (nested) conditions are
  /// not yet resolved; the instance turns true when any candidate's
  /// conditions all come true.
  std::vector<CondSet> candidates;

  /// Accumulates the string value of a matched node until it closes, for
  /// comparison predicates (`[Type = G3]`).
  struct Collection {
    int node_depth = 0;
    std::string value;
    CondSet conds;
  };
  std::vector<Collection> collections;

  /// Queue positions (absolute) of buffered events whose decision is
  /// blocked on this instance. When the instance resolves, exactly these
  /// events are re-examined — resolution waves no longer rescan the whole
  /// buffer. May hold stale entries (events decided through another
  /// instance); those are skipped by a status check.
  std::vector<size_t> watchers;

  PredInstance(const xpath::Predicate* p, int depth)
      : pred(p), root_depth(depth), matcher(&p->steps, depth) {}
};

}  // namespace internal

/// Streaming access-control evaluator — the paper's core component
/// (Section 4.2). Consumes the SAX event stream of a document, runs one
/// token automaton per rule, and forwards to `out` exactly the events of
/// the authorized pruned view:
///
///  - A rule applies to every node its expression selects and propagates
///    to the node's subtree.
///  - Conflicts resolve most-specific-target-first (the rule whose target
///    node is deepest on the path wins); at equal specificity denial takes
///    precedence; nodes reached by no rule are denied (closed world).
///  - The authorized view keeps every permitted node, plus the *tags* of
///    denied ancestors of permitted nodes (structure preservation); text
///    of denied elements is never disclosed.
///
/// Events whose authorization hinges on an undecided predicate are
/// buffered (the paper's *pending* parts) and released — in document
/// order — as soon as the predicates resolve, at the latest when the
/// enclosing subtree closes. Output order is always document order.
///
/// The evaluator also acts as the *skip oracle* of the SOE pipeline
/// (Section 4.1): after each open event, SubtreeDecision() reports whether
/// the automata's token analysis proves the subtree inert, letting the
/// driver skip it via the index's size fields before any of its bytes are
/// transferred or decrypted.
class RuleEvaluator : public xml::EventHandler,
                      private internal::RuleEvaluatorContext {
 public:
  /// Pending-part strategy knobs (the SOE memory budget of the paper's
  /// constraint #1: the document must never be materialized in the SOE).
  struct Options {
    /// Bytes the evaluator is willing to hold back for pending parts. A
    /// pending subtree whose *encoded* size field exceeds what remains of
    /// the budget (budget minus bytes already buffered, so small pending
    /// siblings cannot accumulate past it) is answered kDefer by
    /// SubtreeDecision() when deferring is provably safe. The encoded
    /// size is a pre-read proxy for the decoded event payload — text
    /// decodes 1:1, tag names may expand relative to their dictionary
    /// codes — so the enforced peak is budget + one subtree's expansion
    /// slack. The default never defers, preserving pure streaming.
    uint64_t pending_buffer_budget = UINT64_MAX;
  };

  /// `rules` is the rule set already selected for the requesting subject
  /// (see RulesForSubject); `out` receives the authorized view.
  RuleEvaluator(std::vector<AccessRule> rules, xml::EventHandler* out,
                Options options);
  RuleEvaluator(std::vector<AccessRule> rules, xml::EventHandler* out)
      : RuleEvaluator(std::move(rules), out, Options()) {}
  ~RuleEvaluator() override;

  void OnOpen(const std::string& tag, int depth) override;
  void OnValue(const std::string& value, int depth) override;
  void OnClose(const std::string& tag, int depth) override;

  /// Skip oracle. Must be called right after OnOpen(tag, depth) and before
  /// the next event; `depth` must be the just-opened element's depth.
  /// Returns kSkip only when eliding the entire subtree (the pipeline then
  /// feeds the matching OnClose directly) provably leaves the authorized
  /// view byte-identical:
  ///
  ///  1. the element's decision is an irrevocable deny (most-specific
  ///     resolved denial or closed world — not merely pending), and
  ///  2. no pending predicate instance could match or collect a value
  ///     inside the subtree, and
  ///  3. no live token of a *positive* rule automaton can reach a full
  ///     match inside the subtree (a deeper target could flip the denial);
  ///     negative-rule tokens are irrelevant below an irrevocable deny.
  SkipDecision SubtreeDecision(const SubtreeFacts& facts, int depth);

  /// Look-ahead oracle for the fetch planner, callable right after
  /// SubtreeDecision() answered kDescend: true when the just-opened
  /// element's subtree will provably be streamed *in full* — the element's
  /// decision is an irrevocable permit, no pending predicate can gather
  /// evidence inside, and no rule automaton of either sign can reach a
  /// target inside (so no descendant can be re-decided, skipped or
  /// deferred). The pipeline then hints the subtree's byte range to the
  /// fetcher as wanted, letting it batch the whole range in few round
  /// trips. Purely advisory: a false negative only costs smaller batches.
  bool WholeSubtreeAuthorized(const SubtreeFacts& facts, int depth);

  /// Records that the driver took a kDefer answer: the just-opened element
  /// (the one SubtreeDecision was consulted for) becomes a *deferred
  /// subtree* — its open/close events stay queued as usual, but its content
  /// was skipped unseen. Returns the deferral id. When the element's
  /// decision later resolves to permit, the deferral listener fires —
  /// during output, right after the element's open event — so the driver
  /// can splice the re-read subtree back at its original document
  /// position; a denial fires nothing and costs zero re-reads. Must be
  /// called right after SubtreeDecision() returned kDefer, before the next
  /// event.
  size_t RegisterDeferral();

  /// Called in document order, between a granted deferred element's open
  /// and close events as they are forwarded to `out`.
  using DeferralListener = std::function<void(size_t deferral_id)>;
  void set_deferral_listener(DeferralListener listener) {
    deferral_listener_ = std::move(listener);
  }

  /// Must be called after the last event: verifies every buffered event
  /// was resolved and flushed (it is, for any well-nested stream).
  Status Finish();

  struct Stats {
    uint64_t events_in = 0;
    uint64_t events_emitted = 0;
    uint64_t events_pruned = 0;
    uint64_t rule_hits = 0;           ///< Full rule matches (targets found).
    uint64_t predicates_spawned = 0;  ///< Pending predicate instances.
    size_t peak_buffered = 0;         ///< Max events held back at once.
    uint64_t peak_buffered_bytes = 0;  ///< Max payload bytes held back.
    uint64_t skip_checks = 0;         ///< SubtreeDecision() queries.
    uint64_t skips_advised = 0;       ///< ... that answered kSkip.
    uint64_t defers_advised = 0;      ///< ... that answered kDefer.
    uint64_t full_grants_advised = 0;  ///< WholeSubtreeAuthorized() == true.
    uint64_t subtrees_deferred = 0;   ///< RegisterDeferral() calls.
    uint64_t deferrals_granted = 0;   ///< Deferred opens that were emitted.
    uint64_t deferrals_denied = 0;    ///< Deferred opens that were dropped.
    /// Blocked-event → pending-predicate watcher registrations. Identical
    /// token spawns at the same (rule, position) share one instance and
    /// each blocked event registers with an instance at most once.
    uint64_t watcher_subscriptions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct NodeRec;
  struct OutEvent;
  enum class EventStatus { kUndecided, kEmit, kDrop };

  // internal::RuleEvaluatorContext
  std::shared_ptr<internal::PredInstance> Spawn(const xpath::Predicate* pred,
                                                int depth) override;

  /// Decides `node`; when the result hinges on pending predicates, the
  /// instances encountered are appended to `blockers` (if non-null) so the
  /// caller can subscribe the blocked event to exactly those instances.
  Decision Decide(const NodeRec& node,
                  internal::CondSet* blockers = nullptr) const;
  void SettleCandidates();          ///< Predicate-candidate fixpoint.
  void SettleInstance(const std::shared_ptr<internal::PredInstance>& inst,
                      internal::PredInstance::State state);
  bool ResolveEvent(size_t qpos);   ///< Decides one buffered event if possible.
  void Resolve();      ///< Examines the tail event, then drains the wave.
  void DrainWave();    ///< Re-examines watchers of newly settled instances.
  void TryPruneEnclosing(NodeRec* node);
  void Flush();        ///< Emits/drops the decided queue prefix.
  void ForceEmit(NodeRec* node);
  void MarkStatus(OutEvent& e, EventStatus status);
  OutEvent& EventAt(size_t qpos);

  std::vector<AccessRule> rules_;
  xml::EventHandler* out_;
  Options options_;
  DeferralListener deferral_listener_;

  std::vector<std::unique_ptr<internal::PathMatcher>> matchers_;  // per rule
  std::vector<std::shared_ptr<internal::PredInstance>> instances_;

  // Per-open-event memo so several tokens crossing the same predicated
  // step share one instance. clear()ed per event — capacity persists.
  std::vector<std::pair<const xpath::Predicate*,
                        std::shared_ptr<internal::PredInstance>>> spawn_memo_;

  /// Reused scratch: full-match collector handed to every matcher on each
  /// open event, and the target-depth list Decide() sorts — both were
  /// reallocated per event before (PR 2's flagged churn).
  std::vector<internal::CondSet> fulls_scratch_;
  mutable std::vector<int> depths_scratch_;

  std::vector<std::shared_ptr<NodeRec>> element_stack_;
  std::deque<OutEvent> queue_;
  size_t queue_base_ = 0;  ///< Absolute position of queue_.front().
  uint64_t buffered_bytes_ = 0;  ///< Payload bytes currently in queue_.
  /// Instances that left kPending since the last DrainWave(): their
  /// watcher lists are the only buffered events a resolution wave touches.
  std::vector<std::shared_ptr<internal::PredInstance>> wave_;

  Stats stats_;
};

}  // namespace csxa::access

#endif  // CSXA_ACCESS_RULE_EVALUATOR_H_
