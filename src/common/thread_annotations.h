#ifndef CSXA_COMMON_THREAD_ANNOTATIONS_H_
#define CSXA_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

/// Clang Thread Safety Analysis wiring for the whole project.
///
/// Every mutex-guarded structure in csxa (the server's document registry
/// and terminal links, the shared verified-digest cache, the load
/// harness's result counters) declares its locking contract with these
/// macros, and the clang CI job compiles with `-Wthread-safety -Werror` —
/// so an access to a guarded member without its mutex, or a lock-held
/// helper called without the lock, is a *build break*, not a TSan flake
/// that needs the right interleaving to fire. Under gcc (and any compiler
/// without the attribute) every macro expands to nothing and `csxa::Mutex`
/// degenerates to a plain `std::mutex` wrapper, so the annotations cost
/// zero at runtime and zero portability.
///
/// The macro set is the established subset (capability model, as in
/// abseil's thread_annotations.h — see SNIPPETS idiom), prefixed CSXA_ so
/// the project linter can insist on exactly this vocabulary:
///  - CSXA_GUARDED_BY(mu): data member readable/writable only under mu.
///  - CSXA_PT_GUARDED_BY(mu): pointee (not the pointer) guarded by mu.
///  - CSXA_REQUIRES(mu): function must be called with mu held.
///  - CSXA_EXCLUDES(mu): function must be called with mu NOT held
///    (it will acquire mu itself; documents non-reentrancy).
///  - CSXA_ACQUIRE(mu) / CSXA_RELEASE(mu): function acquires/releases mu.
///  - CSXA_NO_THREAD_SAFETY_ANALYSIS: opt-out of checking one function
///    (used only with a comment explaining why the analysis cannot see
///    the invariant).

#if defined(__clang__) && (!defined(SWIG))
#define CSXA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CSXA_THREAD_ANNOTATION_(x)  // no-op on non-clang
#endif

#define CSXA_CAPABILITY(x) CSXA_THREAD_ANNOTATION_(capability(x))
#define CSXA_SCOPED_CAPABILITY CSXA_THREAD_ANNOTATION_(scoped_lockable)
#define CSXA_GUARDED_BY(x) CSXA_THREAD_ANNOTATION_(guarded_by(x))
#define CSXA_PT_GUARDED_BY(x) CSXA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define CSXA_ACQUIRED_BEFORE(...) \
  CSXA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CSXA_ACQUIRED_AFTER(...) \
  CSXA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define CSXA_REQUIRES(...) \
  CSXA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CSXA_EXCLUDES(...) \
  CSXA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define CSXA_ACQUIRE(...) \
  CSXA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CSXA_RELEASE(...) \
  CSXA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CSXA_RETURN_CAPABILITY(x) CSXA_THREAD_ANNOTATION_(lock_returned(x))
#define CSXA_NO_THREAD_SAFETY_ANALYSIS \
  CSXA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace csxa {

/// The project mutex: a `std::mutex` carrying the `capability` attribute
/// so the analysis can track it. This is the ONLY place in the tree
/// allowed to name `std::mutex` — the security-contract linter
/// (tools/csxa_lint.py, check `naked-mutex`) fails any other use, because
/// a naked std::mutex is invisible to the analysis and silently exempts
/// whatever it guards from the compile-time contract.
class CSXA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CSXA_ACQUIRE() { mu_.lock(); }
  void Unlock() CSXA_RELEASE() { mu_.unlock(); }

  /// For condition-variable integration; the analysis treats the native
  /// handle as an opaque escape, so keep waits inside MutexLock scopes.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for csxa::Mutex — the project-wide replacement for
/// std::lock_guard / std::unique_lock (which the analysis cannot see
/// through when wrapping csxa::Mutex). Scope-shaped exactly like
/// std::lock_guard: acquire at construction, release at destruction.
class CSXA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CSXA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CSXA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with csxa::Mutex. Like the mutex wrapper,
/// this is the ONLY place in the tree allowed to name
/// `std::condition_variable` (linter check `naked-mutex`): a wait must
/// release and reacquire a *tracked* capability, and the analysis cannot
/// see through std::unique_lock over a raw native handle. Both Wait
/// entry points require the mutex held and return with it held again, so
/// annotated call sites stay truthful: the capability is continuously
/// logically held around the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible; loop on the
  /// predicate at the call site.
  void Wait(Mutex* mu) CSXA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->native_handle(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // Ownership stays with the caller's MutexLock scope.
  }

  /// Blocks until notified or `timeout_ns` elapses. Returns false on
  /// timeout. Spurious wakeups possible; loop on predicate + deadline.
  bool WaitFor(Mutex* mu, std::uint64_t timeout_ns) CSXA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->native_handle(), std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(lk, std::chrono::nanoseconds(timeout_ns));
    lk.release();
    return st == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace csxa

#endif  // CSXA_COMMON_THREAD_ANNOTATIONS_H_
