#include "common/bitstream.h"

#include "common/bytes.h"

namespace csxa {

int BitsFor(uint64_t n) {
  if (n <= 1) return 0;
  int bits = 0;
  uint64_t max = n - 1;
  while (max > 0) {
    ++bits;
    max >>= 1;
  }
  return bits;
}

int BitWidth(uint64_t v) {
  int bits = 0;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

void BitWriter::WriteBits(uint64_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    size_t byte = bit_size_ >> 3;
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1) {
      bytes_[byte] |= static_cast<uint8_t>(0x80u >> (bit_size_ & 7));
    }
    ++bit_size_;
  }
}

void BitWriter::AlignToByte() {
  bit_size_ = (bit_size_ + 7) & ~size_t{7};
  bytes_.resize((bit_size_ + 7) / 8, 0);
}

void BitWriter::WriteAlignedBytes(const uint8_t* data, size_t n) {
  AlignToByte();
  bytes_.insert(bytes_.end(), data, data + n);
  bit_size_ += n * 8;
}

Status BitReader::ReadBits(int width, uint64_t* value) {
  if (pos_ + static_cast<size_t>(width) > size_bits_) {
    return Status::OutOfRange("BitReader: read past end of stream");
  }
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    size_t byte = pos_ >> 3;
    int bit = 7 - static_cast<int>(pos_ & 7);
    v = (v << 1) | ((data_[byte] >> bit) & 1);
    ++pos_;
  }
  *value = v;
  return Status::OK();
}

Status BitReader::ReadBit(bool* bit) {
  uint64_t v = 0;
  CSXA_RETURN_NOT_OK(ReadBits(1, &v));
  *bit = (v != 0);
  return Status::OK();
}

Status BitReader::ReadAlignedBytes(size_t n, std::string* out) {
  pos_ = (pos_ + 7) & ~size_t{7};
  if (pos_ + n * 8 > size_bits_) {
    return Status::OutOfRange("BitReader: aligned read past end of stream");
  }
  *out = std::string(common::AsChars(data_ + (pos_ >> 3), n));
  pos_ += n * 8;
  return Status::OK();
}

Status BitReader::SeekTo(size_t bit_pos) {
  if (bit_pos > size_bits_) {
    return Status::OutOfRange("BitReader: seek past end of stream");
  }
  pos_ = bit_pos;
  return Status::OK();
}

Status BitReader::SkipBits(size_t bits) { return SeekTo(pos_ + bits); }

}  // namespace csxa
