#ifndef CSXA_COMMON_CLOCK_H_
#define CSXA_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace csxa {

/// Monotonic wall clock in nanoseconds, for the cost model's stage
/// timings (fetch / decrypt / hash / evaluate).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace csxa

#endif  // CSXA_COMMON_CLOCK_H_
