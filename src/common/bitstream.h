#ifndef CSXA_COMMON_BITSTREAM_H_
#define CSXA_COMMON_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace csxa {

/// Number of bits needed to represent values in [0, n-1]; BitsFor(0) and
/// BitsFor(1) are 0 (a single possible value needs no bits).
int BitsFor(uint64_t n);

/// Number of bits needed to represent the value v itself (>= 1 for v > 0).
int BitWidth(uint64_t v);

/// Append-only MSB-first bit writer backed by a byte vector.
///
/// The Skip index (Section 4 of the paper) packs per-element metadata with
/// field widths that shrink recursively; this writer provides the raw
/// bit-level substrate for that encoding.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `width` bits of `value`, most significant bit first.
  /// width == 0 is a no-op. Requires width <= 64.
  void WriteBits(uint64_t value, int width);

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Pads with zero bits to the next byte boundary, then appends raw bytes.
  void WriteAlignedBytes(const uint8_t* data, size_t n);

  /// Pads with zero bits up to the next byte boundary.
  void AlignToByte();

  /// Current length in bits.
  size_t bit_size() const { return bit_size_; }

  /// Finished buffer (zero-padded to a whole byte).
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_size_ = 0;
};

/// MSB-first bit reader over a byte span, with random seek (needed by the
/// skip operation: SubtreeSize fields let the decoder jump over encrypted
/// subtrees without touching them).
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}
  explicit BitReader(const std::vector<uint8_t>& data)
      : BitReader(data.data(), data.size()) {}

  /// Reads `width` bits into *value (MSB first). width == 0 yields 0.
  Status ReadBits(int width, uint64_t* value);

  /// Reads one bit.
  Status ReadBit(bool* bit);

  /// Skips to the next byte boundary then reads n raw bytes.
  Status ReadAlignedBytes(size_t n, std::string* out);

  /// Absolute bit position.
  size_t position() const { return pos_; }
  size_t size_bits() const { return size_bits_; }
  size_t remaining_bits() const { return size_bits_ - pos_; }

  /// Seeks to an absolute bit offset (used by subtree skips and by the
  /// pending-predicate re-reads).
  Status SeekTo(size_t bit_pos);

  /// Advances by `bits` (the skip primitive).
  Status SkipBits(size_t bits);

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
};

}  // namespace csxa

#endif  // CSXA_COMMON_BITSTREAM_H_
