#ifndef CSXA_COMMON_HEXDUMP_H_
#define CSXA_COMMON_HEXDUMP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace csxa {

/// Lowercase hex encoding of a byte buffer ("deadbeef"). Debug/test helper.
std::string HexEncode(const uint8_t* data, size_t n);
std::string HexEncode(const std::vector<uint8_t>& data);
std::string HexEncode(const std::string& data);

}  // namespace csxa

#endif  // CSXA_COMMON_HEXDUMP_H_
