#ifndef CSXA_COMMON_STATUS_H_
#define CSXA_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace csxa {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom
/// of returning a rich status object instead of throwing across API
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed (bad XPath, ...).
  kParseError,        ///< Ill-formed XML or encoded-document input.
  kOutOfRange,        ///< Read/seek past the end of a stream or document.
  kIntegrityError,    ///< Tampering detected by the integrity checker.
  kCorruption,        ///< Encoded document is internally inconsistent.
  kNotSupported,      ///< Valid input outside the supported XPath fragment.
  kResourceExhausted, ///< A simulated SOE memory limit was exceeded.
  kInternal,          ///< Invariant violation inside the library.
  kUnavailable,       ///< Transport failure (refused/reset/disconnect); retryable.
  kDeadlineExceeded,  ///< Per-request deadline elapsed before a response.
};

/// Human-readable name of a status code (e.g. "IntegrityError").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Cheap to copy in the OK case (no allocation); carries a message
/// otherwise. All fallible public APIs in csxa return Status or Result<T>.
///
/// [[nodiscard]]: silently dropping a Status is the same bug class the
/// error-taxonomy contract exists for — in a verification chain, an
/// ignored IntegrityError *is* the vulnerability. Discarding must be
/// explicit (cast to void with a comment saying why).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IntegrityError(std::string msg) {
    return Status(StatusCode::kIntegrityError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Modeled after
/// arrow::Result. Access the value only after checking ok().
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }
  T& value() { return std::get<T>(data_); }
  const T& value() const { return std::get<T>(data_); }
  T take() { return std::move(std::get<T>(data_)); }

  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status to the caller, RocksDB-style.
#define CSXA_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::csxa::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assigns the value of a Result<T> expression or propagates its error.
#define CSXA_ASSIGN_OR_RETURN(lhs, expr)        \
  auto CSXA_CONCAT_(_res, __LINE__) = (expr);   \
  if (!CSXA_CONCAT_(_res, __LINE__).ok())       \
    return CSXA_CONCAT_(_res, __LINE__).status(); \
  lhs = CSXA_CONCAT_(_res, __LINE__).take()

#define CSXA_CONCAT_IMPL_(a, b) a##b
#define CSXA_CONCAT_(a, b) CSXA_CONCAT_IMPL_(a, b)

}  // namespace csxa

#endif  // CSXA_COMMON_STATUS_H_
