#ifndef CSXA_COMMON_BYTES_H_
#define CSXA_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace csxa::common {

/// The repo's only sanctioned byte-reinterpret site. char/uint8_t aliasing
/// is well-defined, but scattered naked reinterpret_casts are exactly how
/// tainted terminal bytes get laundered past the typestate wall of
/// common/tainted.h — so tools/csxa_lint.py (check: byte-reinterpret)
/// forbids them everywhere but here, and these helpers take *sized* views
/// where the call shape allows, so the length travels with the cast.

/// Byte view of character data (hashing strings, framing ids).
inline const uint8_t* AsBytes(std::string_view s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

/// Character view of `n` bytes (text extraction from decoded buffers).
inline std::string_view AsChars(const uint8_t* p, size_t n) {
  return std::string_view(reinterpret_cast<const char*>(p), n);
}

}  // namespace csxa::common

#endif  // CSXA_COMMON_BYTES_H_
