#include "common/status.h"

namespace csxa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIntegrityError:
      return "IntegrityError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace csxa
