#include "common/hexdump.h"

#include "common/bytes.h"

namespace csxa {

std::string HexEncode(const uint8_t* data, size_t n) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

std::string HexEncode(const std::vector<uint8_t>& data) {
  return HexEncode(data.data(), data.size());
}

std::string HexEncode(const std::string& data) {
  return HexEncode(common::AsBytes(data), data.size());
}

}  // namespace csxa
