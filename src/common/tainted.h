#ifndef CSXA_COMMON_TAINTED_H_
#define CSXA_COMMON_TAINTED_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace csxa::crypto {
class SoeDecryptor;
}  // namespace csxa::crypto

namespace csxa::common {

/// Typestate wall for the paper's verify-before-trust invariant: no byte
/// read off the untrusted terminal may influence the authorized view, the
/// digest cache, or navigation state until it has recombined to an
/// authenticated Merkle root. These wrappers make that dataflow a *type*:
///
///   UnverifiedBytes    anything a crypto::BatchSource produced (local
///                      SecureDocumentStore reads and net::RemoteBatchSource
///                      alike) or wire_format decoded — opaque to everyone
///                      except the verification path.
///   VerifiedPlaintext  readable document bytes; constructible only through
///                      a VerifyPass, which only the Merkle verification
///                      path (crypto::SoeDecryptor) can mint.
///
/// The one escape hatch is UnverifiedBytes::ReleaseUnverified(), every call
/// site of which must carry a written justification enforced by
/// tools/csxa_lint.py (check: taint-release). Everything else — feeding
/// unverified bytes to the navigator, copying a VerifiedPlaintext, forging
/// a VerifyPass, recording unauthenticated material into the digest cache —
/// fails to compile (regression-tested by tests/typestate_compile_test).

/// Passkey for the two mint sites (SoeDecryptor::VerifyChunkAgainstMaterial
/// and SoeDecryptor::DecryptVerifiedBatch — both methods of SoeDecryptor,
/// the only friend). Stateless; its value *is* the proof that control
/// passed through the digest-chain verification code.
class VerifyPass {
 private:
  VerifyPass() = default;
  VerifyPass(const VerifyPass&) = default;
  friend class ::csxa::crypto::SoeDecryptor;
};

/// Bytes of untrusted provenance. Deliberately not a container: no
/// data(), no iterators, no operator[] — the raw bytes are reachable only
/// through VerifyData() (verification path, passkey-gated) or the linted
/// ReleaseUnverified() escape. Sizes are honest pre-verification data
/// (framing needs them), so size()/empty() stay public. Copyable: a copy
/// of tainted bytes is tainted bytes.
class UnverifiedBytes {
 public:
  UnverifiedBytes() = default;
  explicit UnverifiedBytes(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  /// Verification-path read: only SoeDecryptor can produce the pass, so
  /// only code reachable from the Merkle verification path can see the
  /// bytes — exactly the code whose job is to judge them.
  const uint8_t* VerifyData(VerifyPass) const { return bytes_.data(); }

  /// Escape hatch for the handful of legitimate pre-verification uses
  /// (wire framing, fault-injection tooling). Every call site must carry
  ///   // csxa-lint: allow(taint-release) <justification>
  /// or the lint gate fails the build.
  std::vector<uint8_t>& ReleaseUnverified() { return bytes_; }
  const std::vector<uint8_t>& ReleaseUnverified() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Document bytes that recombined to an authenticated Merkle root. Only a
/// VerifyPass holder can construct one; everyone may read it. Move-only:
/// a copy would be a second witness nobody verified. Two shapes, one type:
/// an owning buffer (DecryptVerified's return) or a borrowed view over a
/// buffer that is written exclusively by DecryptVerifiedBatch (the
/// SecureFetcher's document image — see SoeDecryptor::VerifiedViewOf).
class VerifiedPlaintext {
 public:
  VerifiedPlaintext(VerifyPass, std::vector<uint8_t> bytes)
      : owned_(std::move(bytes)) {}
  VerifiedPlaintext(VerifyPass, const uint8_t* data, size_t size)
      : view_(data), view_size_(size) {}

  VerifiedPlaintext(VerifiedPlaintext&&) noexcept = default;
  VerifiedPlaintext& operator=(VerifiedPlaintext&&) noexcept = default;
  VerifiedPlaintext(const VerifiedPlaintext&) = delete;
  VerifiedPlaintext& operator=(const VerifiedPlaintext&) = delete;

  const uint8_t* data() const {
    return view_ != nullptr ? view_ : owned_.data();
  }
  size_t size() const { return view_ != nullptr ? view_size_ : owned_.size(); }

  /// Copy-out for consumers that want ownership (tests, reference
  /// comparisons). Reading verified bytes is never restricted.
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data(), data() + size());
  }

 private:
  std::vector<uint8_t> owned_;
  const uint8_t* view_ = nullptr;
  size_t view_size_ = 0;
};

}  // namespace csxa::common

#endif  // CSXA_COMMON_TAINTED_H_
