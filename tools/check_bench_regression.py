#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh csxa_bench run against the committed
baseline and fail if terminal round trips, wire bytes, or peak buffered
bytes regress on any scenario/variant — the three quantities the fetch
planner, the chunk-amortized proofs and the deferral budget exist to hold
down. Wall-clock timings are informational (machine-dependent) and are
never gated.

Usage: check_bench_regression.py BASELINE.json FRESH.json [tolerance]

`tolerance` is a fractional slack (default 0.02) absorbing byte-count
jitter from layout-incidental effects; requests are gated exactly.
"""

import json
import sys


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline = json.load(open(sys.argv[1]))
    fresh = json.load(open(sys.argv[2]))
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.02

    rc = 0
    base_scenarios = {s["name"]: s for s in baseline["scenarios"]}
    for scenario in fresh["scenarios"]:
        base = base_scenarios.get(scenario["name"])
        if base is None:
            continue  # New scenario: nothing to regress against.
        base_variants = {v["variant"]: v for v in base["variants"]}
        for variant in scenario["variants"]:
            ref = base_variants.get(variant["variant"])
            if ref is None:
                continue
            where = f'{scenario["name"]}/{variant["variant"]}'
            if not variant.get("view_matches_reference", False):
                rc |= fail(f"{where}: authorized view diverges")
            if variant["requests"] > ref["requests"]:
                rc |= fail(
                    f'{where}: requests {variant["requests"]} > '
                    f'baseline {ref["requests"]}')
            for key in ("wire_bytes", "peak_buffered_bytes"):
                if variant[key] > ref[key] * (1 + tolerance):
                    rc |= fail(
                        f'{where}: {key} {variant[key]} > '
                        f'baseline {ref[key]} (+{tolerance:.0%})')

    for strategy in ("deferred", "buffered"):
        ref = baseline["deferred_mode"][strategy]
        cur = fresh["deferred_mode"][strategy]
        for key in ("wire_bytes", "peak_buffered_bytes"):
            if cur[key] > ref[key] * (1 + tolerance):
                rc |= fail(
                    f'deferred_mode/{strategy}: {key} {cur[key]} > '
                    f'baseline {ref[key]} (+{tolerance:.0%})')

    # Shared-cache economics must not regress: a warm serve that starts
    # re-shipping tree hashes or digests has lost cross-serve sharing, and
    # its wire bytes are gated like every other scenario. The absolute
    # gates depend only on the fresh run, so they apply even against a
    # baseline predating the warm_cache section.
    if "warm_cache" not in fresh:
        rc |= fail("warm_cache section missing from fresh run")
    else:
        warm = fresh["warm_cache"]["warm"]
        if warm["proof_hashes_shipped"] != 0 or warm["digest_bytes_shipped"] != 0:
            rc |= fail(
                'warm_cache/warm: integrity material re-shipped '
                f'({warm["proof_hashes_shipped"]} hashes, '
                f'{warm["digest_bytes_shipped"]} digest bytes)')
        if not fresh["warm_cache"].get("warm_under_60_percent", False):
            rc |= fail("warm_cache: warm serve not under 60% of cold wire")
        if "warm_cache" in baseline:
            for serve in ("cold", "warm"):
                ref = baseline["warm_cache"][serve]
                cur = fresh["warm_cache"][serve]
                if cur["wire_bytes"] > ref["wire_bytes"] * (1 + tolerance):
                    rc |= fail(
                        f'warm_cache/{serve}: wire_bytes {cur["wire_bytes"]} '
                        f'> baseline {ref["wire_bytes"]} (+{tolerance:.0%})')

    # Corpus generator (PR 6): every number in the section is a pure
    # function of (family, seed, target_bytes) — platform-independent PRNG,
    # no timing — so any drift against the committed baseline is an
    # unintended generator or evaluator change. Gated exactly, bit-for-bit.
    if "corpus" not in fresh:
        rc |= fail("corpus section missing from fresh run")
    elif "corpus" in baseline:
        same_spec = (
            fresh["corpus"]["target_bytes"] == baseline["corpus"]["target_bytes"]
            and fresh["corpus"]["seed"] == baseline["corpus"]["seed"])
        base_families = {f["family"]: f
                         for f in baseline["corpus"]["families"]}
        for family in fresh["corpus"]["families"] if same_spec else []:
            ref = base_families.get(family["family"])
            if ref is None:
                continue
            where = f'corpus/{family["family"]}'
            for key in ("document_bytes", "records", "max_depth"):
                if family[key] != ref[key]:
                    rc |= fail(
                        f'{where}: {key} {family[key]} != deterministic '
                        f'baseline {ref[key]}')
            base_rules = {r["rules"]: r for r in ref["rule_families"]}
            for rules in family["rule_families"]:
                ref_rules = base_rules.get(rules["rules"])
                if ref_rules is None:
                    continue
                for key in ("rule_count", "view_bytes"):
                    if rules[key] != ref_rules[key]:
                        rc |= fail(
                            f'{where}/{rules["rules"]}: {key} {rules[key]} '
                            f'!= deterministic baseline {ref_rules[key]}')

    # Load harness (PR 6): correctness outcomes are machine-independent and
    # gated hard — every completed view byte-identical to a reference
    # (view_mismatches 0), every failure a clean stale-session
    # IntegrityError (wrong_errors 0), every attempt accounted for. The
    # cache hit rate is floored against baseline (the post-churn warm sweep
    # makes its floor schedule-independent); serves/sec and latency are
    # machine-dependent and never gated.
    if "load" not in fresh:
        rc |= fail("load section missing from fresh run")
    else:
        load = fresh["load"]
        if load["serves_completed"] == 0:
            rc |= fail("load: no serve completed")
        if load["view_mismatches"] != 0:
            rc |= fail(
                f'load: {load["view_mismatches"]} completed views matched '
                f'no published version')
        if load["wrong_errors"] != 0:
            rc |= fail(
                f'load: {load["wrong_errors"]} failures were not clean '
                f'IntegrityErrors')
        accounted = load["serves_completed"] + load["integrity_rejections"]
        if accounted != load["serves_attempted"]:
            rc |= fail(
                f'load: {accounted} outcomes for '
                f'{load["serves_attempted"]} attempts')
        if "load" in baseline:
            ref = baseline["load"]
            same_config = all(
                load[k] == ref[k]
                for k in ("corpus_bytes", "threads", "serves_per_thread",
                          "version_bumps"))
            if same_config:
                if load["serves_attempted"] != ref["serves_attempted"]:
                    rc |= fail(
                        f'load: serves_attempted {load["serves_attempted"]} '
                        f'!= deterministic baseline {ref["serves_attempted"]}')
                floor = ref["cache_hit_rate"] * 0.8
                if load["cache_hit_rate"] < floor:
                    rc |= fail(
                        f'load: cache_hit_rate {load["cache_hit_rate"]:.3f} '
                        f'under baseline floor {floor:.3f}')

    # Cipher backends (PR 7): the cross-backend equivalence matrix is the
    # contract that makes the backend a pure performance axis, so it is
    # gated exactly — every backend must have served byte-identical views
    # across the corpus family × variant × rule-family matrix, and every
    # store-level attack must have been rejected on every backend. The
    # matrix must cover the paper-faithful default ("3des") and the
    # hardware path ("aes"); per-backend throughputs are machine-dependent
    # and never gated here (the bench itself gates the AES-NI target).
    if "backends" not in fresh:
        rc |= fail("backends section missing from fresh run")
    else:
        equiv = fresh["backends"].get("equivalence", {})
        for name in ("3des", "aes", "aes-portable"):
            if name not in equiv.get("backends", []):
                rc |= fail(f"backends: {name} missing from equivalence matrix")
        if equiv.get("serves", 0) == 0:
            rc |= fail("backends: equivalence matrix ran no serves")
        if not equiv.get("views_identical", False):
            rc |= fail("backends: views diverge across cipher backends")
        if not equiv.get("all_attacks_rejected", False):
            rc |= fail(
                f'backends: only {equiv.get("attacks_rejected", 0)} of '
                f'{equiv.get("attacks_total", 0)} attacks rejected')
        perf = {e["backend"]: e
                for e in fresh["backends"].get("nc_closed_world", [])}
        for name in ("3des", "aes"):
            if name not in perf:
                rc |= fail(f"backends: no {name} closed_world NC serve")

    # Latency sweep (PR 9): the paper's architecture claim priced across a
    # slow link — at every injected RTT point, TCSBR with skip navigation
    # must beat the stream-all (NC) baseline on wire bytes AND wall clock.
    # The win booleans are within-run comparisons on the same machine and
    # the same paced proxy, so they are gated hard; absolute wall-clock
    # values are machine-dependent and never compared across runs. Skip
    # wire bytes are deterministic and gated against baseline.
    if "latency_sweep" not in fresh:
        rc |= fail("latency_sweep section missing from fresh run")
    else:
        points = {p["rtt_ms"]: p for p in fresh["latency_sweep"]["points"]}
        for rtt in (0, 1, 10):
            if rtt not in points:
                rc |= fail(f"latency_sweep: {rtt} ms RTT point missing")
                continue
            point = points[rtt]
            if not point.get("skip_wins_wire", False):
                rc |= fail(
                    f"latency_sweep/{rtt}ms: skip did not beat stream-all "
                    f"on wire bytes")
            if not point.get("skip_wins_wall_clock", False):
                rc |= fail(
                    f"latency_sweep/{rtt}ms: skip did not beat stream-all "
                    f"on wall clock")
            if "latency_sweep" in baseline:
                base_points = {p["rtt_ms"]: p
                               for p in baseline["latency_sweep"]["points"]}
                ref = base_points.get(rtt)
                cur = point["tcsbr_skip"]["wire_bytes"]
                if ref is not None:
                    ref_wire = ref["tcsbr_skip"]["wire_bytes"]
                    if cur > ref_wire * (1 + tolerance):
                        rc |= fail(
                            f"latency_sweep/{rtt}ms: skip wire_bytes {cur} "
                            f"> baseline {ref_wire} (+{tolerance:.0%})")

    # Fault matrix (PR 9): the transport contract, cell by cell. Every
    # injected fault class x cipher backend x cache temperature must have
    # resolved to a typed retry-success or a clean terminal IntegrityError
    # — zero divergent views, zero uncontracted error classes. Retry and
    # reconnect counts are scheduling-dependent and never gated.
    if "fault_matrix" not in fresh:
        rc |= fail("fault_matrix section missing from fresh run")
    else:
        matrix = fresh["fault_matrix"]
        if matrix.get("view_mismatches", 1) != 0:
            rc |= fail(
                f'fault_matrix: {matrix["view_mismatches"]} view mismatches')
        if matrix.get("contract_violations", 1) != 0:
            rc |= fail(
                f'fault_matrix: {matrix["contract_violations"]} outcomes '
                f'outside the transport contract')
        cells = matrix.get("cells", [])
        seen = {(c["fault"], c["backend"], c["cache"]) for c in cells}
        for fault in ("drop_after_bytes", "stall", "close_mid_response",
                      "duplicate_response", "truncate_frame", "corrupt_byte"):
            for backend in ("3des", "aes"):
                for cache in ("cold", "warm"):
                    if (fault, backend, cache) not in seen:
                        rc |= fail(
                            f"fault_matrix: cell {fault}/{backend}/{cache} "
                            f"missing")
        for cell in cells:
            if cell["outcome"] not in ("retried_success", "integrity_error"):
                rc |= fail(
                    f'fault_matrix/{cell["fault"]}/{cell["backend"]}/'
                    f'{cell["cache"]}: outcome {cell["outcome"]} outside '
                    f'the contract')

    if not fresh.get("checks_passed", False):
        rc |= fail("bench-internal checks failed")
    if rc == 0:
        print("bench within baseline: no regression in requests, wire "
              "bytes, or peak buffered bytes")
    return rc


if __name__ == "__main__":
    sys.exit(main())
