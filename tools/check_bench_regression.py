#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh csxa_bench run against the committed
baseline and fail if terminal round trips, wire bytes, or peak buffered
bytes regress on any scenario/variant — the three quantities the fetch
planner, the chunk-amortized proofs and the deferral budget exist to hold
down. Wall-clock timings are informational (machine-dependent) and are
never gated.

Usage: check_bench_regression.py BASELINE.json FRESH.json [tolerance]

`tolerance` is a fractional slack (default 0.02) absorbing byte-count
jitter from layout-incidental effects; requests are gated exactly.
"""

import json
import sys


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline = json.load(open(sys.argv[1]))
    fresh = json.load(open(sys.argv[2]))
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.02

    rc = 0
    base_scenarios = {s["name"]: s for s in baseline["scenarios"]}
    for scenario in fresh["scenarios"]:
        base = base_scenarios.get(scenario["name"])
        if base is None:
            continue  # New scenario: nothing to regress against.
        base_variants = {v["variant"]: v for v in base["variants"]}
        for variant in scenario["variants"]:
            ref = base_variants.get(variant["variant"])
            if ref is None:
                continue
            where = f'{scenario["name"]}/{variant["variant"]}'
            if not variant.get("view_matches_reference", False):
                rc |= fail(f"{where}: authorized view diverges")
            if variant["requests"] > ref["requests"]:
                rc |= fail(
                    f'{where}: requests {variant["requests"]} > '
                    f'baseline {ref["requests"]}')
            for key in ("wire_bytes", "peak_buffered_bytes"):
                if variant[key] > ref[key] * (1 + tolerance):
                    rc |= fail(
                        f'{where}: {key} {variant[key]} > '
                        f'baseline {ref[key]} (+{tolerance:.0%})')

    for strategy in ("deferred", "buffered"):
        ref = baseline["deferred_mode"][strategy]
        cur = fresh["deferred_mode"][strategy]
        for key in ("wire_bytes", "peak_buffered_bytes"):
            if cur[key] > ref[key] * (1 + tolerance):
                rc |= fail(
                    f'deferred_mode/{strategy}: {key} {cur[key]} > '
                    f'baseline {ref[key]} (+{tolerance:.0%})')

    # Shared-cache economics must not regress: a warm serve that starts
    # re-shipping tree hashes or digests has lost cross-serve sharing, and
    # its wire bytes are gated like every other scenario. The absolute
    # gates depend only on the fresh run, so they apply even against a
    # baseline predating the warm_cache section.
    if "warm_cache" not in fresh:
        rc |= fail("warm_cache section missing from fresh run")
    else:
        warm = fresh["warm_cache"]["warm"]
        if warm["proof_hashes_shipped"] != 0 or warm["digest_bytes_shipped"] != 0:
            rc |= fail(
                'warm_cache/warm: integrity material re-shipped '
                f'({warm["proof_hashes_shipped"]} hashes, '
                f'{warm["digest_bytes_shipped"]} digest bytes)')
        if not fresh["warm_cache"].get("warm_under_60_percent", False):
            rc |= fail("warm_cache: warm serve not under 60% of cold wire")
        if "warm_cache" in baseline:
            for serve in ("cold", "warm"):
                ref = baseline["warm_cache"][serve]
                cur = fresh["warm_cache"][serve]
                if cur["wire_bytes"] > ref["wire_bytes"] * (1 + tolerance):
                    rc |= fail(
                        f'warm_cache/{serve}: wire_bytes {cur["wire_bytes"]} '
                        f'> baseline {ref["wire_bytes"]} (+{tolerance:.0%})')

    if not fresh.get("checks_passed", False):
        rc |= fail("bench-internal checks failed")
    if rc == 0:
        print("bench within baseline: no regression in requests, wire "
              "bytes, or peak buffered bytes")
    return rc


if __name__ == "__main__":
    sys.exit(main())
