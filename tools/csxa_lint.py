#!/usr/bin/env python3
"""csxa security-contract linter.

Enforces the project invariants no generic static analyzer knows — the
contracts the paper's threat model rests on, machine-checked at review
time instead of rediscovered as runtime flakes:

  error-taxonomy
      In the attacker-input modules (src/crypto wire/verification code,
      src/server, src/net transport), Status failure constructors are
      restricted to a per-module allowlist, and functions on the
      verification path (Decode*/Verify*/DecryptVerified*) may fail ONLY
      as IntegrityError.
      This is the PR 7 bug class: a stale-session race misclassified as
      InvalidArgument slipped through every attack test that only checked
      "some error happened".

  duplicate-integrity-message
      Every Status::IntegrityError message literal must be unique across
      src/. The fuzz corpus and the load harness pin failures by class
      and diagnose them by message; two sites sharing one message make a
      pinned rejection ambiguous.

  unguarded-memcpy
      No raw memcpy/memcmp on a container's .data() with a runtime size
      unless a size guard appears in the enclosing statement (or the
      statement right above it). This is the PR 7 UBSan class: memcpy
      from a zero-length span's .data() is UB even for zero bytes.

  naked-mutex
      No std::mutex / std::lock_guard / std::unique_lock / etc. outside
      src/common/thread_annotations.h. A naked std::mutex is invisible to
      clang Thread Safety Analysis, so whatever it guards silently drops
      out of the compile-time locking contract.

  taint-release
      Every UnverifiedBytes::ReleaseUnverified() call site — the single
      typestate escape hatch of src/common/tainted.h — must carry a
      written justification waiver. A naked escape is a finding: the
      allowlist of pre-verification byte uses is reviewed, not implied.

  byte-reinterpret
      No naked reinterpret_cast to byte/char pointers outside
      src/common/bytes.h (common::AsBytes / common::AsChars). Scattered
      byte reinterprets are exactly how tainted terminal bytes get
      laundered past the typestate wall without tripping the type system.

  taint-dataflow
      Intraprocedural source→sink tracking of the verify-before-trust
      invariant. Sources: BatchSource reads (ReadBatch/ReadRange), wire
      decodes (DecodeBatchResponse) and ReleaseUnverified() escapes.
      Sinks: navigator feeds (OpenBuffer), witness minting
      (VerifiedViewOf) and digest-cache writes (Record). Any path from a
      source to a sink that does not pass a verification mint site
      (DecryptVerified / DecryptVerifiedBatch / VerifyChunkAgainstMaterial
      / VerifyData) — including laundering through assignments, copies,
      raw pointers or memcpy — is a finding. The PR 1 range-narrowing
      decrypt and PR 6 cache-poisoning bugs were both instances of this
      pattern, found dynamically; this pins the class statically.

Engines: a libclang AST engine (preferred when the clang python bindings
are importable — CI installs them) and a token-level text engine that is
always available; `--engine auto` uses libclang per file and falls back
to the text engine wherever parsing is unavailable, so the gate never
depends on the host having clang (pass --strict to make any fallback a
hard error — what CI runs, so the AST checks can never silently vanish).
Both engines share the statement-level dataflow core; libclang
contributes AST-accurate function extents. Both are validated against
the fixture tree in tools/lint_fixtures by `--self-test`.

A site may waive one check with a justification comment on its own line
or the line above:
    // csxa-lint: allow(<check-name>) <reason>
The reason is mandatory; a bare waiver is itself a finding.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Policy
# --------------------------------------------------------------------------

FAILURE_CONSTRUCTORS = {
    "InvalidArgument", "ParseError", "OutOfRange", "IntegrityError",
    "Corruption", "NotSupported", "ResourceExhausted", "Internal",
    "Unavailable", "DeadlineExceeded",
}

# Per-module allowlists of Status failure constructors, first match wins
# (paths are relative to --root, '/'-separated). Rationale per line: the
# point is that *adding* a new failure class to an attacker-input module is
# a reviewed policy change, not a drive-by.
TAXONOMY_POLICY = [
    # The wire decoder faces raw attacker bytes: every failure is an
    # integrity failure by definition.
    ("src/crypto/wire_format.cc", {"IntegrityError"}),
    # Store/decryptor: IntegrityError on the verification path,
    # InvalidArgument for owner/SOE API misuse (layout validation, output
    # buffer sizing), OutOfRange for honest range math at the terminal.
    ("src/crypto/secure_store.cc",
     {"IntegrityError", "InvalidArgument", "OutOfRange"}),
    # The digest cache never constructs failures (pure cache; verification
    # failures belong to its callers).
    ("src/crypto/digest_cache.cc", set()),
    # Merkle proof-shape errors are wrapped into IntegrityError by every
    # verification-path caller; the module itself reports malformed
    # *caller* input (InvalidArgument) and non-converging proofs
    # (Corruption).
    ("src/crypto/merkle.cc", {"InvalidArgument", "Corruption"}),
    # Backend registry: unknown backend names are caller errors.
    ("src/crypto/cipher_backend.cc", {"InvalidArgument"}),
    # Transport layer: the two retryable classes RemoteBatchSource's
    # retry loop is contracted on (Unavailable, DeadlineExceeded) plus
    # the terminal classes the error relay forwards verbatim
    # (IntegrityError, InvalidArgument). Anything else escaping a socket
    # would be uncontracted for every retry policy built on this layer.
    ("src/net/",
     {"Unavailable", "DeadlineExceeded", "IntegrityError",
      "InvalidArgument"}),
    # Default for the rest of src/crypto and all of src/server: the
    # integrity class plus caller errors; anything else (Corruption,
    # Internal, ...) is a policy change.
    ("src/crypto/", {"IntegrityError", "InvalidArgument"}),
    ("src/server/", {"IntegrityError", "InvalidArgument"}),
]

# Functions on the verification path: whatever the module allowlist says,
# these may only fail as IntegrityError — they judge attacker input, and a
# non-integrity class here is exactly the PR 7 misclassification.
STRICT_FUNCTION_RE = re.compile(r"^(Decode|Verify|DecryptVerified)")
STRICT_ALLOWED = {"IntegrityError"}

# Directories scanned per check (relative to root).
TAXONOMY_DIRS = ("src/crypto", "src/server", "src/net")
MESSAGE_DIRS = ("src",)
MEMCPY_DIRS = ("src", "tools")
MUTEX_DIRS = ("src", "tools")
MUTEX_EXEMPT = "src/common/thread_annotations.h"
TAINT_DIRS = ("src", "tools", "tests")
# The wrapper's own definition and the one sanctioned cast site.
TAINT_EXEMPT = "src/common/tainted.h"
BYTES_EXEMPT = "src/common/bytes.h"

# The reason must sit on the waiver's own line ([^\S\n]: spaces but not
# the newline) — otherwise the next code line would masquerade as one.
WAIVER_RE = re.compile(
    r"csxa-lint:\s*allow\(([a-z-]+)\)[^\S\n]*(\S[^\n]*)?")

CHECKS = ("error-taxonomy", "duplicate-integrity-message",
          "unguarded-memcpy", "naked-mutex", "taint-release",
          "byte-reinterpret", "taint-dataflow")


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return "%s:%d: error: [%s] %s" % (self.path, self.line, self.check,
                                          self.message)


# --------------------------------------------------------------------------
# Shared lexical helpers
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Returns text with comments and string/char literal *contents* blanked
    (same length, newlines preserved) so structural scans never match inside
    them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n) - i - 1) +
                       (quote if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def waivers_by_line(text):
    """line -> (check, has_reason) for every waiver comment, applying to
    the waiver's own line and the one below."""
    waivers = {}
    for m in WAIVER_RE.finditer(text):
        line = line_of(text, m.start())
        entry = (m.group(1), bool(m.group(2)))
        waivers[line] = entry
        waivers[line + 1] = entry
    return waivers


def waived(waivers, line, check, findings, path):
    w = waivers.get(line)
    if w is None or w[0] != check:
        return False
    if not w[1]:
        findings.append(Finding(path, line, check,
                                "waiver without a justification"))
    return True


def enclosing_functions(stripped):
    """Best-effort map of brace regions to function names.

    Returns a list of (start_offset, end_offset, name) for every
    function-looking brace block, outermost first. Namespace / class /
    enum braces are classified out by the text preceding their '{'."""
    regions = []
    stack = []  # (offset, kind, name)
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "{":
            head = stripped[max(0, i - 400):i]
            kind, name = _classify_block(head)
            stack.append((i, kind, name))
        elif c == "}":
            if stack:
                start, kind, name = stack.pop()
                if kind == "function":
                    regions.append((start, i, name))
        i += 1
    return regions


_FUNC_NAME_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:::\s*[A-Za-z_]\w*\s*)*\([^()]*(?:\([^()]*\)[^()]*)*\)"
    r"\s*(?:const|noexcept|override|final|->\s*[\w:<>,&*\s]+|\s)*$")


_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                     "sizeof", "do", "else", "try"}


def _classify_block(head):
    head = head.rstrip()
    if re.search(r"\bnamespace\b[^{};]*$", head):
        return "other", None
    if re.search(r"\b(struct|class|union|enum)\b[^(){};]*$", head):
        return "other", None
    if head.endswith("=") or head.endswith("return"):
        return "other", None  # Braced initializer.
    m = _FUNC_NAME_RE.search(head)
    if m:
        # The name is the identifier right before the final '(' — walk the
        # matched text for the last identifier preceding its paren group.
        sig = m.group(0)
        paren = sig.index("(")
        name_m = re.search(r"([A-Za-z_]\w*)\s*$", sig[:paren])
        if name_m and name_m.group(1) not in _CONTROL_KEYWORDS:
            return "function", name_m.group(1)
    return "other", None


def function_at(regions, offset):
    best = None
    for start, end, name in regions:
        if start <= offset <= end:
            if best is None or start > best[0]:
                best = (start, name)
    return best[1] if best else None


def extract_call(text, open_paren):
    """Returns (args_text, end_offset) of the parenthesized call starting at
    text[open_paren] == '('."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:j], j
    return text[open_paren + 1:], len(text)


def leading_literal(raw_args):
    """Concatenated leading string literal of an argument list, or None."""
    s = raw_args.lstrip()
    parts = []
    while s.startswith('"'):
        m = re.match(r'"((?:[^"\\]|\\.)*)"\s*', s)
        if not m:
            break
        parts.append(m.group(1))
        s = s[m.end():]
    if not parts:
        return None
    return "".join(parts)


# --------------------------------------------------------------------------
# Text engine: error-taxonomy + unguarded-memcpy
# --------------------------------------------------------------------------

STATUS_CALL_RE = re.compile(r"Status::([A-Za-z]+)\s*\(")
MEM_CALL_RE = re.compile(r"(?:std::)?mem(?:cpy|cmp|move|set)\s*\(")
GUARD_TOKEN_RE = re.compile(r"[<>]|!=|==|\bempty\s*\(|\bmin\b|\bmax\b")
INT_LITERAL_RE = re.compile(r"^(?:\(\s*)*(?:\d+|0x[0-9a-fA-F]+|sizeof\b.*)")


def split_top_level_args(args):
    out, depth, cur = [], 0, []
    for ch in args:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return [a.strip() for a in out]


class TextEngine:
    name = "text"

    def taxonomy(self, path, rel, text, stripped, waivers, findings):
        allowed = _allowlist_for(rel)
        if allowed is None:
            return
        regions = enclosing_functions(stripped)
        for m in STATUS_CALL_RE.finditer(stripped):
            ctor = m.group(1)
            if ctor not in FAILURE_CONSTRUCTORS:
                continue
            line = line_of(stripped, m.start())
            func = function_at(regions, m.start())
            _judge_taxonomy(path, rel, line, ctor, func, allowed, waivers,
                            findings)

    def memcpy(self, path, rel, text, stripped, waivers, findings):
        if not rel.startswith(tuple(d + "/" for d in MEMCPY_DIRS)):
            return
        lines = stripped.split("\n")
        for m in MEM_CALL_RE.finditer(stripped):
            open_paren = stripped.index("(", m.start())
            args, _ = extract_call(stripped, open_paren)
            line = line_of(stripped, m.start())
            _judge_memcpy(path, line, args, lines, waivers, findings)

    def dataflow(self, path, rel, text, stripped, waivers, findings):
        regions = [(a, b) for a, b, _ in enclosing_functions(stripped)]
        _dataflow_file(path, rel, stripped, waivers, findings, regions)


def _allowlist_for(rel):
    if not rel.startswith(tuple(d + "/" for d in TAXONOMY_DIRS)):
        return None
    for prefix, allowed in TAXONOMY_POLICY:
        if rel == prefix or rel.startswith(prefix):
            return allowed
    return None


def _judge_taxonomy(path, rel, line, ctor, func, allowed, waivers, findings):
    if waived(waivers, line, "error-taxonomy", findings, path):
        return
    if func is not None and STRICT_FUNCTION_RE.match(func):
        if ctor not in STRICT_ALLOWED:
            findings.append(Finding(
                path, line, "error-taxonomy",
                "Status::%s in verification-path function %s(): attacker "
                "input must fail as IntegrityError" % (ctor, func)))
            return
    if ctor not in allowed:
        findings.append(Finding(
            path, line, "error-taxonomy",
            "Status::%s not in the failure-constructor allowlist for %s "
            "(allowed: %s)" % (ctor, rel,
                               ", ".join(sorted(allowed)) or "none")))


def _judge_memcpy(path, line, args, lines, waivers, findings):
    if ".data()" not in args:
        return
    parts = split_top_level_args(args)
    if len(parts) >= 3 and INT_LITERAL_RE.match(parts[-1]):
        return  # Compile-time-constant size: cannot be a zero-length span.
    if waived(waivers, line, "unguarded-memcpy", findings, path):
        return
    # Guard window: the call's own statement (which may start on earlier
    # lines) plus the two lines above it — enough for the idioms
    #   if (k != 0) std::memcpy(...)
    #   if (whole > 0) {\n  std::memcpy(...)
    lo = max(0, line - 3)
    window = "\n".join(lines[lo:line])
    for cond in re.finditer(r"\bif\s*\(", window):
        cond_text, _ = extract_call(window, window.index("(", cond.start()))
        if GUARD_TOKEN_RE.search(cond_text):
            return
    findings.append(Finding(
        path, line, "unguarded-memcpy",
        "raw mem* on container .data() with a runtime size and no size "
        "guard in the enclosing statement (zero-length spans hand mem* a "
        "null/one-past-end pointer: UB)"))


# --------------------------------------------------------------------------
# Taint dataflow core (shared by both engines)
# --------------------------------------------------------------------------

SOURCE_CALL_RE = re.compile(
    r"\b(?:ReadBatch|ReadRange|DecodeBatchResponse)\s*\(|"
    r"(?:\.|->)\s*ReleaseUnverified\s*\(")
MINT_CALL_RE = re.compile(
    r"\b(?:DecryptVerifiedBatch|DecryptVerified|VerifyChunkAgainstMaterial|"
    r"VerifyData)\s*\(")
SINK_CALL_RE = re.compile(
    r"\bOpenBuffer\s*\(|\bVerifiedViewOf\s*\(|(?:->|\.)\s*Record\s*\(")
ASSIGN_OR_RETURN_RE = re.compile(r"\bCSXA_ASSIGN_OR_RETURN\s*\(")
MEMCPY_PROP_RE = re.compile(r"\b(?:std::)?mem(?:cpy|move)\s*\(")
_LAST_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def _statements(stripped, begin, end):
    """Yields (offset, text) statement slices of stripped[begin:end], split
    on ';' and braces. Nested-block statements are included — the scan is
    per enclosing function, flow-insensitively over its whole body."""
    start = begin
    for i in range(begin, end):
        if stripped[i] in ";{}":
            yield start, stripped[start:i]
            start = i + 1
    yield start, stripped[start:end]


def _find_top_assign(stmt):
    """Offset of a top-level simple '=' (not ==/!=/<=/>= or inside parens),
    or None."""
    depth = 0
    for i, ch in enumerate(stmt):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "=" and depth == 0:
            if i > 0 and stmt[i - 1] in "=!<>+-*/|&^%":
                continue
            if i + 1 < len(stmt) and stmt[i + 1] == "=":
                continue
            return i
    return None


def _scan_taint_region(path, stripped, begin, end, waivers, findings, seen):
    """Flow-insensitive forward taint scan of one function region.

    An identifier becomes tainted when a source call's result reaches it
    (assignment, declaration-init, CSXA_ASSIGN_OR_RETURN, memcpy/memmove
    destination — the laundering moves); a statement that invokes a sink
    while any tainted identifier (or a source call itself) appears in it,
    without passing a verification mint site, is a finding."""
    tainted = set()

    def has_taint(fragment):
        if SOURCE_CALL_RE.search(fragment):
            return True
        return any(re.search(r"\b%s\b" % re.escape(t), fragment)
                   for t in tainted)

    for off, stmt in _statements(stripped, begin, end):
        if MINT_CALL_RE.search(stmt):
            continue  # Verification path: its reads are the point.
        sink = SINK_CALL_RE.search(stmt)
        if sink and has_taint(stmt):
            line = line_of(stripped, off + sink.start())
            if (path, line) not in seen:
                seen.add((path, line))
                if not waived(waivers, line, "taint-dataflow", findings,
                              path):
                    findings.append(Finding(
                        path, line, "taint-dataflow",
                        "unverified bytes reach a trust sink without "
                        "passing a verification mint site "
                        "(DecryptVerified*/VerifyChunkAgainstMaterial)"))
        m = ASSIGN_OR_RETURN_RE.search(stmt)
        if m:
            args, _ = extract_call(stmt, stmt.index("(", m.start()))
            parts = split_top_level_args(args)
            if len(parts) >= 2 and has_taint(",".join(parts[1:])):
                lm = _LAST_IDENT_RE.search(parts[0])
                if lm:
                    tainted.add(lm.group(1))
            continue
        m = MEMCPY_PROP_RE.search(stmt)
        if m:
            args, _ = extract_call(stmt, stmt.index("(", m.start()))
            parts = split_top_level_args(args)
            if len(parts) >= 2 and has_taint(",".join(parts[1:])):
                dm = re.search(r"[A-Za-z_]\w*", parts[0])
                if dm:
                    tainted.add(dm.group(0))
            continue
        eq = _find_top_assign(stmt)
        if eq is not None:
            lhs, rhs = stmt[:eq], stmt[eq + 1:]
            if has_taint(rhs):
                lm = _LAST_IDENT_RE.search(lhs.rstrip(" \t&*"))
                if lm:
                    tainted.add(lm.group(1))
            continue
        # Declaration-init without '=': `Type name(tainted...)`. Requires a
        # type-ish token right before the name so plain calls don't taint
        # their callee.
        dm = re.search(r"([\w>\]])\s+([A-Za-z_]\w*)\s*\(", stmt)
        if dm:
            prev = re.search(r"([A-Za-z_]\w*)$", stmt[:dm.start() + 1])
            if prev and prev.group(1) not in _CONTROL_KEYWORDS:
                args, _ = extract_call(stmt, stmt.index("(", dm.end() - 1))
                if has_taint(args):
                    tainted.add(dm.group(2))


def _dataflow_file(path, rel, stripped, waivers, findings, regions):
    """Runs the taint scan over every function region (offset pairs)."""
    if not rel.startswith(tuple(d + "/" for d in TAINT_DIRS)):
        return
    seen = set()
    for begin, end in regions:
        _scan_taint_region(path, stripped, begin, end, waivers, findings,
                           seen)


# --------------------------------------------------------------------------
# libclang engine: same checks, AST-accurate function attribution
# --------------------------------------------------------------------------

class LibclangEngine:
    name = "libclang"

    def __init__(self, root):
        import clang.cindex  # noqa: F401 — probes availability.
        self._cindex = clang.cindex
        self._index = clang.cindex.Index.create()
        self._args = ["-std=c++20", "-I", os.path.join(root, "src")]

    def _parse(self, path):
        tu = self._index.parse(path, args=self._args)
        for d in tu.diagnostics:
            if d.severity >= self._cindex.Diagnostic.Fatal:
                raise RuntimeError("libclang failed to parse %s: %s" %
                                   (path, d.spelling))
        return tu

    def _function_extents(self, tu, path):
        """(start_line, end_line, name) for every function definition in
        this file; calls are attributed to the innermost containing extent.
        Lambdas are deliberately excluded so a call inside a lambda
        attributes to the named function that owns it (matching the text
        engine and the intent of the strict-function rule)."""
        kinds = self._cindex.CursorKind
        extents = []
        for c in tu.cursor.walk_preorder():
            if c.kind not in (kinds.FUNCTION_DECL, kinds.CXX_METHOD,
                              kinds.FUNCTION_TEMPLATE, kinds.CONSTRUCTOR,
                              kinds.DESTRUCTOR):
                continue
            if not c.is_definition():
                continue
            loc = c.location
            if loc.file is None or os.path.abspath(loc.file.name) != \
                    os.path.abspath(path):
                continue
            extents.append((c.extent.start.line, c.extent.end.line,
                            c.spelling))
        return extents

    @staticmethod
    def _enclosing_function(extents, line):
        best = None
        for start, end, name in extents:
            if start <= line <= end:
                if best is None or start > best[0]:
                    best = (start, name)
        return best[1] if best else None

    def taxonomy(self, path, rel, text, stripped, waivers, findings):
        allowed = _allowlist_for(rel)
        if allowed is None:
            return
        kinds = self._cindex.CursorKind
        tu = self._parse(path)
        extents = self._function_extents(tu, path)
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != kinds.CALL_EXPR:
                continue
            if cursor.spelling not in FAILURE_CONSTRUCTORS:
                continue
            ref = cursor.referenced
            parent = ref.semantic_parent if ref is not None else None
            if parent is None or parent.spelling != "Status":
                continue
            loc = cursor.location
            if loc.file is None or os.path.abspath(loc.file.name) != \
                    os.path.abspath(path):
                continue
            func = self._enclosing_function(extents, loc.line)
            _judge_taxonomy(path, rel, loc.line, cursor.spelling, func,
                            allowed, waivers, findings)

    def memcpy(self, path, rel, text, stripped, waivers, findings):
        if not rel.startswith(tuple(d + "/" for d in MEMCPY_DIRS)):
            return
        kinds = self._cindex.CursorKind
        lines = stripped.split("\n")
        tu = self._parse(path)
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != kinds.CALL_EXPR:
                continue
            if cursor.spelling not in ("memcpy", "memcmp", "memmove",
                                       "memset"):
                continue
            loc = cursor.location
            if loc.file is None or os.path.abspath(loc.file.name) != \
                    os.path.abspath(path):
                continue
            ext = cursor.extent
            args = text[_offset_of(text, ext.start.line, ext.start.column):
                        _offset_of(text, ext.end.line, ext.end.column)]
            paren = args.find("(")
            if paren == -1:
                continue
            _judge_memcpy(path, loc.line, args[paren + 1:-1], lines, waivers,
                          findings)

    def dataflow(self, path, rel, text, stripped, waivers, findings):
        if not rel.startswith(tuple(d + "/" for d in TAINT_DIRS)):
            return
        tu = self._parse(path)
        line_starts = [0]
        for i, ch in enumerate(stripped):
            if ch == "\n":
                line_starts.append(i + 1)
        regions = []
        for start_line, end_line, _ in self._function_extents(tu, path):
            begin = line_starts[min(start_line - 1, len(line_starts) - 1)]
            end = (line_starts[end_line] if end_line < len(line_starts)
                   else len(stripped))
            regions.append((begin, end))
        _dataflow_file(path, rel, stripped, waivers, findings, regions)


def _offset_of(text, line, column):
    off = 0
    for _ in range(line - 1):
        off = text.index("\n", off) + 1
    return off + column - 1


# --------------------------------------------------------------------------
# Whole-tree textual checks (identical under both engines)
# --------------------------------------------------------------------------

INTEGRITY_CALL_RE = re.compile(r"Status::IntegrityError\s*\(")

MUTEX_TOKEN_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable)\b")


def check_integrity_messages(files, findings):
    seen = {}  # message -> (path, line)
    for path, rel, text, stripped, waivers in files:
        if not rel.startswith(tuple(d + "/" for d in MESSAGE_DIRS)):
            continue
        for m in INTEGRITY_CALL_RE.finditer(stripped):
            open_paren = stripped.index("(", m.start())
            _, end = extract_call(stripped, open_paren)
            literal = leading_literal(text[open_paren + 1:end])
            line = line_of(stripped, m.start())
            if literal is None:
                continue  # Message assembled at runtime; class still pinned.
            if waived(waivers, line, "duplicate-integrity-message", findings,
                      path):
                continue
            if literal in seen:
                first = seen[literal]
                findings.append(Finding(
                    path, line, "duplicate-integrity-message",
                    "IntegrityError message %r already used at %s:%d — fuzz "
                    "pins become ambiguous" % (literal, first[0], first[1])))
            else:
                seen[literal] = (path, line)


def check_naked_mutex(files, findings):
    for path, rel, text, stripped, waivers in files:
        if not rel.startswith(tuple(d + "/" for d in MUTEX_DIRS)):
            continue
        if rel == MUTEX_EXEMPT:
            continue
        for m in MUTEX_TOKEN_RE.finditer(stripped):
            line = line_of(stripped, m.start())
            if waived(waivers, line, "naked-mutex", findings, path):
                continue
            findings.append(Finding(
                path, line, "naked-mutex",
                "std::%s outside thread_annotations.h — invisible to clang "
                "Thread Safety Analysis; use csxa::Mutex / csxa::MutexLock"
                % m.group(1)))


RELEASE_CALL_RE = re.compile(r"(?:\.|->)\s*ReleaseUnverified\s*\(")
BYTE_REINTERPRET_RE = re.compile(
    r"reinterpret_cast\s*<\s*(?:const\s+)?"
    r"(?:unsigned\s+char|std::uint8_t|uint8_t|char)\s*\*\s*>")


def check_taint_release(files, findings):
    for path, rel, text, stripped, waivers in files:
        if not rel.startswith(tuple(d + "/" for d in TAINT_DIRS)):
            continue
        if rel == TAINT_EXEMPT:
            continue
        for m in RELEASE_CALL_RE.finditer(stripped):
            line = line_of(stripped, m.start())
            if waived(waivers, line, "taint-release", findings, path):
                continue
            findings.append(Finding(
                path, line, "taint-release",
                "ReleaseUnverified() without a justification — the typestate "
                "escape hatch requires // csxa-lint: allow(taint-release) "
                "<reason>"))


def check_byte_reinterpret(files, findings):
    for path, rel, text, stripped, waivers in files:
        if not rel.startswith(tuple(d + "/" for d in TAINT_DIRS)):
            continue
        if rel == BYTES_EXEMPT:
            continue
        for m in BYTE_REINTERPRET_RE.finditer(stripped):
            line = line_of(stripped, m.start())
            if waived(waivers, line, "byte-reinterpret", findings, path):
                continue
            findings.append(Finding(
                path, line, "byte-reinterpret",
                "naked byte reinterpret_cast outside common/bytes.h — use "
                "common::AsBytes()/AsChars() so the length travels with the "
                "cast"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect_files(root):
    files = []
    dirs = sorted({d.split("/")[0] for d in
                   TAXONOMY_DIRS + MESSAGE_DIRS + MEMCPY_DIRS + MUTEX_DIRS +
                   TAINT_DIRS})
    for top in dirs:
        for dirpath, _, names in os.walk(os.path.join(root, top)):
            for name in sorted(names):
                if not name.endswith((".cc", ".h")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                # The fixture tree is deliberate violations for --self-test;
                # scanning it in the real lint would defeat its purpose. The
                # negative-compile matrix is likewise deliberate laundering
                # that must not even compile.
                if rel.startswith(("tools/lint_fixtures/",
                                   "tests/typestate_compile_test/")):
                    continue
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                stripped = strip_comments_and_strings(text)
                files.append((path, rel, text, stripped,
                              waivers_by_line(text)))
    return files


def make_engine(kind, root):
    if kind in ("auto", "libclang"):
        try:
            return LibclangEngine(root)
        except Exception as e:  # noqa: BLE001 — any import/ABI failure.
            if kind == "libclang":
                raise SystemExit("csxa_lint: libclang engine unavailable: %s"
                                 % e)
    return TextEngine()


def run_lint(root, engine_kind, strict=False):
    files = collect_files(root)
    engine = make_engine(engine_kind, root)
    if strict and engine.name != "libclang":
        raise SystemExit("csxa_lint: --strict requires the libclang engine "
                         "(python3-clang); refusing to run text-only")
    text_engine = TextEngine()
    findings = []
    for path, rel, text, stripped, waivers in files:
        eng = engine
        try:
            eng.taxonomy(path, rel, text, stripped, waivers, findings)
            eng.memcpy(path, rel, text, stripped, waivers, findings)
            eng.dataflow(path, rel, text, stripped, waivers, findings)
        except SystemExit:
            raise
        except Exception as e:  # AST engine choked on this file.
            if eng is text_engine:
                raise
            if strict:
                # The silent per-file fallback is exactly the hole --strict
                # closes: CI must never quietly lose the AST checks.
                raise SystemExit("csxa_lint: libclang failed on %s under "
                                 "--strict: %s" % (path, e))
            text_engine.taxonomy(path, rel, text, stripped, waivers, findings)
            text_engine.memcpy(path, rel, text, stripped, waivers, findings)
            text_engine.dataflow(path, rel, text, stripped, waivers, findings)
    check_integrity_messages(files, findings)
    check_naked_mutex(files, findings)
    check_taint_release(files, findings)
    check_byte_reinterpret(files, findings)
    return findings, engine.name


# --------------------------------------------------------------------------
# Self-test against the committed fixtures
# --------------------------------------------------------------------------

# (relative path, line, check) triples the fixture tree must produce —
# exactly these, no more. Lines are pinned so a drifting engine fails
# loudly rather than approximately.
EXPECTED_FIXTURE_FINDINGS = {
    ("src/crypto/wire_format.cc", 9, "error-taxonomy"),
    ("src/crypto/wire_format.cc", 14, "error-taxonomy"),
    ("src/crypto/secure_store.cc", 9, "error-taxonomy"),
    ("src/crypto/secure_store.cc", 24, "duplicate-integrity-message"),
    ("src/crypto/secure_store.cc", 31, "unguarded-memcpy"),
    ("src/server/document_service.cc", 8, "error-taxonomy"),
    ("src/server/document_service.cc", 15, "naked-mutex"),
    ("src/server/document_service.cc", 16, "naked-mutex"),
    ("src/server/document_service.cc", 22, "unguarded-memcpy"),
    ("src/net/transport.cc", 10, "error-taxonomy"),
    ("src/net/transport.cc", 15, "error-taxonomy"),
    ("src/taint/laundering.cc", 37, "taint-dataflow"),
    ("src/taint/laundering.cc", 48, "taint-dataflow"),
    ("src/taint/laundering.cc", 56, "taint-dataflow"),
    ("src/taint/laundering.cc", 61, "taint-release"),
    ("src/taint/laundering.cc", 67, "taint-release"),
    ("src/taint/laundering.cc", 72, "byte-reinterpret"),
}


def self_test(fixture_root):
    ok = True
    engines = ["text"]
    try:
        LibclangEngine(fixture_root)
        engines.append("libclang")
    except Exception:
        print("self-test: libclang unavailable, testing text engine only")
    for kind in engines:
        findings, name = run_lint(fixture_root, kind)
        got = {(os.path.relpath(f.path, fixture_root).replace(os.sep, "/"),
                f.line, f.check) for f in findings}
        missing = EXPECTED_FIXTURE_FINDINGS - got
        extra = got - EXPECTED_FIXTURE_FINDINGS
        if missing or extra:
            ok = False
            for item in sorted(missing):
                print("self-test[%s]: MISSED expected finding: %s:%d [%s]"
                      % (name, *item))
            for item in sorted(extra):
                print("self-test[%s]: UNEXPECTED finding: %s:%d [%s]"
                      % (name, *item))
        else:
            print("self-test[%s]: %d/%d seeded violations caught, no false "
                  "positives" % (name, len(got),
                                 len(EXPECTED_FIXTURE_FINDINGS)))
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root to lint (default: this script's repo)")
    ap.add_argument("--engine", choices=["auto", "text", "libclang"],
                    default="auto")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the committed fixture tree and assert every "
                         "seeded violation is caught")
    ap.add_argument("--strict", action="store_true",
                    help="fail (instead of falling back to the text engine) "
                         "when libclang is unavailable or cannot parse a "
                         "file — what CI runs")
    args = ap.parse_args()

    if args.self_test:
        fixture_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                    "lint_fixtures")
        sys.exit(0 if self_test(fixture_root) else 1)

    findings, engine = run_lint(args.root, args.engine, strict=args.strict)
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    if findings:
        print("csxa_lint[%s]: %d finding(s)" % (engine, len(findings)))
        sys.exit(1)
    print("csxa_lint[%s]: clean" % engine)


if __name__ == "__main__":
    main()
