// csxa_demo — end-to-end demonstration of the paper's pipeline:
//
//   XML text --SaxParser--> DOM --index::Encode--> Skip-index image
//     --SecureDocumentStore--> encrypted chunks on the untrusted terminal
//     --SecureFetcher/SoeDecryptor--> verified plaintext, fetched lazily
//     --DocumentNavigator--> SAX events
//     --pipeline::AuthorizedViewReader--> descend-vs-skip-vs-defer per the
//       evaluator's token analysis (subtrees proven inert are never
//       transferred; over-budget pending subtrees are skipped behind a
//       checkpoint and re-read only if granted)
//     --access::RuleEvaluator--> authorized pruned event stream
//     --pull loop / SerializingHandler--> authorized view, delivered
//
// With no arguments it runs the built-in sample (the paper's medical-folder
// example) verbosely; --selftest checks the produced view (with skipping
// on, off, and with the defer-everything budget) against the expected
// result and the tamper-detection path, exiting nonzero on any mismatch
// (this is the ctest smoke test).

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "common/status.h"
#include "crypto/secure_store.h"
#include "index/variants.h"
#include "pipeline/secure_pipeline.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"
#include "xml/stats.h"

namespace {

using namespace csxa;  // NOLINT

const char kSampleDocument[] = R"(<Folder>
  <Admin>
    <Name>Jane Doe</Name>
    <SSN>123-45-678</SSN>
    <Insurance>ACME Health</Insurance>
  </Admin>
  <MedActs>
    <Consult>
      <Date>2004-01-12</Date>
      <Diagnostic>flu</Diagnostic>
      <Prescription>rest</Prescription>
    </Consult>
    <Analysis>
      <Type>G3</Type>
      <Cholesterol>260</Cholesterol>
      <Comments>borderline</Comments>
    </Analysis>
    <Analysis>
      <Comments>ok</Comments>
      <Cholesterol>180</Cholesterol>
      <Type>G2</Type>
    </Analysis>
  </MedActs>
</Folder>)";

// The doctor sees the whole folder, except the administrative data (of
// which only the patient name reappears, by a more specific positive rule)
// and the comments of G3-typed analyses (a predicate-based denial). In the
// second Analysis the Type arrives *after* the Comments, so the evaluator
// must keep those comments pending until the predicate resolves.
const char kSampleRules[] = R"(# rule set of the running example
+ doctor: /Folder
- doctor: /Folder/Admin
+ doctor: /Folder/Admin/Name
- doctor: //Analysis[Type = G3]/Comments
+ doctor: //Prescription
# redundant: its node set is contained in "+ doctor: //Prescription"
+ doctor: /Folder/MedActs//Prescription
)";

const char kExpectedView[] =
    "<Folder><Admin><Name>Jane Doe</Name></Admin>"
    "<MedActs>"
    "<Consult><Date>2004-01-12</Date><Diagnostic>flu</Diagnostic>"
    "<Prescription>rest</Prescription></Consult>"
    "<Analysis><Type>G3</Type><Cholesterol>260</Cholesterol></Analysis>"
    "<Analysis><Comments>ok</Comments><Cholesterol>180</Cholesterol>"
    "<Type>G2</Type></Analysis>"
    "</MedActs></Folder>";

crypto::TripleDes::Key DemoKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x42 + 7 * i);
  }
  return key;
}

struct Options {
  bool selftest = false;
  bool verbose = true;
  bool enable_skip = true;
  uint64_t defer_budget = UINT64_MAX;  ///< Pending-subtree buffer budget.
  std::string doc_path;
  std::string rules_path;
  std::string subject = "doctor";
  index::Variant variant = index::Variant::kTcsbr;
  crypto::ChunkLayout layout;
  crypto::CipherBackendKind backend = crypto::CipherBackendKind::k3Des;
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

pipeline::SessionConfig DemoConfig(const Options& opt) {
  pipeline::SessionConfig cfg;
  cfg.variant = opt.variant;
  cfg.layout = opt.layout;
  cfg.key = DemoKey();
  cfg.enable_skip = opt.enable_skip;
  cfg.pending_buffer_budget = opt.defer_budget;
  cfg.backend = opt.backend;
  return cfg;
}

/// Re-runs the fetch path against a tampered store; returns true when the
/// integrity check caught the modification.
bool TamperIsDetected(const std::string& xml,
                      const std::vector<access::AccessRule>& rules,
                      const Options& opt) {
  auto session = pipeline::SecureSession::Build(xml, DemoConfig(opt));
  if (!session.ok()) return false;
  session.value().mutable_store()->TamperByte(
      session.value().encoded_bytes() / 2, 0x40);
  auto report = session.value().Serve(rules, /*enable_skip=*/false);
  return !report.ok() &&
         report.status().code() == StatusCode::kIntegrityError;
}

int Run(const Options& opt) {
  std::string xml = kSampleDocument;
  std::string rules_text = kSampleRules;
  if (!opt.doc_path.empty()) {
    auto r = ReadFile(opt.doc_path);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 2;
    }
    xml = r.take();
  }
  if (!opt.rules_path.empty()) {
    auto r = ReadFile(opt.rules_path);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 2;
    }
    rules_text = r.take();
  }

  auto parsed_rules = access::ParseRuleList(rules_text);
  if (!parsed_rules.ok()) {
    std::fprintf(stderr, "rules: %s\n",
                 parsed_rules.status().ToString().c_str());
    return 2;
  }
  std::vector<access::AccessRule> all_rules = parsed_rules.take();
  std::vector<access::AccessRule> subject_rules =
      access::RulesForSubject(all_rules, opt.subject);
  size_t before = subject_rules.size();
  subject_rules = access::EliminateRedundantRules(std::move(subject_rules));

  if (opt.verbose) {
    std::printf("subject: %s\n", opt.subject.c_str());
    std::printf("rules (%zu, %zu eliminated as redundant):\n",
                subject_rules.size(), before - subject_rules.size());
    for (const auto& r : subject_rules) {
      std::printf("  %s\n", r.ToString().c_str());
    }
    auto dom = xml::SaxParser::ParseToDom(xml);
    if (dom.ok()) {
      std::printf("document: %s\n",
                  xml::ComputeStats(*dom.value()).ToString().c_str());
      std::printf("encoding sizes (Figure 8):\n");
      for (auto v :
           {index::Variant::kNc, index::Variant::kTc, index::Variant::kTcs,
            index::Variant::kTcsb, index::Variant::kTcsbr}) {
        auto rep = index::MeasureVariant(*dom.value(), v);
        if (rep.ok()) {
          std::printf("  %-6s %6llu bytes  (structure/text %.1f%%)\n",
                      index::VariantName(v),
                      static_cast<unsigned long long>(rep.value().total_bytes),
                      rep.value().StructTextPercent());
        }
      }
    }
  }

  auto session = pipeline::SecureSession::Build(xml, DemoConfig(opt));
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 2;
  }
  auto result = session.value().Serve(subject_rules);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const pipeline::ServeReport& pr = result.value();

  if (opt.verbose) {
    std::printf("\nauthorized view:\n%s\n", pr.view.c_str());
    std::printf("\ncost model:\n");
    std::printf("  encoded document     %8llu bytes\n",
                static_cast<unsigned long long>(pr.encoded_bytes));
    std::printf("  terminal->SOE wire   %8llu bytes in %llu batched "
                "request(s), %llu segment(s)\n",
                static_cast<unsigned long long>(pr.wire_bytes),
                static_cast<unsigned long long>(pr.requests),
                static_cast<unsigned long long>(pr.segments));
    std::printf("  fetch planner        %8llu gap fragment(s) bridged, "
                "%llu chunk read(s) served bare (digest cache: %llu "
                "record(s), %llu hit(s), %llu eviction(s))\n",
                static_cast<unsigned long long>(pr.gap_fragments_bridged),
                static_cast<unsigned long long>(pr.bare_chunk_reads),
                static_cast<unsigned long long>(pr.digest_cache.records),
                static_cast<unsigned long long>(pr.digest_cache.bare_hits),
                static_cast<unsigned long long>(pr.digest_cache.evictions));
    std::printf("  integrity material   %8llu tree hash(es) + %llu digest "
                "bytes shipped\n",
                static_cast<unsigned long long>(pr.proof_hashes_shipped),
                static_cast<unsigned long long>(pr.digest_bytes_shipped));
    std::printf("  decrypted in SOE     %8llu bytes (%s%s, %.1f MB/s)\n",
                static_cast<unsigned long long>(pr.soe.bytes_decrypted),
                pr.backend.c_str(),
                pr.backend_hardware ? ", hw" : "", pr.decrypt_mb_s);
    std::printf("  hashed in SOE        %8llu bytes (%s, %.1f MB/s)\n",
                static_cast<unsigned long long>(pr.soe.bytes_hashed),
                pr.hash_impl.c_str(), pr.hash_mb_s);
    std::printf("  subtrees skipped     %8llu (%llu encoded bytes never "
                "fetched; %llu oracle queries)\n",
                static_cast<unsigned long long>(pr.drive.skips),
                static_cast<unsigned long long>(pr.drive.skipped_bits / 8),
                static_cast<unsigned long long>(pr.eval.skip_checks));
    std::printf("  events in/out/pruned %llu/%llu/%llu, rule hits %llu, "
                "pending predicates %llu, peak buffered %zu events "
                "(%llu bytes)\n",
                static_cast<unsigned long long>(pr.eval.events_in),
                static_cast<unsigned long long>(pr.eval.events_emitted),
                static_cast<unsigned long long>(pr.eval.events_pruned),
                static_cast<unsigned long long>(pr.eval.rule_hits),
                static_cast<unsigned long long>(pr.eval.predicates_spawned),
                pr.eval.peak_buffered,
                static_cast<unsigned long long>(pr.eval.peak_buffered_bytes));
    std::printf("  subtrees deferred    %8llu (granted %llu, denied %llu; "
                "%llu bytes re-pulled of %llu re-decoded)\n",
                static_cast<unsigned long long>(pr.drive.deferrals),
                static_cast<unsigned long long>(pr.eval.deferrals_granted),
                static_cast<unsigned long long>(pr.eval.deferrals_denied),
                static_cast<unsigned long long>(pr.drive.reread_fetched_bytes),
                static_cast<unsigned long long>(pr.drive.reread_bits / 8));
  }

  if (opt.selftest) {
    int rc = 0;
    // The skip-enabled view must be byte-identical to full streaming,
    // whatever the document and rules.
    auto full = session.value().Serve(subject_rules, /*enable_skip=*/false);
    if (!full.ok()) {
      std::fprintf(stderr, "selftest: full-streaming run failed: %s\n",
                   full.status().ToString().c_str());
      rc = 1;
    } else if (full.value().view != pr.view) {
      std::fprintf(stderr,
                   "selftest: skip-enabled view diverges from full "
                   "streaming\n  skip: %s\n  full: %s\n",
                   pr.view.c_str(), full.value().view.c_str());
      rc = 1;
    }
    // So must the most aggressive deferral strategy (budget 0: every
    // pending subtree that can be safely skipped is skipped and re-read
    // only on grant).
    pipeline::ServeOptions deferred;
    deferred.enable_skip = true;
    deferred.pending_buffer_budget = 0;
    auto defer = session.value().Serve(subject_rules, deferred);
    if (!defer.ok()) {
      std::fprintf(stderr, "selftest: deferred-mode run failed: %s\n",
                   defer.status().ToString().c_str());
      rc = 1;
    } else if (defer.value().view != pr.view) {
      std::fprintf(stderr,
                   "selftest: deferred-mode view diverges\n  defer: %s\n"
                   "  skip:  %s\n",
                   defer.value().view.c_str(), pr.view.c_str());
      rc = 1;
    }
    if (opt.doc_path.empty() && opt.rules_path.empty()) {
      if (pr.view != kExpectedView) {
        std::fprintf(stderr,
                     "selftest: authorized view mismatch\n  got:      %s\n"
                     "  expected: %s\n",
                     pr.view.c_str(), kExpectedView);
        rc = 1;
      }
      if (before - subject_rules.size() != 1) {
        std::fprintf(stderr, "selftest: expected 1 redundant rule, got %zu\n",
                     before - subject_rules.size());
        rc = 1;
      }
    }
    if (!TamperIsDetected(xml, subject_rules, opt)) {
      std::fprintf(stderr, "selftest: tampering was not detected\n");
      rc = 1;
    }
    if (rc == 0) std::printf("selftest OK\n");
    return rc;
  }
  return 0;
}

bool ParseUint32(const char* text, uint32_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long v = std::strtoul(text, &end, 10);
  if (errno != 0 || *end != '\0' || v > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseUint64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--selftest") {
      opt.selftest = true;
      opt.verbose = false;
    } else if (arg == "--no-skip") {
      opt.enable_skip = false;
    } else if (arg == "--defer-budget") {
      const char* v = next();
      if (!ParseUint64(v, &opt.defer_budget)) {
        std::fprintf(stderr, "--defer-budget needs a byte count, got %s\n",
                     v == nullptr ? "(nothing)" : v);
        return 2;
      }
    } else if (arg == "--doc") {
      if (const char* v = next()) opt.doc_path = v;
    } else if (arg == "--rules") {
      if (const char* v = next()) opt.rules_path = v;
    } else if (arg == "--subject") {
      if (const char* v = next()) opt.subject = v;
    } else if (arg == "--variant") {
      const char* v = next();
      if (v != nullptr) {
        std::string name = v;
        if (name == "tc") opt.variant = csxa::index::Variant::kTc;
        else if (name == "tcs") opt.variant = csxa::index::Variant::kTcs;
        else if (name == "tcsb") opt.variant = csxa::index::Variant::kTcsb;
        else if (name == "tcsbr") opt.variant = csxa::index::Variant::kTcsbr;
        else {
          std::fprintf(stderr, "unknown variant %s\n", v);
          return 2;
        }
      }
    } else if (arg == "--backend") {
      const char* v = next();
      auto kind = csxa::crypto::ParseCipherBackendName(
          v == nullptr ? "" : v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      opt.backend = kind.value();
    } else if (arg == "--chunk" || arg == "--fragment") {
      const char* v = next();
      uint32_t* field = arg == "--chunk" ? &opt.layout.chunk_size
                                         : &opt.layout.fragment_size;
      if (!ParseUint32(v, field)) {
        std::fprintf(stderr, "%s needs a positive integer, got %s\n",
                     arg.c_str(), v == nullptr ? "(nothing)" : v);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: csxa_demo [--selftest] [--doc FILE] [--rules FILE]\n"
          "                 [--subject NAME] [--variant tc|tcs|tcsb|tcsbr]\n"
          "                 [--chunk BYTES] [--fragment BYTES] [--no-skip]\n"
          "                 [--defer-budget BYTES]\n"
          "                 [--backend 3des|aes|aes-portable]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  return Run(opt);
}
