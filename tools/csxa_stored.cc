// csxa_stored — the untrusted terminal as its own process.
//
// Generates one corpus per requested family (exactly as csxa_load does,
// same seeded generator), publishes each into an in-process
// DocumentService, and exposes every document's live terminal link over
// TCP via net::TerminalServer speaking the record-framed batch protocol.
// The server holds document *ciphertext and digests only* — keys,
// geometry and versions travel out of band (here: printed so an SOE-side
// client can be configured; in the paper, delivered with the smartcard).
//
//   csxa_stored --port 7343                      # paper families, 1 MB each
//   csxa_stored --families hospital --bytes 4194304 --backend aes
//   csxa_stored --port 0 --duration 5            # ephemeral port, 5 s run
//
// Document ids are the family names ("hospital", "wsu", ...). The process
// serves until the duration elapses (0 = until killed).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/corpus.h"
#include "crypto/cipher_backend.h"
#include "net/terminal_server.h"
#include "server/document_service.h"

namespace {

using csxa::Result;
using csxa::Status;
using csxa::bench::CorpusFamily;

void Usage() {
  std::fprintf(stderr,
               "usage: csxa_stored [options]\n"
               "  --port N         TCP port (default 7343; 0 = ephemeral)\n"
               "  --families LIST  comma list, 'paper' (default) or 'all'\n"
               "  --bytes N        per-document corpus size (default 1048576)\n"
               "  --seed N         corpus content seed (default 1)\n"
               "  --chunk N        chunk size in bytes (default 1024)\n"
               "  --fragment N     fragment size in bytes (default 64)\n"
               "  --backend B      3des (default), aes, aes-portable\n"
               "  --duration S     seconds to serve; 0 (default) = forever\n");
}

bool ParseFamilies(const std::string& arg, std::vector<CorpusFamily>* out) {
  if (arg == "paper") {
    *out = csxa::bench::PaperFamilies();
    return true;
  }
  if (arg == "all") {
    *out = csxa::bench::AllFamilies();
    return true;
  }
  out->clear();
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    Result<CorpusFamily> family =
        csxa::bench::ParseFamily(arg.substr(pos, comma - pos));
    if (!family.ok()) {
      std::fprintf(stderr, "csxa_stored: %s\n",
                   family.status().message().c_str());
      return false;
    }
    out->push_back(family.value());
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7343;
  std::vector<CorpusFamily> families = csxa::bench::PaperFamilies();
  uint64_t target_bytes = 1 << 20;
  uint64_t seed = 1;
  csxa::server::DocumentConfig doc_cfg;
  doc_cfg.layout.chunk_size = 1024;
  doc_cfg.layout.fragment_size = 64;
  int duration_s = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next())) {
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--families" && (v = next())) {
      if (!ParseFamilies(v, &families)) return 2;
    } else if (arg == "--bytes" && (v = next())) {
      target_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chunk" && (v = next())) {
      doc_cfg.layout.chunk_size = std::strtoul(v, nullptr, 10);
    } else if (arg == "--fragment" && (v = next())) {
      doc_cfg.layout.fragment_size = std::strtoul(v, nullptr, 10);
    } else if (arg == "--backend" && (v = next())) {
      Result<csxa::crypto::CipherBackendKind> kind =
          csxa::crypto::ParseCipherBackendName(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "csxa_stored: %s\n",
                     kind.status().message().c_str());
        return 2;
      }
      doc_cfg.backend = kind.value();
    } else if (arg == "--duration" && (v = next())) {
      duration_s = std::atoi(v);
    } else {
      Usage();
      return 2;
    }
  }

  csxa::server::DocumentService service;
  csxa::net::TerminalServer server(csxa::net::TerminalServer::Options{port});

  for (CorpusFamily family : families) {
    csxa::bench::CorpusSpec spec;
    spec.family = family;
    spec.target_bytes = target_bytes;
    spec.seed = seed;
    csxa::bench::Corpus corpus = csxa::bench::GenerateCorpus(spec);
    const std::string doc_id = csxa::bench::FamilyName(family);
    for (size_t k = 0; k < doc_cfg.key.size(); ++k) {
      doc_cfg.key[k] = static_cast<uint8_t>(0xA5 ^ (seed >> (k % 8)) ^ k);
    }
    Status published = service.Publish(doc_id, corpus.xml, doc_cfg);
    if (!published.ok()) {
      std::fprintf(stderr, "csxa_stored: publish %s: %s\n", doc_id.c_str(),
                   published.ToString().c_str());
      return 1;
    }
    Result<std::shared_ptr<const csxa::crypto::BatchSource>> link =
        service.TerminalLink(doc_id);
    if (!link.ok()) {
      std::fprintf(stderr, "csxa_stored: link %s: %s\n", doc_id.c_str(),
                   link.status().ToString().c_str());
      return 1;
    }
    server.RegisterDocument(doc_id, link.take());
    std::fprintf(stderr, "csxa_stored: published %s (%llu bytes, seed %llu)\n",
                 doc_id.c_str(), static_cast<unsigned long long>(corpus.xml.size()),
                 static_cast<unsigned long long>(seed));
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "csxa_stored: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "csxa_stored: serving on 127.0.0.1:%u\n",
               server.port());
  if (duration_s > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
    server.Stop();
    std::fprintf(stderr,
                 "csxa_stored: done, %llu batch requests served\n",
                 static_cast<unsigned long long>(server.requests_served()));
    return 0;
  }
  // Serve until killed.
  while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
}
