// csxa_bench — reproduces the shape of the paper's Figure 8 experiment:
// for each encoding variant (NC, TC, TCS, TCSB, TCSBR) and a set of
// access-control scenarios with growing rule sets, measure what crosses
// the terminal→SOE boundary (wire bytes), what the SOE decrypts and
// hashes, and how much the evaluator-driven skip navigation prunes —
// while asserting every variant serves the byte-identical authorized view.
//
// Results are written as JSON (default BENCH_PR9.json) so successive PRs
// can diff the perf trajectory. Alongside the byte counters each variant
// now carries wall-clock stage timings (fetch / decrypt / hash / evaluate,
// ns and MB/s) — byte counts alone cannot show CPU wins. The run exits
// nonzero if any view diverges, if the Skip-index variants (TCSB/TCSBR)
// fail to *strictly* reduce transferred and decrypted bytes against TCS
// on the pruning scenarios — the paper's headline claim — if the batched
// fetch planner regresses (closed-world TC must stay within 40 round
// trips and under NC's wire bytes), if any skip-enabled serve pays more
// wire than full streaming of the same variant plus the per-chunk digest
// slack (the PR 5 cost-model gate: skipping must pay for itself), if the
// warm_cache section (second serve of one document through a shared
// DocumentService cache) re-ships any tree hash or fails to land under
// 60% of the cold serve's wire bytes, or if the deferred-mode section
// (pending predicate guarding the document's largest subtrees) breaches
// the pending-buffer budget: peak buffered bytes must stay under it while
// the authorized view stays byte-identical.
//
// Two corpus-scale sections ride along (PR 6). "corpus" runs the seeded
// generator over every family and gates its determinism (same spec →
// byte-identical corpus) and the rule-set-size invariance (absent-tag
// rules grow the automata, the view must not change); its counters are
// exactly reproducible, so the regression script diffs them bit-for-bit.
// "load" embeds the service-level load harness — a thread pool of mixed-
// role sessions racing concurrent version bumps over generated corpora —
// and gates its correctness outcomes (every completed view byte-identical
// to a single-session reference; every failure a clean IntegrityError).
//
// A "backends" section rides along (PR 7). The scenario matrix serves
// under one cipher backend (--backend; position-mixed 3DES by default for
// paper fidelity); this section then gates the property that makes the
// backend a free perf axis: every backend ("3des", "aes", and the forced
// portable-AES fallback) must produce byte-identical authorized views
// across the corpus family × variant × rule-family matrix, and every
// store-level attack (flipped ciphertext byte, swapped blocks, transposed
// chunk digests, replayed stale version) must still fail closed as a
// clean IntegrityError on every backend. Alongside the exact gates it
// publishes a per-backend closed_world NC serve — the decrypt-bound
// workload — whose AES-on-AES-NI serve_mb_s is gated against the PR 7
// target (≥ 9 MB/s, 10× the BENCH_PR6 baseline) on full runs.
//
// Two transport sections ride along (PR 9), both running the serve over
// a real TCP terminal behind the deterministic FaultProxy.
// "latency_sweep" prices skip navigation across a slow link (0/1/10 ms
// RTT over a smartcard-class bandwidth cap) and gates that TCSBR with
// skipping beats stream-all on wire bytes AND wall clock at every RTT
// point. "fault_matrix" runs every injectable fault x cipher backend x
// {cold, warm} shared cache and gates the transport contract: survivable
// weather ends in a byte-identical view after typed retries, tampering
// ends in a terminal IntegrityError — never a divergent view, never an
// uncontracted error class.
//
// The scenario matrix source is flag-driven: --folders/--chunk/--fragment
// resize the hand-built hospital document and layout; --corpus FAMILY
// swaps in a generated corpus with its matched rule families (exploratory:
// the strict pruning gates assume the hand-built document and are skipped).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "bench/corpus.h"
#include "bench/load_harness.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "access/rule_evaluator.h"
#include "common/status.h"
#include "crypto/cipher_backend.h"
#include "crypto/secure_store.h"
#include "crypto/sha1.h"
#include "index/secure_fetcher.h"
#include "index/variants.h"
#include "net/fault_proxy.h"
#include "net/remote_source.h"
#include "net/terminal_server.h"
#include "pipeline/secure_pipeline.h"
#include "server/document_service.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key BenchKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xc3 ^ (i * 29));
  }
  return key;
}

std::string Payload(const char* stem, int i, size_t n) {
  std::string s = std::string(stem) + "-" + std::to_string(i) + "-";
  while (s.size() < n) s += "loremipsum";
  s.resize(n);
  return s;
}

/// Synthetic hospital folder set in the shape of the paper's running
/// example (Table 2's hospital dataset, scaled down): bulky administrative
/// subtrees that most rule sets deny, medical acts with the interesting
/// tags, and a rare Protocol tag in every eighth consult.
std::string MakeDocument(int folders, int consults, int analyses) {
  std::string xml = "<Hospital>";
  for (int f = 0; f < folders; ++f) {
    xml += "<Folder>";
    xml += "<Admin>";
    xml += "<Name>Patient-" + std::to_string(f) + "</Name>";
    xml += "<SSN>" + Payload("ssn", f, 24) + "</SSN>";
    xml += "<Insurance>" + Payload("ins", f, 120) + "</Insurance>";
    xml += "<Billing>";
    for (int b = 0; b < 4; ++b) {
      xml += "<Item>" + Payload("bill", f * 10 + b, 60) + "</Item>";
    }
    xml += "</Billing>";
    xml += "</Admin>";
    xml += "<MedActs>";
    for (int c = 0; c < consults; ++c) {
      xml += "<Consult>";
      xml += "<Date>2004-0" + std::to_string(1 + c % 9) + "-12</Date>";
      xml += "<Diagnostic>" + Payload("diag", c, 48) + "</Diagnostic>";
      if ((f * consults + c) % 8 == 0) {
        xml += "<Protocol>" + Payload("proto", c, 32) + "</Protocol>";
      }
      xml += "<Prescription>" + Payload("rx", f * 100 + c, 40) +
             "</Prescription>";
      xml += "</Consult>";
    }
    for (int a = 0; a < analyses; ++a) {
      xml += "<Analysis>";
      // Half the analyses reveal Type after Comments: the evaluator must
      // buffer those comments as pending parts.
      std::string type = (f + a) % 3 == 0 ? "G3" : "G2";
      std::string comments =
          "<Comments>" + Payload("obs", f * 100 + a, 64) + "</Comments>";
      std::string typed = "<Type>" + type + "</Type>";
      std::string chol =
          "<Cholesterol>" + std::to_string(150 + 10 * a) + "</Cholesterol>";
      xml += a % 2 == 0 ? typed + chol + comments : comments + chol + typed;
      xml += "</Analysis>";
    }
    xml += "</MedActs>";
    // Clearance *after* the bulky MedActs: a predicate guarding MedActs on
    // it stays pending across the whole subtree (the deferral workload).
    xml += std::string("<Clearance>") + (f % 2 ? "closed" : "open") +
           "</Clearance>";
    xml += "</Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

struct Scenario {
  std::string name;
  std::string rules_text;
  /// Scenarios where the descendant-tag bitmap is what enables pruning:
  /// TCSB/TCSBR must strictly reduce wire + decrypted bytes against TCS.
  bool bitmap_pruning = false;
  /// Scenarios where size fields alone already prune: TCS must strictly
  /// reduce wire bytes against TC.
  bool size_pruning = false;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> s;
  // Closed world: only the medical acts are granted, by child-axis rules.
  // No positive token survives into an Admin subtree, so size fields alone
  // (TCS) suffice to skip it.
  s.push_back({"closed_world",
               "+ /Hospital/Folder/MedActs\n",
               /*bitmap_pruning=*/false, /*size_pruning=*/true});
  // Needle: one descendant-axis grant. The //Prescription token is alive
  // everywhere, so TCS cannot prune anything — only the descendant-tag
  // bitmap proves Admin and Analysis subtrees inert.
  s.push_back({"needle",
               "+ //Prescription\n",
               /*bitmap_pruning=*/true, /*size_pruning=*/false});
  // A pending predicate guarding each folder's largest subtree, with the
  // evidence arriving only after it: the pending-part workload the
  // deferral strategy (skip-now-reread-later) exists for. Run buffered
  // here; the deferred_mode section below compares strategies.
  s.push_back({"deferred_guard",
               "+ /Hospital/Folder[Clearance = open]/MedActs\n",
               /*bitmap_pruning=*/false, /*size_pruning=*/false});
  // The running example: structure preservation, a more specific positive
  // rule inside a denial, and a comparison predicate that buffers pending
  // comments. Skipping must coexist with all of it.
  s.push_back({"predicate",
               "+ /Hospital/Folder\n"
               "- /Hospital/Folder/Admin\n"
               "+ /Hospital/Folder/Admin/Name\n"
               "- //Analysis[Type = G3]/Comments\n",
               /*bitmap_pruning=*/false, /*size_pruning=*/false});
  // Growing descendant-axis rule sets (the X axis of the paper's rule-set
  // complexity experiment): one live needle plus R-1 rules over tags that
  // are rare or absent. The bitmap keeps pruning whatever R is; TCS
  // streams everything.
  for (int r : {4, 16}) {
    std::string rules = "+ //Prescription\n+ //Protocol\n";
    for (int i = 2; i < r; ++i) {
      rules += "+ //Absent" + std::to_string(i) + "\n";
    }
    s.push_back({"scaling_" + std::to_string(r), rules,
                 /*bitmap_pruning=*/true, /*size_pruning=*/false});
  }
  return s;
}

struct VariantRun {
  index::Variant variant = index::Variant::kNc;
  uint64_t encoded_bytes = 0;
  uint64_t wire_bytes = 0;
  uint64_t wire_bytes_full = 0;  ///< Same variant, skipping disabled.
  uint64_t bytes_fetched = 0;
  uint64_t bytes_decrypted = 0;
  uint64_t bytes_hashed = 0;
  uint64_t requests = 0;
  uint64_t segments = 0;
  uint64_t bare_chunk_reads = 0;
  uint64_t proof_hashes_shipped = 0;
  uint64_t digest_bytes_shipped = 0;
  uint64_t gap_fragments_bridged = 0;
  uint64_t skips = 0;
  uint64_t skipped_bytes = 0;
  uint64_t events_in = 0;
  uint64_t peak_buffered = 0;
  uint64_t peak_buffered_bytes = 0;
  uint64_t deferrals = 0;
  uint64_t rereads = 0;
  uint64_t reread_bytes = 0;          ///< Bytes actually pulled in splices.
  uint64_t reread_decoded_bytes = 0;  ///< Encoded span re-decoded.
  // Crypto configuration the serve actually ran under.
  std::string backend;
  bool backend_hw = false;
  std::string hash_impl;
  // Wall-clock stage timings of the skip-enabled serve.
  uint64_t serve_ns = 0;
  uint64_t fetch_ns = 0;
  uint64_t decrypt_ns = 0;
  uint64_t hash_ns = 0;
  uint64_t evaluate_ns = 0;  ///< serve minus the accounted stages.
  std::string view;
};

void FillTimings(VariantRun* run, uint64_t serve_ns, uint64_t fetch_ns,
                 uint64_t decrypt_ns, uint64_t hash_ns) {
  run->serve_ns = serve_ns;
  run->fetch_ns = fetch_ns;
  run->decrypt_ns = decrypt_ns;
  run->hash_ns = hash_ns;
  const uint64_t accounted = fetch_ns + decrypt_ns + hash_ns;
  run->evaluate_ns = serve_ns > accounted ? serve_ns - accounted : 0;
}

/// NC reference point: the raw XML text is encrypted as-is; with no
/// structure index nothing can be skipped, so the whole ciphertext crosses
/// the wire and the SOE parses the plaintext with a SAX parser.
Result<VariantRun> RunNc(const std::string& xml,
                         const std::vector<access::AccessRule>& rules,
                         const crypto::ChunkLayout& layout,
                         crypto::CipherBackendKind backend) {
  VariantRun run;
  run.variant = index::Variant::kNc;
  std::vector<uint8_t> bytes(xml.begin(), xml.end());
  CSXA_ASSIGN_OR_RETURN(
      crypto::SecureDocumentStore store,
      crypto::SecureDocumentStore::Build(bytes, BenchKey(), layout,
                                         /*version=*/0, backend));
  crypto::SoeDecryptor soe(BenchKey(), layout, store.plaintext_size(),
                           store.chunk_count(), /*expected_version=*/0,
                           crypto::SoeDecryptor::kDefaultDigestCacheCapacity,
                           /*shared_cache=*/nullptr, backend);
  index::SecureFetcher fetcher(&store, &soe);
  const uint64_t t0 = NowNs();
  CSXA_RETURN_NOT_OK(fetcher.Ensure(0, fetcher.size()));
  std::string plain(
      common::AsChars(fetcher.verified_view().data(), fetcher.size()));
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CSXA_RETURN_NOT_OK(xml::SaxParser::Parse(plain, &eval));
  CSXA_RETURN_NOT_OK(eval.Finish());
  FillTimings(&run, NowNs() - t0, fetcher.fetch_ns(),
              soe.counters().decrypt_ns, soe.counters().hash_ns);
  run.backend = soe.backend_name();
  run.backend_hw = soe.backend_hardware_accelerated();
  run.hash_impl = crypto::Sha1::ImplementationName();
  run.encoded_bytes = bytes.size();
  run.wire_bytes = run.wire_bytes_full = fetcher.wire_bytes();
  run.bytes_fetched = fetcher.bytes_fetched();
  run.bytes_decrypted = soe.counters().bytes_decrypted;
  run.bytes_hashed = soe.counters().bytes_hashed;
  run.requests = fetcher.requests();
  run.segments = fetcher.segments();
  run.events_in = eval.stats().events_in;
  run.peak_buffered = eval.stats().peak_buffered;
  run.peak_buffered_bytes = eval.stats().peak_buffered_bytes;
  run.view = ser.output();
  return run;
}

Result<VariantRun> RunVariant(const std::string& xml, index::Variant variant,
                              const std::vector<access::AccessRule>& rules,
                              const crypto::ChunkLayout& layout,
                              crypto::CipherBackendKind backend) {
  if (variant == index::Variant::kNc) return RunNc(xml, rules, layout, backend);
  pipeline::SessionConfig cfg;
  cfg.variant = variant;
  cfg.layout = layout;
  cfg.key = BenchKey();
  cfg.backend = backend;
  CSXA_ASSIGN_OR_RETURN(auto session, pipeline::SecureSession::Build(xml, cfg));
  const uint64_t t0 = NowNs();
  CSXA_ASSIGN_OR_RETURN(pipeline::ServeReport report,
                        session.Serve(rules, /*enable_skip=*/true));
  const uint64_t serve_ns = NowNs() - t0;
  CSXA_ASSIGN_OR_RETURN(pipeline::ServeReport full,
                        session.Serve(rules, /*enable_skip=*/false));
  if (full.view != report.view) {
    return Status::Internal("skip-enabled view diverges from full streaming");
  }

  VariantRun run;
  run.variant = variant;
  FillTimings(&run, serve_ns, report.fetch_ns, report.soe.decrypt_ns,
              report.soe.hash_ns);
  run.backend = report.backend;
  run.backend_hw = report.backend_hardware;
  run.hash_impl = report.hash_impl;
  run.encoded_bytes = report.encoded_bytes;
  run.wire_bytes = report.wire_bytes;
  run.wire_bytes_full = full.wire_bytes;
  run.bytes_fetched = report.bytes_fetched;
  run.bytes_decrypted = report.soe.bytes_decrypted;
  run.bytes_hashed = report.soe.bytes_hashed;
  run.requests = report.requests;
  run.segments = report.segments;
  run.bare_chunk_reads = report.bare_chunk_reads;
  run.proof_hashes_shipped = report.proof_hashes_shipped;
  run.digest_bytes_shipped = report.digest_bytes_shipped;
  run.gap_fragments_bridged = report.gap_fragments_bridged;
  run.skips = report.drive.skips;
  run.skipped_bytes = report.drive.skipped_bits / 8;
  run.events_in = report.eval.events_in;
  run.peak_buffered = report.eval.peak_buffered;
  run.peak_buffered_bytes = report.eval.peak_buffered_bytes;
  run.deferrals = report.drive.deferrals;
  run.rereads = report.drive.rereads;
  run.reread_bytes = report.drive.reread_fetched_bytes;
  run.reread_decoded_bytes = report.drive.reread_bits / 8;
  run.view = std::move(report.view);
  return run;
}

/// The adversarial pending-part workload for the deferred-mode section: a
/// few folders whose dominating MedActs subtree is guarded by a
/// Clearance predicate resolving only after it, alternating grant/deny.
std::string MakeGuardedDocument(int folders, int consults) {
  std::string xml = "<Hospital>";
  for (int f = 0; f < folders; ++f) {
    xml += "<Folder><MedActs>";
    for (int c = 0; c < consults; ++c) {
      xml += "<Consult><Diagnostic>" + Payload("diag", f * 100 + c, 96) +
             "</Diagnostic></Consult>";
    }
    xml += "</MedActs>";
    xml += std::string("<Clearance>") + (f % 2 ? "closed" : "open") +
           "</Clearance></Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

/// Compares the three pending-part strategies on the guarded workload and
/// enforces the PR's regression gate: with the deferral budget on, peak
/// buffered bytes must stay below the budget while the view stays
/// byte-identical — even though a pending predicate guards the document's
/// largest subtrees. Appends a "deferred_mode" JSON object; returns false
/// when a gate fails.
bool RunDeferredMode(std::string* json, const crypto::ChunkLayout& layout,
                     crypto::CipherBackendKind backend) {
  const uint64_t kBudget = 1024;
  const std::string xml = MakeGuardedDocument(/*folders=*/6, /*consults=*/24);
  auto parsed =
      access::ParseRuleList("+ /Hospital/Folder[Clearance = open]/MedActs\n");
  if (!parsed.ok()) return false;
  std::vector<access::AccessRule> rules = parsed.take();

  pipeline::SessionConfig cfg;
  cfg.layout = layout;
  cfg.key = BenchKey();
  cfg.backend = backend;
  auto session = pipeline::SecureSession::Build(xml, cfg);
  if (!session.ok()) {
    std::fprintf(stderr, "deferred_mode: %s\n",
                 session.status().ToString().c_str());
    return false;
  }
  pipeline::ServeOptions deferred{/*enable_skip=*/true, kBudget};
  pipeline::ServeOptions buffered{/*enable_skip=*/true, UINT64_MAX};
  pipeline::ServeOptions full{/*enable_skip=*/false, UINT64_MAX};
  auto d = session.value().Serve(rules, deferred);
  auto b = session.value().Serve(rules, buffered);
  auto f = session.value().Serve(rules, full);
  if (!d.ok() || !b.ok() || !f.ok()) {
    std::fprintf(stderr, "deferred_mode: serve failed\n");
    return false;
  }

  bool ok = true;
  if (d.value().view != f.value().view || b.value().view != f.value().view) {
    std::fprintf(stderr,
                 "deferred_mode: views diverge across strategies\n");
    ok = false;
  }
  if (d.value().eval.peak_buffered_bytes >= kBudget) {
    std::fprintf(stderr,
                 "deferred_mode: peak buffered bytes %llu breach the %llu "
                 "budget\n",
                 static_cast<unsigned long long>(
                     d.value().eval.peak_buffered_bytes),
                 static_cast<unsigned long long>(kBudget));
    ok = false;
  }
  if (b.value().eval.peak_buffered_bytes < kBudget) {
    std::fprintf(stderr,
                 "deferred_mode: workload not adversarial (buffered peak "
                 "%llu under budget)\n",
                 static_cast<unsigned long long>(
                     b.value().eval.peak_buffered_bytes));
    ok = false;
  }
  if (d.value().drive.deferrals == 0 || d.value().drive.rereads == 0 ||
      d.value().eval.deferrals_denied == 0) {
    std::fprintf(stderr,
                 "deferred_mode: expected both granted and denied "
                 "deferrals\n");
    ok = false;
  }
  // Re-read economy: granted deferrals must not pay the proof machinery
  // twice — splices verify against the digest cache (bare chunk reads)
  // and the deferred strategy must beat classic buffering on the wire.
  if (d.value().bare_chunk_reads == 0) {
    std::fprintf(stderr,
                 "deferred_mode: re-reads shipped integrity material the "
                 "digest cache should have waived\n");
    ok = false;
  }
  if (d.value().wire_bytes >= b.value().wire_bytes) {
    std::fprintf(stderr,
                 "deferred_mode: deferral no longer cheaper than "
                 "buffering on the wire (%llu vs %llu)\n",
                 static_cast<unsigned long long>(d.value().wire_bytes),
                 static_cast<unsigned long long>(b.value().wire_bytes));
    ok = false;
  }

  auto u64 = [](uint64_t v) { return std::to_string(v); };
  auto emit = [&](const char* name, const pipeline::ServeReport& r) {
    *json += std::string("    \"") + name + "\": {";
    *json += "\"wire_bytes\": " + u64(r.wire_bytes);
    *json += ", \"bytes_decrypted\": " + u64(r.soe.bytes_decrypted);
    *json += ", \"peak_buffered\": " + u64(r.eval.peak_buffered);
    *json += ", \"peak_buffered_bytes\": " + u64(r.eval.peak_buffered_bytes);
    *json += ", \"deferrals\": " + u64(r.drive.deferrals);
    *json += ", \"deferrals_granted\": " + u64(r.eval.deferrals_granted);
    *json += ", \"deferrals_denied\": " + u64(r.eval.deferrals_denied);
    *json += ", \"rereads\": " + u64(r.drive.rereads);
    *json += ", \"reread_bytes\": " + u64(r.drive.reread_fetched_bytes);
    *json += ", \"reread_decoded_bytes\": " + u64(r.drive.reread_bits / 8);
    *json += ", \"bare_chunk_reads\": " + u64(r.bare_chunk_reads);
    *json += "}";
  };
  *json += "  \"deferred_mode\": {\n";
  *json += "    \"document_bytes\": " + u64(xml.size()) + ",\n";
  *json += "    \"pending_buffer_budget\": " + u64(kBudget) + ",\n";
  emit("deferred", d.value());
  *json += ",\n";
  emit("buffered", b.value());
  *json += ",\n";
  emit("full_stream", f.value());
  *json += ",\n    \"views_identical\": ";
  *json += d.value().view == f.value().view &&
                   b.value().view == f.value().view
               ? "true"
               : "false";
  *json += ",\n    \"budget_respected\": ";
  *json += d.value().eval.peak_buffered_bytes < kBudget ? "true" : "false";
  *json += "\n  },\n";
  return ok;
}

/// The cross-serve shared-cache scenario: one DocumentService, two
/// sessions of the same document back to back. The first (cold) serve
/// pays the Merkle material; the second starts warm — every proof is
/// trimmed to nothing and every chunk read is bare, so its wire traffic is
/// ciphertext only and must land under 60% of the cold serve's. This is
/// also the needle workload's round-trip economics fix: each of the many
/// small batches a needle serve issues stops carrying material entirely.
/// Appends a "warm_cache" JSON object; returns false when a gate fails.
bool RunWarmCache(std::string* json, int folders,
                  crypto::CipherBackendKind backend) {
  const std::string xml = MakeDocument(folders, /*consults=*/3,
                                       /*analyses=*/4);
  server::DocumentConfig cfg;
  cfg.variant = index::Variant::kTcsbr;
  // A finer-grained layout than the main matrix: the integrity-overhead
  // regime (proof hashes rival fragment payloads) is exactly where the
  // shared cache pays, and where SOE-class devices with small RAM sit.
  cfg.layout.chunk_size = 512;
  cfg.layout.fragment_size = 32;
  cfg.key = BenchKey();
  cfg.backend = backend;
  server::DocumentService service;
  if (!service.Publish("bench", xml, cfg).ok()) return false;
  auto parsed = access::ParseRuleList("+ //Prescription\n");
  if (!parsed.ok()) return false;
  std::vector<access::AccessRule> rules = parsed.take();

  pipeline::ServeOptions opts;
  auto cold = service.Serve("bench", rules, opts);
  auto warm = service.Serve("bench", rules, opts);
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "warm_cache: serve failed\n");
    return false;
  }

  bool ok = true;
  if (warm.value().view != cold.value().view) {
    std::fprintf(stderr, "warm_cache: warm view diverges from cold\n");
    ok = false;
  }
  if (warm.value().proof_hashes_shipped != 0 ||
      warm.value().digest_bytes_shipped != 0) {
    std::fprintf(stderr,
                 "warm_cache: warm serve re-shipped integrity material "
                 "(%llu hashes, %llu digest bytes) the shared cache holds\n",
                 static_cast<unsigned long long>(
                     warm.value().proof_hashes_shipped),
                 static_cast<unsigned long long>(
                     warm.value().digest_bytes_shipped));
    ok = false;
  }
  if (warm.value().bare_chunk_reads == 0) {
    std::fprintf(stderr, "warm_cache: no bare chunk reads on a warm serve\n");
    ok = false;
  }
  if (warm.value().wire_bytes * 10 >= cold.value().wire_bytes * 6) {
    std::fprintf(stderr,
                 "warm_cache: warm wire %llu not under 60%% of cold %llu\n",
                 static_cast<unsigned long long>(warm.value().wire_bytes),
                 static_cast<unsigned long long>(cold.value().wire_bytes));
    ok = false;
  }

  auto u64 = [](uint64_t v) { return std::to_string(v); };
  auto emit = [&](const char* name, const pipeline::ServeReport& r) {
    *json += std::string("    \"") + name + "\": {";
    *json += "\"wire_bytes\": " + u64(r.wire_bytes);
    *json += ", \"bytes_fetched\": " + u64(r.bytes_fetched);
    *json += ", \"requests\": " + u64(r.requests);
    *json += ", \"proof_hashes_shipped\": " + u64(r.proof_hashes_shipped);
    *json += ", \"digest_bytes_shipped\": " + u64(r.digest_bytes_shipped);
    *json += ", \"bare_chunk_reads\": " + u64(r.bare_chunk_reads);
    *json += "}";
  };
  *json += "  \"warm_cache\": {\n";
  *json += "    \"document_bytes\": " + u64(xml.size()) + ",\n";
  *json += "    \"chunk_size\": " + u64(cfg.layout.chunk_size) +
           ", \"fragment_size\": " + u64(cfg.layout.fragment_size) + ",\n";
  emit("cold", cold.value());
  *json += ",\n";
  emit("warm", warm.value());
  *json += ",\n    \"warm_under_60_percent\": ";
  *json += warm.value().wire_bytes * 10 < cold.value().wire_bytes * 6
               ? "true"
               : "false";
  *json += "\n  },\n";
  return ok;
}

/// The single-session reference view: plaintext SAX pass, no crypto.
Result<std::string> DirectView(const std::string& xml,
                               const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CSXA_RETURN_NOT_OK(xml::SaxParser::Parse(xml, &eval));
  CSXA_RETURN_NOT_OK(eval.Finish());
  return ser.output();
}

/// The corpus-generator section: every family at `corpus_bytes`, with its
/// four matched rule families evaluated by a direct SAX pass. Everything
/// here is a pure function of (family, seed, size), so the regression
/// script diffs the counters exactly. In-bench gates: generation is
/// deterministic (regenerating yields byte-identical XML), every corpus
/// reaches its target size, and appending absent-tag rules (the rule-set-
/// size axis of the paper's complexity experiment) never changes a view.
/// Appends a "corpus" JSON array; returns false when a gate fails.
bool RunCorpusSection(std::string* json, uint64_t corpus_bytes) {
  bool ok = true;
  auto u64 = [](uint64_t v) { return std::to_string(v); };
  *json += "  \"corpus\": {\n";
  *json += "    \"target_bytes\": " + u64(corpus_bytes) +
           ", \"seed\": 1,\n    \"families\": [\n";
  const std::vector<bench::CorpusFamily> families = bench::AllFamilies();
  for (size_t i = 0; i < families.size(); ++i) {
    const bench::CorpusFamily family = families[i];
    bench::CorpusSpec spec;
    spec.family = family;
    spec.seed = 1;
    spec.target_bytes = corpus_bytes;
    const bench::Corpus corpus = bench::GenerateCorpus(spec);
    if (bench::GenerateCorpus(spec).xml != corpus.xml) {
      std::fprintf(stderr, "corpus/%s: generation is not deterministic\n",
                   bench::FamilyName(family));
      ok = false;
    }
    if (corpus.xml.size() < corpus_bytes) {
      std::fprintf(stderr, "corpus/%s: %zu bytes under the %llu target\n",
                   bench::FamilyName(family), corpus.xml.size(),
                   static_cast<unsigned long long>(corpus_bytes));
      ok = false;
    }
    *json += std::string("      {\"family\": \"") +
             bench::FamilyName(family) + "\"";
    *json += ", \"document_bytes\": " + u64(corpus.xml.size());
    *json += ", \"records\": " + u64(corpus.records);
    *json += ", \"max_depth\": " + u64(corpus.max_depth);
    *json += ", \"rule_families\": [";
    const std::vector<bench::RuleFamily> rule_families =
        bench::AllRuleFamilies();
    for (size_t r = 0; r < rule_families.size(); ++r) {
      const bench::RuleFamily rf = rule_families[r];
      auto rules = access::ParseRuleList(bench::RulesFor(family, rf));
      auto grown = access::ParseRuleList(
          bench::RulesFor(family, rf, /*extra_absent_rules=*/8));
      if (!rules.ok() || !grown.ok()) {
        std::fprintf(stderr, "corpus/%s/%s: bad rules\n",
                     bench::FamilyName(family), bench::RuleFamilyName(rf));
        return false;
      }
      auto view = DirectView(corpus.xml, rules.value());
      auto grown_view = DirectView(corpus.xml, grown.value());
      if (!view.ok() || !grown_view.ok()) {
        std::fprintf(stderr, "corpus/%s/%s: direct view failed\n",
                     bench::FamilyName(family), bench::RuleFamilyName(rf));
        return false;
      }
      if (view.value() != grown_view.value()) {
        std::fprintf(stderr,
                     "corpus/%s/%s: absent-tag rules changed the view\n",
                     bench::FamilyName(family), bench::RuleFamilyName(rf));
        ok = false;
      }
      *json += std::string("{\"rules\": \"") + bench::RuleFamilyName(rf) +
               "\", \"rule_count\": " + u64(rules.value().size()) +
               ", \"view_bytes\": " + u64(view.value().size()) + "}";
      *json += r + 1 < rule_families.size() ? ", " : "";
    }
    *json += "]}";
    *json += i + 1 < families.size() ? ",\n" : "\n";
  }
  *json += "    ]\n  },\n";
  return ok;
}

/// The service-level load section: embeds the load harness (paper families
/// by default) and gates the outcomes that must hold on any machine —
/// every completed view byte-identical to a reference, every failure a
/// clean stale-session IntegrityError, the warm sweep hitting the shared
/// cache. Throughput and latency are published, never gated here (the
/// regression script applies its own generous tolerance).
/// Appends a "load" JSON object; returns false when a gate fails.
bool RunLoadSection(std::string* json, const bench::LoadConfig& config) {
  auto result = bench::RunLoad(config);
  if (!result.ok()) {
    std::fprintf(stderr, "load: %s\n", result.status().ToString().c_str());
    return false;
  }
  const bench::LoadReport& report = result.value();
  bool ok = true;
  if (report.serves_completed == 0) {
    std::fprintf(stderr, "load: no serve completed\n");
    ok = false;
  }
  if (report.view_mismatches != 0) {
    std::fprintf(stderr, "load: %llu completed views matched no version\n",
                 static_cast<unsigned long long>(report.view_mismatches));
    ok = false;
  }
  if (report.wrong_errors != 0) {
    std::fprintf(stderr,
                 "load: %llu failures were not clean IntegrityErrors\n",
                 static_cast<unsigned long long>(report.wrong_errors));
    ok = false;
  }
  if (report.cache_hit_rate <= 0.0) {
    std::fprintf(stderr, "load: warm sweep never hit the shared cache\n");
    ok = false;
  }
  *json += "  \"load\": ";
  report.AppendJson(json, "  ");
  *json += ",\n";
  return ok;
}

/// One store-level attack against a store built under `backend`; returns
/// true when the SOE rejects it as a clean IntegrityError (any other
/// outcome — success, or a different error class — is a broken backend).
bool BackendAttackRejected(crypto::CipherBackendKind backend, int attack) {
  std::vector<uint8_t> doc(4096);
  for (size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<uint8_t>('a' + i % 26);
  }
  crypto::ChunkLayout lay;
  lay.chunk_size = 512;
  lay.fragment_size = 32;
  uint32_t expected_version = 1;
  auto store = crypto::SecureDocumentStore::Build(doc, BenchKey(), lay,
                                                  /*version=*/1, backend);
  if (!store.ok()) return false;
  switch (attack) {
    case 0: store.value().TamperByte(2048, 0x40); break;
    case 1: store.value().SwapBlocks(2, 3); break;
    case 2: store.value().SwapChunkDigests(0, 1); break;
    case 3: expected_version = 2; break;  // Replayed stale version.
  }
  crypto::SoeDecryptor soe(BenchKey(), lay, store.value().plaintext_size(),
                           store.value().chunk_count(), expected_version,
                           crypto::SoeDecryptor::kDefaultDigestCacheCapacity,
                           /*shared_cache=*/nullptr, backend);
  auto resp = store.value().ReadRange(0, doc.size());
  if (!resp.ok()) return false;
  auto plain = soe.DecryptVerified(resp.value(), 0, doc.size());
  return !plain.ok() &&
         plain.status().code() == StatusCode::kIntegrityError;
}

/// The cross-backend section: the exact gates that make the cipher
/// backend a pure performance axis, plus the per-backend decrypt-bound
/// perf probe. (1) Equivalence matrix: every corpus family × rule family
/// × variant must serve the byte-identical authorized view under every
/// backend — "3des" (the paper-faithful default), "aes" (AES-NI when the
/// CPU has it), and "aes-portable" (the fallback path pinned on). (2)
/// Attack matrix: flipped ciphertext byte, swapped cipher blocks,
/// transposed chunk digests, and a replayed stale version must each fail
/// closed as a clean IntegrityError on every backend. (3) Perf: a
/// closed_world NC serve of the hospital document per backend — the
/// workload where decrypt dominates — gated on full runs to the PR 7
/// target (AES on AES-NI hardware ≥ 9 MB/s serve rate, 10× the
/// BENCH_PR6 software-3DES baseline). Appends a "backends" JSON object;
/// returns false when a gate fails.
bool RunBackendSection(std::string* json, bool quick,
                       crypto::ChunkLayout layout, int folders) {
  using crypto::CipherBackendKind;
  using crypto::CipherBackendKindName;
  // Every backend serves the same layout here; if the flag-chosen one
  // cannot hold AES blocks (fragment not a multiple of 16), fall back to
  // the default so the cross-backend gates still run.
  if (!layout.Validate(crypto::kMaxCipherBlockSize).ok()) {
    layout = crypto::ChunkLayout{};
    layout.chunk_size = 1024;
    layout.fragment_size = 64;
  }
  const CipherBackendKind kBackends[] = {CipherBackendKind::k3Des,
                                         CipherBackendKind::kAes,
                                         CipherBackendKind::kAesPortable};
  bool ok = true;
  auto u64 = [](uint64_t v) { return std::to_string(v); };

  // (1) Equivalence matrix over generated corpora. Quick mode trims the
  // family list and corpus size so sanitizer smokes stay fast; the gate
  // itself (byte-identical views) is never relaxed.
  const std::vector<bench::CorpusFamily> families =
      quick ? bench::PaperFamilies() : bench::AllFamilies();
  const uint64_t corpus_bytes = quick ? uint64_t{8} << 10
                                      : uint64_t{24} << 10;
  const auto variants = {index::Variant::kNc, index::Variant::kTc,
                         index::Variant::kTcs, index::Variant::kTcsb,
                         index::Variant::kTcsbr};
  uint64_t serves = 0;
  uint64_t view_mismatches = 0;
  for (bench::CorpusFamily family : families) {
    bench::CorpusSpec spec;
    spec.family = family;
    spec.seed = 1;
    spec.target_bytes = corpus_bytes;
    const bench::Corpus corpus = bench::GenerateCorpus(spec);
    for (bench::RuleFamily rf : bench::AllRuleFamilies()) {
      auto rules = access::ParseRuleList(bench::RulesFor(family, rf));
      if (!rules.ok()) return false;
      auto reference = DirectView(corpus.xml, rules.value());
      if (!reference.ok()) return false;
      for (index::Variant v : variants) {
        for (CipherBackendKind backend : kBackends) {
          auto run = RunVariant(corpus.xml, v, rules.value(), layout, backend);
          if (!run.ok()) {
            std::fprintf(stderr, "backends/%s/%s/%s/%s: %s\n",
                         bench::FamilyName(family), bench::RuleFamilyName(rf),
                         VariantName(v), CipherBackendKindName(backend),
                         run.status().ToString().c_str());
            return false;
          }
          ++serves;
          if (run.value().view != reference.value()) {
            std::fprintf(stderr,
                         "backends/%s/%s/%s/%s: authorized view diverges "
                         "from the direct reference\n",
                         bench::FamilyName(family), bench::RuleFamilyName(rf),
                         VariantName(v), CipherBackendKindName(backend));
            ++view_mismatches;
            ok = false;
          }
        }
      }
    }
  }

  // (2) Attack matrix: 4 attacks × 3 backends, every one a clean
  // IntegrityError.
  uint64_t attacks_rejected = 0;
  const uint64_t attacks_total = 4 * (sizeof(kBackends) / sizeof(*kBackends));
  for (CipherBackendKind backend : kBackends) {
    for (int attack = 0; attack < 4; ++attack) {
      if (BackendAttackRejected(backend, attack)) {
        ++attacks_rejected;
      } else {
        static const char* const kAttackNames[] = {
            "tampered_byte", "swapped_blocks", "transposed_digests",
            "stale_version"};
        std::fprintf(stderr,
                     "backends/%s: %s not rejected as a clean "
                     "IntegrityError\n",
                     CipherBackendKindName(backend), kAttackNames[attack]);
        ok = false;
      }
    }
  }

  *json += "  \"backends\": {\n";
  *json += "    \"equivalence\": {\"families\": " + u64(families.size()) +
           ", \"rule_families\": " +
           u64(bench::AllRuleFamilies().size()) +
           ", \"variants\": " + u64(variants.size()) +
           ", \"backends\": [\"3des\", \"aes\", \"aes-portable\"],\n";
  *json += "      \"serves\": " + u64(serves) +
           ", \"views_identical\": " +
           (view_mismatches == 0 ? "true" : "false") +
           ", \"attacks_rejected\": " + u64(attacks_rejected) +
           ", \"attacks_total\": " + u64(attacks_total) +
           ", \"all_attacks_rejected\": " +
           (attacks_rejected == attacks_total ? "true" : "false") + "},\n";

  // (3) Per-backend perf probe: the closed_world NC serve — the whole
  // ciphertext crosses the wire and the SOE decrypts and hashes all of
  // it, so the cipher dominates and the backends are directly
  // comparable. Best of three serves to damp scheduler noise.
  const std::string xml = MakeDocument(folders, /*consults=*/3,
                                       /*analyses=*/4);
  auto parsed = access::ParseRuleList("+ /Hospital/Folder/MedActs\n");
  if (!parsed.ok()) return false;
  std::vector<access::AccessRule> rules = parsed.take();
  *json += "    \"nc_closed_world\": [\n";
  for (size_t b = 0; b < sizeof(kBackends) / sizeof(*kBackends); ++b) {
    const CipherBackendKind backend = kBackends[b];
    Result<VariantRun> best = RunNc(xml, rules, layout, backend);
    for (int rep = 0; best.ok() && rep < 2; ++rep) {
      auto again = RunNc(xml, rules, layout, backend);
      if (again.ok() && again.value().serve_ns < best.value().serve_ns) {
        best = std::move(again);
      }
    }
    if (!best.ok()) {
      std::fprintf(stderr, "backends/%s: NC serve failed: %s\n",
                   CipherBackendKindName(backend),
                   best.status().ToString().c_str());
      return false;
    }
    const VariantRun& run = best.value();
    auto mbps = [](uint64_t bytes, uint64_t ns) {
      return ns == 0 ? 0.0 : static_cast<double>(bytes) * 1000.0 /
                                 static_cast<double>(ns);
    };
    const double serve_mb_s = mbps(run.encoded_bytes, run.serve_ns);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "      {\"backend\": \"%s\", \"hardware\": %s, "
                  "\"block_size\": %u, \"document_bytes\": %llu, "
                  "\"serve_ns\": %llu, \"serve_mb_s\": %.1f, "
                  "\"decrypt_mb_s\": %.1f, \"hash_mb_s\": %.1f}",
                  run.backend.c_str(), run.backend_hw ? "true" : "false",
                  crypto::CipherBackendBlockSize(backend),
                  static_cast<unsigned long long>(run.encoded_bytes),
                  static_cast<unsigned long long>(run.serve_ns), serve_mb_s,
                  mbps(run.bytes_decrypted, run.decrypt_ns),
                  mbps(run.bytes_hashed, run.hash_ns));
    *json += buf;
    *json += b + 1 < sizeof(kBackends) / sizeof(*kBackends) ? ",\n" : "\n";
    // The PR 7 acceptance gate, applied where it is meaningful: a full
    // (non-quick) run on a machine whose AES backend really runs AES-NI.
    if (!quick && backend == CipherBackendKind::kAes &&
        crypto::CipherBackendHardwareAccelerated(backend) &&
        serve_mb_s < 9.0) {
      std::fprintf(stderr,
                   "backends/aes: closed_world NC serve %.1f MB/s under "
                   "the 9 MB/s PR 7 target on AES-NI hardware\n",
                   serve_mb_s);
      ok = false;
    }
  }
  *json += "    ]\n  },\n";
  return ok;
}

/// The network-latency sweep (PR 9): the paper's architecture claim,
/// measured where it was actually aimed — across a slow link. For each
/// injected RTT (0 / 1 / 10 ms, through a real TerminalServer and a
/// pacing FaultProxy modeling a smartcard-class serial link), serve the
/// closed_world scenario over TCP twice from cold caches: TCSBR with
/// skip navigation (the paper's proposal), and stream-all — the NC
/// baseline that ships the whole raw document for the SOE to filter,
/// the architecture the paper argues against. Gate: at every RTT point
/// the skip serve must win on wire bytes AND on wall clock. The round
/// trips skipping adds (demand paging pays one per pruned region) are
/// exactly what RTT charges for, so this is the honest price of the
/// index — it must stay under the price of shipping everything. Both
/// serves run against separately published documents so neither
/// inherits a warm shared digest cache from the other. (The in-process
/// cost-model gate on the scenario matrix already pins skip-vs-full
/// *within* a variant; this section prices the paper's Figure 8
/// comparison across link latencies.)
/// Appends a "latency_sweep" JSON object; returns false on a gate fail.
bool RunLatencySweep(std::string* json, int folders,
                     crypto::CipherBackendKind backend) {
  const std::string xml = MakeDocument(folders, /*consults=*/3,
                                       /*analyses=*/4);
  auto parsed = access::ParseRuleList("+ /Hospital/Folder/MedActs\n");
  if (!parsed.ok()) return false;
  std::vector<access::AccessRule> rules = parsed.take();
  auto reference = DirectView(xml, rules);
  if (!reference.ok()) return false;

  // ~9600-baud-class serial link: byte time dominates round trips, the
  // regime the paper's SOE targets. Raising this erodes the skip win at
  // high RTT (skip pays more round trips); the gate documents the trade.
  constexpr uint64_t kBandwidthBytesPerS = 8192;
  const uint64_t kRttMs[] = {0, 1, 10};

  bool ok = true;
  auto u64 = [](uint64_t v) { return std::to_string(v); };
  *json += "  \"latency_sweep\": {\n";
  *json += "    \"scenario\": \"closed_world\", \"skip_variant\": \"tcsbr\","
           " \"stream_all_variant\": \"nc\",\n";
  *json += "    \"document_bytes\": " + u64(xml.size()) +
           ", \"bandwidth_bytes_per_s\": " + u64(kBandwidthBytesPerS) +
           ",\n    \"points\": [\n";
  for (size_t p = 0; p < 3; ++p) {
    const uint64_t rtt_ns = kRttMs[p] * 1'000'000ULL;
    server::DocumentConfig cfg;
    cfg.variant = index::Variant::kTcsbr;
    cfg.layout.chunk_size = 1024;
    cfg.layout.fragment_size = 64;
    cfg.key = BenchKey();
    cfg.backend = backend;
    server::DocumentService service;
    if (!service.Publish("sweep_skip", xml, cfg).ok()) {
      std::fprintf(stderr, "latency_sweep: publish failed\n");
      return false;
    }
    // The stream-all side is the NC image — the raw text in a
    // SecureDocumentStore, no structure index — registered on the same
    // terminal. (NC has no pipeline encoding, so it is served the way
    // RunNc serves it: fetch everything, SAX-filter in the SOE.)
    std::vector<uint8_t> raw(xml.begin(), xml.end());
    auto nc_build = crypto::SecureDocumentStore::Build(
        raw, BenchKey(), cfg.layout, /*version=*/0, backend);
    if (!nc_build.ok()) return false;
    auto nc_store =
        std::make_shared<crypto::SecureDocumentStore>(nc_build.take());
    net::TerminalServer server;
    auto link = service.TerminalLink("sweep_skip");
    if (!link.ok()) return false;
    server.RegisterDocument("sweep_skip", link.take());
    server.RegisterDocument("sweep_full", nc_store);
    if (!server.Start().ok()) return false;
    net::FaultProxy::Options proxy_opts;
    proxy_opts.upstream_port = server.port();
    proxy_opts.rtt_ns = rtt_ns;
    proxy_opts.bandwidth_bytes_per_s = kBandwidthBytesPerS;
    net::FaultProxy proxy(proxy_opts);
    if (!proxy.Start().ok()) return false;
    // Pacing stretches every response; the sweep measures latency, it
    // must never trip deadlines into retries.
    net::RemoteBatchSource::Options ropts;
    ropts.port = proxy.port();
    ropts.doc_id = "sweep_skip";
    ropts.deadline_ns = 30'000'000'000ULL;
    if (!service
             .AttachTransport("sweep_skip",
                              std::make_shared<net::RemoteBatchSource>(ropts))
             .ok()) {
      return false;
    }
    // On a slow link every round trip is expensive, so the SOE spends
    // response buffer to save them: a 16 KB batch horizon (vs the
    // default four chunks) — still smartcard-plausible RAM — applied to
    // BOTH modes, so the comparison stays fair.
    index::PlannerOptions planner;
    planner.max_batch_bytes = 16 << 10;

    struct Timed {
      uint64_t wall_ns = 0;
      uint64_t wire_bytes = 0;
      uint64_t requests = 0;
      uint64_t retries = 0;
      std::string view;
    };
    auto run_skip = [&]() -> Result<Timed> {
      pipeline::ServeOptions opts{/*skip=*/true, UINT64_MAX};
      opts.planner = planner;
      const uint64_t t0 = NowNs();
      CSXA_ASSIGN_OR_RETURN(pipeline::ServeReport report,
                            service.Serve("sweep_skip", rules, opts));
      Timed t;
      t.wall_ns = NowNs() - t0;
      t.wire_bytes = report.wire_bytes;
      t.requests = report.requests;
      t.retries = report.retries;
      t.view = std::move(report.view);
      return t;
    };
    auto run_stream_all = [&]() -> Result<Timed> {
      net::RemoteBatchSource::Options full_opts = ropts;
      full_opts.doc_id = "sweep_full";
      net::RemoteBatchSource remote(full_opts);
      crypto::SoeDecryptor soe(
          BenchKey(), cfg.layout, nc_store->plaintext_size(),
          nc_store->chunk_count(), /*expected_version=*/0,
          crypto::SoeDecryptor::kDefaultDigestCacheCapacity,
          /*shared_cache=*/nullptr, backend);
      index::SecureFetcher fetcher(&remote, cfg.layout,
                                   nc_store->plaintext_size(),
                                   nc_store->ciphertext().size(), &soe,
                                   planner);
      const uint64_t t0 = NowNs();
      CSXA_RETURN_NOT_OK(fetcher.Ensure(0, fetcher.size()));
      std::string plain(
          common::AsChars(fetcher.verified_view().data(), fetcher.size()));
      xml::SerializingHandler ser;
      access::RuleEvaluator eval(rules, &ser);
      CSXA_RETURN_NOT_OK(xml::SaxParser::Parse(plain, &eval));
      CSXA_RETURN_NOT_OK(eval.Finish());
      Timed t;
      t.wall_ns = NowNs() - t0;
      t.wire_bytes = fetcher.wire_bytes();
      t.requests = fetcher.requests();
      t.retries = remote.transport_stats().retries;
      t.view = ser.output();
      return t;
    };
    auto full = run_stream_all();
    auto skip = run_skip();
    (void)service.AttachTransport("sweep_skip", nullptr);
    proxy.Stop();
    server.Stop();
    if (!full.ok() || !skip.ok()) {
      std::fprintf(stderr, "latency_sweep/%llums: serve failed: %s\n",
                   static_cast<unsigned long long>(kRttMs[p]),
                   (full.ok() ? skip : full).status().ToString().c_str());
      return false;
    }
    if (skip.value().view != reference.value() ||
        full.value().view != reference.value()) {
      std::fprintf(stderr,
                   "latency_sweep/%llums: remote view diverges from the "
                   "direct SAX pass\n",
                   static_cast<unsigned long long>(kRttMs[p]));
      ok = false;
    }
    const bool wins_wire = skip.value().wire_bytes < full.value().wire_bytes;
    const bool wins_wall = skip.value().wall_ns < full.value().wall_ns;
    if (!wins_wire || !wins_wall) {
      std::fprintf(
          stderr,
          "latency_sweep/%llums: skip must beat stream-all on wire AND "
          "wall clock (wire %llu vs %llu, wall %.1f ms vs %.1f ms)\n",
          static_cast<unsigned long long>(kRttMs[p]),
          static_cast<unsigned long long>(skip.value().wire_bytes),
          static_cast<unsigned long long>(full.value().wire_bytes),
          skip.value().wall_ns / 1e6, full.value().wall_ns / 1e6);
      ok = false;
    }
    auto emit = [&](const char* name, const Timed& t) {
      *json += std::string("\"") + name + "\": {\"wire_bytes\": " +
               u64(t.wire_bytes) + ", \"requests\": " + u64(t.requests) +
               ", \"retries\": " + u64(t.retries) +
               ", \"wall_ns\": " + u64(t.wall_ns) + "}";
    };
    *json += "      {\"rtt_ms\": " + u64(kRttMs[p]) + ", ";
    emit("stream_all", full.value());
    *json += ", ";
    emit("tcsbr_skip", skip.value());
    *json += ", \"skip_wins_wire\": ";
    *json += wins_wire ? "true" : "false";
    *json += ", \"skip_wins_wall_clock\": ";
    *json += wins_wall ? "true" : "false";
    *json += "}";
    *json += p + 1 < 3 ? ",\n" : "\n";
  }
  *json += "    ]\n  },\n";
  return ok;
}

/// The fault matrix (PR 9): every injectable network fault, against both
/// cipher backends, against cold and warm shared digest caches, served
/// over a real TCP terminal behind the programmed FaultProxy. The gate is
/// the transport contract itself: survivable weather (silent drop, stall
/// past the deadline, mid-response close, duplicated response) must end
/// in a byte-identical view after typed retries; tampering (truncated
/// frame, corrupted byte) must end in a terminal IntegrityError. Any
/// view that differs from the direct SAX pass — and any error outside
/// the contracted classes — fails the bench. The per-cell retry and
/// reconnect counts are published for the trajectory, not gated (they
/// depend on scheduling).
/// Appends a "fault_matrix" JSON object; returns false on a gate fail.
bool RunFaultMatrix(std::string* json) {
  struct FaultCase {
    net::FaultProxy::Fault fault;
    const char* name;
    uint64_t arg;
    bool survivable;
  };
  const FaultCase kCases[] = {
      {net::FaultProxy::Fault::kDropAfterBytes, "drop_after_bytes", 13, true},
      {net::FaultProxy::Fault::kStall, "stall", 700'000'000, true},
      {net::FaultProxy::Fault::kCloseMidResponse, "close_mid_response", 0,
       true},
      {net::FaultProxy::Fault::kDuplicateResponse, "duplicate_response", 0,
       true},
      {net::FaultProxy::Fault::kTruncateFrame, "truncate_frame", 0, false},
      {net::FaultProxy::Fault::kCorruptByte, "corrupt_byte", 9, false},
  };

  const std::string xml = MakeDocument(/*folders=*/4, /*consults=*/3,
                                       /*analyses=*/4);
  auto parsed = access::ParseRuleList("+ //Prescription\n");
  if (!parsed.ok()) return false;
  std::vector<access::AccessRule> rules = parsed.take();
  auto reference = DirectView(xml, rules);
  if (!reference.ok()) return false;

  bool ok = true;
  uint64_t view_mismatches = 0;
  uint64_t contract_violations = 0;
  auto u64 = [](uint64_t v) { return std::to_string(v); };
  *json += "  \"fault_matrix\": {\n    \"cells\": [\n";
  bool first_cell = true;
  for (const FaultCase& fc : kCases) {
    for (crypto::CipherBackendKind backend :
         {crypto::CipherBackendKind::k3Des,
          crypto::CipherBackendKind::kAes}) {
      for (bool warm : {false, true}) {
        const std::string cell =
            std::string(fc.name) + "/" +
            crypto::CipherBackendKindName(backend) +
            (warm ? "/warm" : "/cold");
        server::DocumentConfig cfg;
        cfg.variant = index::Variant::kTcsbr;
        cfg.layout.chunk_size = 256;
        cfg.layout.fragment_size = 32;
        cfg.key = BenchKey();
        cfg.backend = backend;
        server::DocumentService service;
        if (!service.Publish("doc", xml, cfg).ok()) return false;
        net::TerminalServer server;
        auto link = service.TerminalLink("doc");
        if (!link.ok()) return false;
        server.RegisterDocument("doc", link.take());
        if (!server.Start().ok()) return false;

        net::RemoteBatchSource::Options ropts;
        ropts.doc_id = "doc";
        ropts.deadline_ns = 250'000'000;
        ropts.max_attempts = 4;
        ropts.backoff_initial_ns = 1'000'000;
        ropts.backoff_max_ns = 8'000'000;

        if (warm) {
          // Prime the shared digest cache over a clean remote path.
          ropts.port = server.port();
          if (!service
                   .AttachTransport(
                       "doc",
                       std::make_shared<net::RemoteBatchSource>(ropts))
                   .ok()) {
            return false;
          }
          auto primed = service.Serve("doc", rules, pipeline::ServeOptions{});
          if (!primed.ok() || primed.value().view != reference.value()) {
            std::fprintf(stderr, "fault_matrix/%s: priming serve failed\n",
                         cell.c_str());
            return false;
          }
          (void)service.AttachTransport("doc", nullptr);
        }

        net::FaultProxy::Options proxy_opts;
        proxy_opts.upstream_port = server.port();
        // Response 0 is the bind ack; 1 is the first real batch response.
        proxy_opts.program = {{fc.fault, /*response_index=*/1, fc.arg}};
        net::FaultProxy proxy(proxy_opts);
        if (!proxy.Start().ok()) return false;
        ropts.port = proxy.port();
        if (!service
                 .AttachTransport(
                     "doc", std::make_shared<net::RemoteBatchSource>(ropts))
                 .ok()) {
          return false;
        }

        auto report = service.Serve("doc", rules, pipeline::ServeOptions{});
        const char* outcome = nullptr;
        uint64_t retries = 0;
        uint64_t reconnects = 0;
        if (report.ok()) {
          retries = report.value().retries;
          reconnects = report.value().reconnects;
          if (report.value().view != reference.value()) {
            outcome = "VIEW_MISMATCH";
            ++view_mismatches;
            ok = false;
          } else if (fc.survivable) {
            outcome = "retried_success";
          } else {
            // Tampering should not have produced a view at all — even a
            // correct one (a retry that re-verified) breaks the terminal
            // contract this matrix pins.
            outcome = "UNEXPECTED_VIEW";
            ++contract_violations;
            ok = false;
          }
        } else {
          const StatusCode code = report.status().code();
          const bool contracted =
              code == StatusCode::kIntegrityError ||
              code == StatusCode::kUnavailable ||
              code == StatusCode::kDeadlineExceeded;
          if (!contracted) {
            outcome = "UNCONTRACTED_ERROR";
            ++contract_violations;
            ok = false;
          } else if (fc.survivable) {
            outcome = "UNEXPECTED_FAILURE";
            ++contract_violations;
            ok = false;
          } else if (code != StatusCode::kIntegrityError) {
            outcome = "WRONG_ERROR_CLASS";
            ++contract_violations;
            ok = false;
          } else {
            outcome = "integrity_error";
          }
        }
        if (outcome[0] >= 'A' && outcome[0] <= 'Z') {
          std::fprintf(stderr, "fault_matrix/%s: %s (%s)\n", cell.c_str(),
                       outcome,
                       report.ok() ? "serve returned a view"
                                   : report.status().ToString().c_str());
        }
        if (proxy.faults_fired() != 1) {
          std::fprintf(stderr,
                       "fault_matrix/%s: programmed fault fired %llu times,"
                       " not once\n",
                       cell.c_str(),
                       static_cast<unsigned long long>(proxy.faults_fired()));
          ok = false;
        }

        *json += first_cell ? "" : ",\n";
        first_cell = false;
        *json += std::string("      {\"fault\": \"") + fc.name +
                 "\", \"backend\": \"" +
                 crypto::CipherBackendKindName(backend) + "\", \"cache\": \"" +
                 (warm ? "warm" : "cold") + "\", \"outcome\": \"" + outcome +
                 "\", \"retries\": " + u64(retries) +
                 ", \"reconnects\": " + u64(reconnects) + "}";

        (void)service.AttachTransport("doc", nullptr);
        proxy.Stop();
        server.Stop();
      }
    }
  }
  *json += "\n    ],\n";
  *json += "    \"view_mismatches\": " + u64(view_mismatches) + ",\n";
  *json += "    \"contract_violations\": " + u64(contract_violations) +
           "\n  },\n";
  return ok;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void AppendVariantJson(std::string* json, const VariantRun& run,
                       bool view_matches) {
  auto u64 = [](uint64_t v) { return std::to_string(v); };
  *json += "        {\"variant\": \"";
  *json += index::VariantName(run.variant);
  *json += "\", \"encoded_bytes\": " + u64(run.encoded_bytes);
  *json += ", \"wire_bytes\": " + u64(run.wire_bytes);
  *json += ", \"wire_bytes_full_stream\": " + u64(run.wire_bytes_full);
  *json += ", \"bytes_fetched\": " + u64(run.bytes_fetched);
  *json += ", \"bytes_decrypted\": " + u64(run.bytes_decrypted);
  *json += ", \"bytes_hashed\": " + u64(run.bytes_hashed);
  *json += ", \"requests\": " + u64(run.requests);
  *json += ", \"segments\": " + u64(run.segments);
  *json += ", \"bare_chunk_reads\": " + u64(run.bare_chunk_reads);
  *json += ", \"proof_hashes_shipped\": " + u64(run.proof_hashes_shipped);
  *json += ", \"digest_bytes_shipped\": " + u64(run.digest_bytes_shipped);
  *json += ", \"gap_fragments_bridged\": " + u64(run.gap_fragments_bridged);
  *json += ", \"subtree_skips\": " + u64(run.skips);
  *json += ", \"skipped_encoded_bytes\": " + u64(run.skipped_bytes);
  *json += ", \"events_in\": " + u64(run.events_in);
  *json += ", \"peak_buffered\": " + u64(run.peak_buffered);
  *json += ", \"peak_buffered_bytes\": " + u64(run.peak_buffered_bytes);
  *json += ", \"deferrals\": " + u64(run.deferrals);
  *json += ", \"rereads\": " + u64(run.rereads);
  *json += ", \"reread_bytes\": " + u64(run.reread_bytes);
  *json += ", \"reread_decoded_bytes\": " + u64(run.reread_decoded_bytes);
  // Wall-clock stage timings (per skip-enabled serve) and derived
  // throughputs; evaluate_ns is the unaccounted remainder (navigation +
  // rule automata + serialization).
  auto mbps = [](uint64_t bytes, uint64_t ns) {
    return ns == 0 ? 0.0 : static_cast<double>(bytes) * 1000.0 /
                               static_cast<double>(ns);
  };
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                ", \"timings\": {\"serve_ns\": %llu, \"fetch_ns\": %llu, "
                "\"decrypt_ns\": %llu, \"hash_ns\": %llu, "
                "\"evaluate_ns\": %llu, \"decrypt_mb_s\": %.1f, "
                "\"hash_mb_s\": %.1f, \"serve_mb_s\": %.1f, "
                "\"backend\": \"%s\", \"backend_hardware\": %s, "
                "\"hash_impl\": \"%s\"}",
                static_cast<unsigned long long>(run.serve_ns),
                static_cast<unsigned long long>(run.fetch_ns),
                static_cast<unsigned long long>(run.decrypt_ns),
                static_cast<unsigned long long>(run.hash_ns),
                static_cast<unsigned long long>(run.evaluate_ns),
                mbps(run.bytes_decrypted, run.decrypt_ns),
                mbps(run.bytes_hashed, run.hash_ns),
                mbps(run.encoded_bytes, run.serve_ns),
                run.backend.c_str(), run.backend_hw ? "true" : "false",
                run.hash_impl.c_str());
  *json += buf;
  *json += ", \"view_matches_reference\": ";
  *json += view_matches ? "true" : "false";
  *json += "}";
}

}  // namespace

int main(int argc, char** argv) {
  int folders = 12;
  bool quick = false;
  std::string out_path;
  std::string corpus_name;
  uint64_t corpus_source_bytes = 1 << 16;
  crypto::ChunkLayout layout;
  layout.chunk_size = 1024;
  layout.fragment_size = 64;
  crypto::CipherBackendKind backend = crypto::CipherBackendKind::k3Des;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      folders = 4;
    } else if (arg == "--backend" && i + 1 < argc) {
      auto kind = crypto::ParseCipherBackendName(argv[++i]);
      if (!kind.ok()) {
        std::fprintf(stderr, "csxa_bench: %s\n",
                     kind.status().message().c_str());
        return 2;
      }
      backend = kind.value();
    } else if (arg == "--folders" && i + 1 < argc) {
      folders = std::atoi(argv[++i]);
      if (folders <= 0) folders = 1;
    } else if (arg == "--chunk" && i + 1 < argc) {
      layout.chunk_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fragment" && i + 1 < argc) {
      layout.fragment_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_name = argv[++i];
    } else if (arg == "--corpus-bytes" && i + 1 < argc) {
      corpus_source_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: csxa_bench [--quick] [--folders N] [--chunk N] "
                   "[--fragment N] [--backend 3des|aes|aes-portable] "
                   "[--corpus FAMILY [--corpus-bytes N]] [--out FILE]\n");
      return 2;
    }
  }
  if (!layout.Validate(crypto::CipherBackendBlockSize(backend)).ok()) {
    std::fprintf(stderr,
                 "csxa_bench: invalid --chunk/--fragment layout for the %s "
                 "backend\n",
                 crypto::CipherBackendKindName(backend));
    return 2;
  }
  // Only a standard-source run may default to the committed baseline name;
  // an exploratory --corpus run that forgot --out must not clobber it.
  if (out_path.empty())
    out_path = corpus_name.empty() ? "BENCH_PR9.json" : "bench_corpus.json";

  // The scenario matrix source: the hand-built hospital document (whose
  // shape the strict pruning gates assume), or — exploratory — a generated
  // corpus with its matched rule families.
  const bool standard_source = corpus_name.empty();
  std::string xml;
  bench::CorpusFamily corpus_family = bench::CorpusFamily::kHospital;
  if (standard_source) {
    xml = MakeDocument(folders, /*consults=*/3, /*analyses=*/4);
  } else {
    auto family = bench::ParseFamily(corpus_name);
    if (!family.ok()) {
      std::fprintf(stderr, "csxa_bench: %s\n",
                   family.status().message().c_str());
      return 2;
    }
    corpus_family = family.value();
    bench::CorpusSpec spec;
    spec.family = corpus_family;
    spec.target_bytes = corpus_source_bytes;
    xml = bench::GenerateCorpus(spec).xml;
  }

  const auto variants = {index::Variant::kNc, index::Variant::kTc,
                         index::Variant::kTcs, index::Variant::kTcsb,
                         index::Variant::kTcsbr};

  std::string json = "{\n  \"benchmark\": \"csxa_skip_navigation\",\n";
  json += "  \"pr\": 9,\n";
  json += "  \"config\": {\"source\": \"" +
          (standard_source ? std::string("hospital_builtin")
                           : JsonEscape(corpus_name)) +
          "\", \"folders\": " + std::to_string(folders) +
          ", \"document_bytes\": " + std::to_string(xml.size()) +
          ", \"chunk_size\": " + std::to_string(layout.chunk_size) +
          ", \"fragment_size\": " + std::to_string(layout.fragment_size) +
          ", \"backend\": \"" +
          crypto::CipherBackendKindName(backend) +
          "\", \"backend_hardware\": " +
          (crypto::CipherBackendHardwareAccelerated(backend) ? "true"
                                                             : "false") +
          "},\n  \"scenarios\": [\n";

  bool ok = true;
  std::vector<Scenario> scenarios;
  if (standard_source) {
    scenarios = Scenarios();
  } else {
    // A generated corpus brings its own matched rule families; the strict
    // pruning expectations are calibrated to the hand-built document, so
    // scenario-level gates stay off (cost-model gates still apply).
    for (bench::RuleFamily rf : bench::AllRuleFamilies()) {
      scenarios.push_back({bench::RuleFamilyName(rf),
                           bench::RulesFor(corpus_family, rf),
                           /*bitmap_pruning=*/false, /*size_pruning=*/false});
    }
  }
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& sc = scenarios[s];
    auto parsed = access::ParseRuleList(sc.rules_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: bad rules: %s\n", sc.name.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    std::vector<access::AccessRule> rules = parsed.take();

    std::vector<VariantRun> runs;
    for (index::Variant v : variants) {
      auto run = RunVariant(xml, v, rules, layout, backend);
      if (!run.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", sc.name.c_str(), VariantName(v),
                     run.status().ToString().c_str());
        return 2;
      }
      runs.push_back(std::move(run.value()));
    }

    const std::string& reference = runs.front().view;  // NC
    json += "    {\"name\": \"" + JsonEscape(sc.name) + "\",";
    json += " \"rules\": " + std::to_string(rules.size()) + ",";
    json += " \"view_bytes\": " + std::to_string(reference.size()) + ",";
    json += " \"bitmap_pruning\": ";
    json += sc.bitmap_pruning ? "true" : "false";
    json += ", \"variants\": [\n";
    for (size_t r = 0; r < runs.size(); ++r) {
      bool matches = runs[r].view == reference;
      if (!matches) {
        std::fprintf(stderr, "%s/%s: authorized view diverges from NC\n",
                     sc.name.c_str(), VariantName(runs[r].variant));
        ok = false;
      }
      AppendVariantJson(&json, runs[r], matches);
      json += r + 1 < runs.size() ? ",\n" : "\n";
    }
    json += "      ]}";
    json += s + 1 < scenarios.size() ? ",\n" : "\n";

    // The paper's claim, enforced: index metadata must pay for itself.
    auto run_for = [&runs](index::Variant v) -> const VariantRun& {
      for (const VariantRun& r : runs) {
        if (r.variant == v) return r;
      }
      return runs.front();  // Unreachable: all variants always run.
    };
    const VariantRun& tc = run_for(index::Variant::kTc);
    const VariantRun& tcs = run_for(index::Variant::kTcs);
    for (const VariantRun& rich : runs) {
      if (rich.variant != index::Variant::kTcsb &&
          rich.variant != index::Variant::kTcsbr) {
        continue;
      }
      if (sc.bitmap_pruning &&
          (rich.wire_bytes >= tcs.wire_bytes ||
           rich.bytes_decrypted >= tcs.bytes_decrypted)) {
        std::fprintf(stderr,
                     "%s/%s: expected strictly fewer wire/decrypted bytes "
                     "than TCS (wire %llu vs %llu, decrypted %llu vs %llu)\n",
                     sc.name.c_str(), VariantName(rich.variant),
                     static_cast<unsigned long long>(rich.wire_bytes),
                     static_cast<unsigned long long>(tcs.wire_bytes),
                     static_cast<unsigned long long>(rich.bytes_decrypted),
                     static_cast<unsigned long long>(tcs.bytes_decrypted));
        ok = false;
      }
    }
    // Skip-mode cost sanity, whole matrix (PR 5): a skip-enabled serve may
    // never pay more wire than full streaming of the same variant beyond
    // the per-chunk digest slack — the planner's proof-aware hole filling
    // and stream-all fallback exist to guarantee it. (Full streaming ships
    // one encrypted digest per chunk too, but chunk-touch order can shift
    // which serves trim them, hence the slack — sized to the backend's
    // digest ciphertext, 24 bytes for 3DES and 32 for AES.)
    const uint64_t digest_bytes =
        crypto::DigestCipherBytes(crypto::CipherBackendBlockSize(backend));
    for (const VariantRun& run : runs) {
      const uint64_t chunks =
          (run.encoded_bytes + layout.chunk_size - 1) / layout.chunk_size;
      const uint64_t slack = chunks * digest_bytes;
      if (run.wire_bytes > run.wire_bytes_full + slack) {
        std::fprintf(stderr,
                     "%s/%s: skip-mode wire %llu exceeds full streaming "
                     "%llu + %llu slack (cost-model inversion)\n",
                     sc.name.c_str(), VariantName(run.variant),
                     static_cast<unsigned long long>(run.wire_bytes),
                     static_cast<unsigned long long>(run.wire_bytes_full),
                     static_cast<unsigned long long>(slack));
        ok = false;
      }
    }
    if (sc.size_pruning && tcs.wire_bytes >= tc.wire_bytes) {
      std::fprintf(stderr,
                   "%s: expected TCS to transfer strictly less than TC "
                   "(%llu vs %llu)\n",
                   sc.name.c_str(),
                   static_cast<unsigned long long>(tcs.wire_bytes),
                   static_cast<unsigned long long>(tc.wire_bytes));
      ok = false;
    }
    // Batched-fetch gate (PR 4): the integrity protocol must not invert
    // the cost model. TC — which streams everything — must stay within a
    // handful of coalesced round trips and under raw NC's wire bytes
    // (proofs amortized per chunk, not per request).
    const VariantRun& nc = run_for(index::Variant::kNc);
    if (standard_source && sc.name == "closed_world" &&
        (tc.requests > 40 || tc.wire_bytes >= nc.wire_bytes)) {
      std::fprintf(stderr,
                   "%s: batched fetch regressed on TC (%llu requests, "
                   "wire %llu vs NC %llu)\n",
                   sc.name.c_str(),
                   static_cast<unsigned long long>(tc.requests),
                   static_cast<unsigned long long>(tc.wire_bytes),
                   static_cast<unsigned long long>(nc.wire_bytes));
      ok = false;
    }
  }

  json += "  ],\n";
  if (!RunDeferredMode(&json, layout, backend)) ok = false;
  if (!RunWarmCache(&json, folders, backend)) ok = false;
  if (!RunBackendSection(&json, quick, layout, folders)) ok = false;
  // Transport sections (PR 9): skip navigation priced across a slow
  // link, and the fault matrix served through the programmed proxy.
  if (!RunLatencySweep(&json, folders, backend)) ok = false;
  if (!RunFaultMatrix(&json)) ok = false;
  // Corpus-scale sections: the seeded generator across every family, then
  // the service-level load harness over the paper families. Quick mode
  // (the ctest smoke) shrinks both to keep sanitizer runs fast; the
  // default run is what BENCH_PR9.json commits and CI gates.
  if (!RunCorpusSection(&json, quick ? uint64_t{16} << 10
                                     : uint64_t{64} << 10)) {
    ok = false;
  }
  bench::LoadConfig load;
  load.backend = backend;
  if (quick) {
    load.target_bytes = 128 << 10;
    load.threads = 4;
    load.serves_per_thread = 2;
    load.version_bumps = 1;
  } else {
    load.target_bytes = 1 << 20;
    load.threads = 8;
    load.serves_per_thread = 2;
    load.version_bumps = 2;
  }
  if (!RunLoadSection(&json, load)) ok = false;
  json += "  \"checks_passed\": ";
  json += ok ? "true" : "false";
  json += "\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s%s written to %s\n", ok ? "" : "CHECKS FAILED; ",
              "benchmark results", out_path.c_str());
  return ok ? 0 : 1;
}
