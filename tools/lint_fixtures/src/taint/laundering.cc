// Deliberate verify-before-trust violations for csxa_lint --self-test:
// every marked line below is pinned by (file, line, check) in
// EXPECTED_FIXTURE_FINDINGS — append new cases, never reflow these.
// Self-contained stubs so the libclang engine parses the file standalone.
#include <cstring>
#include <vector>

namespace csxa::taint_fixture {

struct UnverifiedBytes {
  std::vector<unsigned char>& ReleaseUnverified();
  unsigned long size() const;
};
struct BatchResponse {
  UnverifiedBytes ciphertext;
  const unsigned char* data() const;
  unsigned long size() const;
};
struct Source {
  BatchResponse ReadBatch(int fragments);
};
struct Navigator {
  static void OpenBuffer(const unsigned char* data, unsigned long size);
};
struct Cache {
  void Record(const unsigned char* node);
};
struct Soe {
  const unsigned char* VerifiedViewOf(const unsigned char* p) const;
  void DecryptVerifiedBatch(const BatchResponse& r, unsigned char* out);
};

// Violation: a freshly read (tainted) response fed straight to the
// navigator — no mint site anywhere on the path.
void DirectSourceToSink(Source* src) {
  BatchResponse resp = src->ReadBatch(4);
  Navigator::OpenBuffer(resp.data(), resp.size());  // line 37: taint-dataflow
}

// Violation: laundering through a plain buffer via memcpy, then writing
// the copy into the digest cache.
void CopyLaunder(Source* src, Cache* cache) {
  BatchResponse resp = src->ReadBatch(4);
  unsigned char plain[64];
  // csxa-lint: allow(taint-release) fixture: seeding the copy-launder path
  const std::vector<unsigned char>& raw = resp.ciphertext.ReleaseUnverified();
  if (!raw.empty()) std::memcpy(plain, raw.data(), raw.size());
  cache->Record(plain);  // line 48: taint-dataflow
}

// Violation: laundering through a raw pointer into the witness minter.
void PointerLaunder(Source* src, Soe* soe) {
  BatchResponse resp = src->ReadBatch(4);
  // csxa-lint: allow(taint-release) fixture: seeding the pointer-launder path
  const unsigned char* p = resp.ciphertext.ReleaseUnverified().data();
  soe->VerifiedViewOf(p);  // line 56: taint-dataflow
}

// Violation: the escape hatch with no justification waiver at all.
void NakedRelease(BatchResponse* resp) {
  resp->ciphertext.ReleaseUnverified().clear();  // line 61: taint-release
}

// Violation: a waiver comment whose justification is missing.
void BareWaiver(BatchResponse* resp) {
  // csxa-lint: allow(taint-release)
  resp->ciphertext.ReleaseUnverified().clear();  // line 67: taint-release
}

// Violation: a naked byte-reinterpret outside common/bytes.h.
const unsigned char* CastLaunder(const char* s) {
  return reinterpret_cast<const unsigned char*>(s);  // 72: byte-reinterpret
}

// Clean: the verified path — reads judged by the mint site, then fed to
// the navigator. Must produce no findings (false-positive regression).
void VerifiedPathIsClean(Source* src, Soe* soe, unsigned char* out) {
  BatchResponse resp = src->ReadBatch(4);
  soe->DecryptVerifiedBatch(resp, out);
  Navigator::OpenBuffer(out, 64);
}

}  // namespace csxa::taint_fixture
