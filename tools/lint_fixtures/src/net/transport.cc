// Fixture: transport-layer violations — a failure class outside the
// src/net allowlist (Internal), and a Decode* verification-path function
// failing with the retryable class instead of IntegrityError.
#include "common/status.h"

namespace csxa::net {

Status Reconnect(int attempt) {
  if (attempt > 4) {
    return Status::Internal("fixture: reconnect gave up");
  }
  return Status::Unavailable("fixture: peer closed; retrying");
}
csxa::Status DecodeRecord(int n) {
  if (n == 0) return Status::Unavailable("fixture: short record");
  return Status::OK();
}

// The contracted classes are clean, and a waived out-of-list class with a
// justification produces no finding.
Status Slow() { return Status::DeadlineExceeded("fixture: slow peer"); }
Status Teardown() {
  // csxa-lint: allow(error-taxonomy) orderly-shutdown path, never relayed
  return Status::Corruption("fixture: torn down mid-write");
}

}  // namespace csxa::net
