// Fixture: the wire decoder's failure allowlist is {IntegrityError} and
// Decode* functions are verification-path strict — both violated below.
#include "common/status.h"

namespace csxa::crypto {

Status HandleFrame(int n) {
  if (n < 0) {
    return Status::InvalidArgument("fixture: negative frame");
  }
  return Status::IntegrityError("fixture: frame rejected");
}
csxa::Status DecodeFrame(int n) {
  if (n == 0) return Status::Corruption("fixture: empty frame");
  return Status::OK();
}

}  // namespace csxa::crypto
