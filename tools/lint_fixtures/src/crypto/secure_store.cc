// Fixture: store-side violations — a failure class outside the module
// allowlist, a duplicated IntegrityError message, and a memcpy on
// .data() with no size guard in reach.
#include <cstring>
#include <vector>
#include "common/status.h"

namespace csxa::crypto {
Status Broke() { return Status::Internal("fixture: invariant broken"); }

Status CheckDigest(bool ok) {
  if (!ok) {
    return Status::IntegrityError("fixture: digest mismatch");
  }
  return Status::OK();
}

// The same message as line 13 — a pinned fuzz rejection can no longer
// tell the two sites apart.
Status CheckRoot(bool ok) {
  if (ok) {
    return Status::OK();
  }
  return Status::IntegrityError("fixture: digest mismatch");
}

// Zero-length vectors return a null .data(); handing it to memcpy is UB
// even for zero bytes.
void CopyOut(const std::vector<unsigned char>& src, unsigned char* dst,
             unsigned long n) {
  std::memcpy(dst, src.data(), n);
}

// Clean counter-examples: none of these may produce a finding.
void CopyGuarded(const std::vector<unsigned char>& src,
                 unsigned char* dst) {
  if (!src.empty()) {
    std::memcpy(dst, src.data(), src.size());
  }
}

void CopyFixed(const std::vector<unsigned char>& src, unsigned char* dst) {
  std::memcpy(dst, src.data(), 16);
}

void CopyWaived(const std::vector<unsigned char>& src, unsigned char* dst,
                unsigned long n) {
  // csxa-lint: allow(unguarded-memcpy) caller contract guarantees n > 0
  std::memcpy(dst, src.data(), n);
}
}  // namespace csxa::crypto
