// Fixture: server-side violations — a failure class outside the module
// allowlist, mutex types invisible to thread-safety analysis, and an
// unguarded memcmp on .data().
#include <cstring>
#include <mutex>
#include <vector>
#include "common/status.h"
csxa::Status Reject() { return csxa::Status::Corruption("fixture: bad entry"); }

namespace csxa::server {

// std::mutex and std::lock_guard are invisible to clang Thread Safety
// Analysis — the locking contract must go through csxa::Mutex.
struct Registry {
  std::mutex mu;
  void Touch() { std::lock_guard<std::mutex> lock(mu); }
};

bool SameBytes(const std::vector<unsigned char>& a,
               const std::vector<unsigned char>& b) {
  // (no emptiness guard anywhere in reach)
  return std::memcmp(a.data(), b.data(), a.size()) == 0;
}

// Waived with a justification: no finding.
struct Legacy {
  // csxa-lint: allow(naked-mutex) interop with an external pool API
  std::mutex legacy_mu;
};

}  // namespace csxa::server
