// Minimal Status mock so the libclang engine can parse the fixtures as
// real C++ (the text engine does not need it). Mirrors the constructor
// set of src/common/status.h; carries no violations itself.
#ifndef CSXA_LINT_FIXTURES_COMMON_STATUS_H_
#define CSXA_LINT_FIXTURES_COMMON_STATUS_H_

#include <string>

namespace csxa {
class Status {
 public:
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string) { return Status(); }
  static Status ParseError(std::string) { return Status(); }
  static Status OutOfRange(std::string) { return Status(); }
  static Status IntegrityError(std::string) { return Status(); }
  static Status Corruption(std::string) { return Status(); }
  static Status NotSupported(std::string) { return Status(); }
  static Status ResourceExhausted(std::string) { return Status(); }
  static Status Internal(std::string) { return Status(); }
  static Status Unavailable(std::string) { return Status(); }
  static Status DeadlineExceeded(std::string) { return Status(); }
};
}  // namespace csxa

#endif  // CSXA_LINT_FIXTURES_COMMON_STATUS_H_
