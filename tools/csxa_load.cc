// csxa_load — service-level load driver for the secure-serve stack.
//
// Publishes one generated corpus per requested family into a
// DocumentService, then races a thread pool of mixed-role sessions
// against concurrent Update() version bumps, byte-checking every
// completed view against a single-session reference. See
// src/bench/load_harness.h for the measurement contract.
//
//   csxa_load                         # paper families, 1 MB, 8 threads
//   csxa_load --families all --bytes 16777216 --threads 16 --serves 8
//   csxa_load --smoke                 # CI preset: small and quick
//   csxa_load --soak                  # manual gigabyte-scale preset (AES)
//   csxa_load --remote --rtt 1 --faults 12 --smoke   # TCP + seeded faults
//
// Exit status is nonzero when any completed view mismatched, any failure
// was outside the contract (clean IntegrityError always; plus the typed
// retryable transport classes when --faults programs weather), or no
// serve completed at all.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/load_harness.h"

namespace {

using csxa::Result;
using csxa::bench::CorpusFamily;
using csxa::bench::LoadConfig;
using csxa::bench::LoadReport;

void Usage() {
  std::fprintf(stderr,
               "usage: csxa_load [options]\n"
               "  --families LIST  comma list of families, or 'paper' (default)"
               " or 'all'\n"
               "  --bytes N        per-document corpus size (default 1048576)\n"
               "  --threads N      worker threads (default 8)\n"
               "  --serves N       serves per thread (default 3)\n"
               "  --versions N     concurrent version bumps (default 2)\n"
               "  --seed N         content seed (default 1)\n"
               "  --zipf S         role-popularity exponent (default 1.1)\n"
               "  --variant V      nc|tc|tcs|tcsb|tcsbr (default tcsbr)\n"
               "  --chunk N        chunk size in bytes (default 1024)\n"
               "  --fragment N     fragment size in bytes (default 64)\n"
               "  --cache N        shared digest-cache capacity (default 4096)\n"
               "  --backend B      cipher backend: 3des (default), aes,"
               " aes-portable\n"
               "  --out FILE       also write the report JSON to FILE\n"
               "  --remote         serve over TCP: in-process terminal server"
               " + RemoteBatchSource\n"
               "  --rtt MS         injected round-trip time in ms (implies a"
               " pacing proxy)\n"
               "  --faults N       program N seeded fault events into the"
               " proxy (implies --remote)\n"
               "  --fault-seed N   fault program seed (default 42)\n"
               "  --smoke          CI preset: paper families, 1 MB, 8 threads,"
               " 2 serves/thread, 2 bumps\n"
               "  --soak           manual gigabyte-scale preset: all families,"
               " 64 MB/doc, 16 threads,\n"
               "                   8 serves/thread, 6 bumps, aes backend"
               " (~1.5 GB of plaintext served;\n"
               "                   later flags override, e.g. --soak --bytes"
               " 134217728)\n");
}

bool ParseFamilies(const std::string& arg, std::vector<CorpusFamily>* out) {
  if (arg == "paper") {
    *out = csxa::bench::PaperFamilies();
    return true;
  }
  if (arg == "all") {
    *out = csxa::bench::AllFamilies();
    return true;
  }
  out->clear();
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    Result<CorpusFamily> family =
        csxa::bench::ParseFamily(arg.substr(pos, comma - pos));
    if (!family.ok()) {
      std::fprintf(stderr, "csxa_load: %s\n",
                   family.status().message().c_str());
      return false;
    }
    out->push_back(family.value());
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseVariant(const std::string& arg, csxa::index::Variant* out) {
  using csxa::index::Variant;
  if (arg == "nc") *out = Variant::kNc;
  else if (arg == "tc") *out = Variant::kTc;
  else if (arg == "tcs") *out = Variant::kTcs;
  else if (arg == "tcsb") *out = Variant::kTcsb;
  else if (arg == "tcsbr") *out = Variant::kTcsbr;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--smoke") {
      config.families = csxa::bench::PaperFamilies();
      config.target_bytes = 1 << 20;
      config.threads = 8;
      config.serves_per_thread = 2;
      config.version_bumps = 2;
    } else if (arg == "--soak") {
      // Gigabyte-scale manual preset (not run in CI): every family at
      // 64 MB/document under the AES backend, long enough churn that the
      // shared cache sees real turnover. Later flags override.
      config.families = csxa::bench::AllFamilies();
      config.target_bytes = 64ull << 20;
      config.threads = 16;
      config.serves_per_thread = 8;
      config.version_bumps = 6;
      config.backend = csxa::crypto::CipherBackendKind::kAes;
    } else if (arg == "--backend" && (v = next())) {
      Result<csxa::crypto::CipherBackendKind> kind =
          csxa::crypto::ParseCipherBackendName(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "csxa_load: %s\n",
                     kind.status().message().c_str());
        return 2;
      }
      config.backend = kind.value();
    } else if (arg == "--families" && (v = next())) {
      if (!ParseFamilies(v, &config.families)) return 2;
    } else if (arg == "--bytes" && (v = next())) {
      config.target_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads" && (v = next())) {
      config.threads = std::atoi(v);
    } else if (arg == "--serves" && (v = next())) {
      config.serves_per_thread = std::atoi(v);
    } else if (arg == "--versions" && (v = next())) {
      config.version_bumps = std::atoi(v);
    } else if (arg == "--seed" && (v = next())) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--zipf" && (v = next())) {
      config.zipf_s = std::strtod(v, nullptr);
    } else if (arg == "--variant" && (v = next())) {
      if (!ParseVariant(v, &config.variant)) {
        Usage();
        return 2;
      }
    } else if (arg == "--chunk" && (v = next())) {
      config.layout.chunk_size = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fragment" && (v = next())) {
      config.layout.fragment_size = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache" && (v = next())) {
      config.shared_cache_capacity = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out" && (v = next())) {
      out_path = v;
    } else if (arg == "--remote") {
      config.remote = true;
    } else if (arg == "--rtt" && (v = next())) {
      config.remote = true;
      config.rtt_ns = std::strtoull(v, nullptr, 10) * 1'000'000ULL;
    } else if (arg == "--faults" && (v = next())) {
      config.remote = true;
      config.fault_count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fault-seed" && (v = next())) {
      config.fault_seed = std::strtoull(v, nullptr, 10);
    } else {
      Usage();
      return 2;
    }
  }

  Result<LoadReport> result = csxa::bench::RunLoad(config);
  if (!result.ok()) {
    std::fprintf(stderr, "csxa_load: %s\n",
                 result.status().message().c_str());
    return 1;
  }
  const LoadReport& report = result.value();

  std::string json;
  report.AppendJson(&json, "");
  json += "\n";
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "csxa_load: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  if (report.serves_completed == 0) {
    std::fprintf(stderr, "csxa_load: FAIL no serve completed\n");
    return 1;
  }
  if (report.view_mismatches != 0 || report.wrong_errors != 0) {
    std::fprintf(stderr,
                 "csxa_load: FAIL view_mismatches=%llu wrong_errors=%llu\n",
                 static_cast<unsigned long long>(report.view_mismatches),
                 static_cast<unsigned long long>(report.wrong_errors));
    return 1;
  }
  std::fprintf(stderr,
               "csxa_load: OK %llu/%llu serves (%llu stale rejections), "
               "%.1f serves/s, p99 %.1f ms, cache hit %.2f, %s%s %.1f MB/s\n",
               static_cast<unsigned long long>(report.serves_completed),
               static_cast<unsigned long long>(report.serves_attempted),
               static_cast<unsigned long long>(report.integrity_rejections),
               report.serves_per_sec, report.p99_ns / 1e6,
               report.cache_hit_rate, report.backend.c_str(),
               report.backend_hardware ? "+hw" : "", report.serve_mb_s);
  if (report.remote) {
    std::fprintf(
        stderr,
        "csxa_load: remote: %llu retries, %llu reconnects, %llu transport"
        " rejections, %llu/%llu faults fired\n",
        static_cast<unsigned long long>(report.transport_retries),
        static_cast<unsigned long long>(report.transport_reconnects),
        static_cast<unsigned long long>(report.transport_rejections),
        static_cast<unsigned long long>(report.faults_fired),
        static_cast<unsigned long long>(report.faults_programmed));
  }
  return 0;
}
