// End-to-end tests of the full SOE pipeline: encode → encrypt → serve
// ranges from the untrusted store → verify/decrypt lazily → navigate →
// evaluate access rules → serialize. The authorized view produced through
// the encrypted path must equal the view produced straight from the SAX
// parser, and tampering anywhere must surface as IntegrityError.

#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"
#include "index/encoder.h"
#include "index/secure_fetcher.h"
#include "pipeline/secure_pipeline.h"
#include "testing.h"
#include "xml/node.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x5a ^ (i * 13));
  }
  return key;
}

const char kDoc[] =
    "<Folder><Admin><Name>Jane</Name><SSN>123-45</SSN></Admin>"
    "<MedActs>"
    "<Analysis><Type>G3</Type><Cholesterol>260</Cholesterol>"
    "<Comments>bad</Comments></Analysis>"
    "<Analysis><Comments>fine</Comments><Type>G2</Type></Analysis>"
    "</MedActs></Folder>";

const char kRules[] =
    "+ /Folder\n"
    "- /Folder/Admin\n"
    "+ /Folder/Admin/Name\n"
    "- //Analysis[Type = G3]/Comments\n";

std::vector<access::AccessRule> TestRules() {
  auto rules = access::ParseRuleList(kRules);
  CHECK_OK(rules.status());
  return rules.ok() ? rules.take() : std::vector<access::AccessRule>{};
}

/// Oracle: evaluate straight from the SAX parser, no encoding/encryption.
std::string DirectView(const std::string& xml) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(TestRules(), &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}


Result<std::string> SecureView(const std::string& xml,
                               index::Variant variant,
                               const crypto::ChunkLayout& layout) {
  pipeline::SessionConfig cfg;
  cfg.variant = variant;
  cfg.layout = layout;
  cfg.key = TestKey();
  CSXA_ASSIGN_OR_RETURN(auto session, pipeline::SecureSession::Build(xml, cfg));
  CSXA_ASSIGN_OR_RETURN(pipeline::ServeReport report,
                        session.Serve(TestRules()));
  return report.view;
}

TEST(SecureViewMatchesDirectView) {
  const std::string expected = DirectView(kDoc);
  CHECK_EQ(expected,
           "<Folder><Admin><Name>Jane</Name></Admin><MedActs>"
           "<Analysis><Type>G3</Type><Cholesterol>260</Cholesterol>"
           "</Analysis>"
           "<Analysis><Comments>fine</Comments><Type>G2</Type></Analysis>"
           "</MedActs></Folder>");
  crypto::ChunkLayout layout;
  layout.chunk_size = 64;
  layout.fragment_size = 8;
  for (auto variant : {index::Variant::kTc, index::Variant::kTcs,
                       index::Variant::kTcsb, index::Variant::kTcsbr}) {
    auto view = SecureView(kDoc, variant, layout);
    CHECK_OK(view.status());
    if (view.ok()) CHECK_EQ(view.value(), expected);
  }
  // Also with the default (large-chunk) layout: one chunk covers all.
  auto view = SecureView(kDoc, index::Variant::kTcsbr, crypto::ChunkLayout{});
  CHECK_OK(view.status());
  if (view.ok()) CHECK_EQ(view.value(), expected);
}

TEST(SkippedSubtreesAreNeverFetched) {
  // Build a document with one small element followed by a large one; skip
  // the large subtree and verify its fragments were never transferred.
  std::string xml = "<r><head>h</head><big>";
  for (int i = 0; i < 200; ++i) {
    xml += "<item>payload-" + std::to_string(i) + "</item>";
  }
  xml += "</big></r>";

  auto dom = xml::SaxParser::ParseToDom(xml);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  auto doc = index::Encode(*dom.value(), index::Variant::kTcsbr);
  CHECK_OK(doc.status());
  if (!doc.ok()) return;

  crypto::ChunkLayout layout;
  layout.chunk_size = 256;
  layout.fragment_size = 32;
  auto store = crypto::SecureDocumentStore::Build(doc.value().bytes,
                                                  TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::SoeDecryptor soe(TestKey(), layout, store.value().plaintext_size(),
                           store.value().chunk_count());
  index::SecureFetcher fetcher(&store.value(), &soe);
  auto nav =
      index::DocumentNavigator::OpenBuffer(fetcher.verified_view(), &fetcher);
  CHECK_OK(nav.status());
  if (!nav.ok()) return;

  // r, head, "h", /head, big -> skip -> /big, /r, end.
  for (int i = 0; i < 4; ++i) CHECK_OK(nav.value()->Next().status());
  auto big = nav.value()->Next();
  CHECK_OK(big.status());
  CHECK_EQ(big.value().tag, "big");
  CHECK_OK(nav.value()->SkipSubtree());
  while (true) {
    auto item = nav.value()->Next();
    CHECK_OK(item.status());
    if (!item.ok() ||
        item.value().kind == index::DocumentNavigator::ItemKind::kEnd) {
      break;
    }
  }
  CHECK(fetcher.bytes_fetched() < store.value().plaintext_size() / 2);
  CHECK(fetcher.wire_bytes() > 0);
}

TEST(PullStreamMatchesServeAndFetchesLazily) {
  // The pull API (OpenStream/Next) is the same code path Serve drains: the
  // concatenated events must serialize to the identical view, and the
  // first event must be deliverable before the whole document has been
  // fetched/decrypted (the reader advances the navigate→evaluate loop only
  // as far as each Next() needs).
  std::string xml = "<r>";
  for (int i = 0; i < 100; ++i) {
    xml += "<item>payload-" + std::to_string(i) + "</item>";
  }
  xml += "</r>";
  auto parsed = access::ParseRuleList("+ /r\n");
  CHECK_OK(parsed.status());
  if (!parsed.ok()) return;
  std::vector<access::AccessRule> rules = parsed.take();

  pipeline::SessionConfig cfg;
  cfg.layout.chunk_size = 64;
  cfg.layout.fragment_size = 8;
  cfg.key = TestKey();
  auto session = pipeline::SecureSession::Build(xml, cfg);
  CHECK_OK(session.status());
  if (!session.ok()) return;
  auto report = session.value().Serve(rules);
  CHECK_OK(report.status());
  if (!report.ok()) return;

  auto stream = session.value().OpenStream(rules, pipeline::ServeOptions{});
  CHECK_OK(stream.status());
  if (!stream.ok()) return;
  xml::SerializingHandler ser;
  bool first_event_before_full_fetch = false;
  size_t events = 0;
  while (true) {
    auto item = stream.value()->Next();
    CHECK_OK(item.status());
    if (!item.ok() || item.value().end) break;
    if (++events == 1) {
      first_event_before_full_fetch =
          stream.value()->fetcher().bytes_fetched() * 2 <
          session.value().store().plaintext_size();
    }
    ser.Feed(item.value().event, item.value().depth);
  }
  CHECK_EQ(ser.output(), report.value().view);
  CHECK(events > 0);
  CHECK(first_event_before_full_fetch);
}

TEST(TamperingDetectedThroughPipeline) {
  auto dom = xml::SaxParser::ParseToDom(kDoc);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  auto doc = index::Encode(*dom.value(), index::Variant::kTcsbr);
  CHECK_OK(doc.status());
  if (!doc.ok()) return;
  crypto::ChunkLayout layout;
  layout.chunk_size = 64;
  layout.fragment_size = 8;
  auto store = crypto::SecureDocumentStore::Build(doc.value().bytes,
                                                  TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  store.value().TamperByte(doc.value().bytes.size() / 2, 0x80);

  crypto::SoeDecryptor soe(TestKey(), layout, store.value().plaintext_size(),
                           store.value().chunk_count());
  index::SecureFetcher fetcher(&store.value(), &soe);

  Status st = fetcher.Ensure(0, fetcher.size());
  CHECK(st.code() == StatusCode::kIntegrityError);
}

}  // namespace
