// Error-taxonomy contract: every attacker-facing rejection in the
// store/SOE chain reports StatusCode::kIntegrityError *specifically* —
// not InvalidArgument, not Corruption, not a generic failure. This is the
// PR 7 bug class pinned as a tier-1 test: a stale-session race was once
// misclassified as InvalidArgument and slipped through every attack test
// that only checked "some error happened". The attack matrix here mirrors
// the benchmark's cross-backend section (tools/csxa_bench.cc) so the
// taxonomy holds even when the bench is not run; the wire half pins the
// decoder contract the fuzz corpus relies on (tools/csxa_lint.py enforces
// the same contract statically on src/crypto/wire_format.cc).

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/cipher_backend.h"
#include "crypto/secure_store.h"
#include "crypto/wire_format.h"
#include "testing.h"

namespace csxa {
namespace {

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xA5 ^ (i * 29));
  }
  return key;
}

std::vector<uint8_t> TestDocumentBytes(char salt) {
  std::vector<uint8_t> doc(4096);
  for (size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<uint8_t>(salt + i % 26);
  }
  return doc;
}

crypto::ChunkLayout TestLayout() {
  crypto::ChunkLayout lay;
  lay.chunk_size = 512;
  lay.fragment_size = 32;
  return lay;
}

constexpr crypto::CipherBackendKind kBackends[] = {
    crypto::CipherBackendKind::k3Des,
    crypto::CipherBackendKind::kAes,
    crypto::CipherBackendKind::kAesPortable,
};

// Runs one store-level attack under one backend and checks the rejection
// class. `attack` mirrors the benchmark's BackendAttackRejected matrix,
// plus the chunk-replay attack (an internally consistent stale chunk).
void CheckAttackClass(crypto::CipherBackendKind backend, int attack,
                      const char* name) {
  const std::vector<uint8_t> doc = TestDocumentBytes('a');
  const crypto::ChunkLayout lay = TestLayout();
  uint32_t expected_version = 1;
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), lay,
                                                  /*version=*/1, backend);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  switch (attack) {
    case 0:
      store.value().TamperByte(2048, 0x40);
      break;
    case 1:
      store.value().SwapBlocks(2, 3);
      break;
    case 2:
      store.value().SwapChunkDigests(0, 1);
      break;
    case 3:
      expected_version = 2;  // Replayed stale document state.
      break;
    case 4: {
      // Replay of one chunk from an older store state: ciphertext and
      // digest are internally consistent, but the digest is sealed for
      // version 0 while the SOE expects version 1.
      auto old = crypto::SecureDocumentStore::Build(
          TestDocumentBytes('b'), TestKey(), lay, /*version=*/0, backend);
      CHECK_OK(old.status());
      if (!old.ok()) return;
      store.value().ReplayChunkFrom(old.value(), 2);
      break;
    }
  }
  crypto::SoeDecryptor soe(TestKey(), lay, store.value().plaintext_size(),
                           store.value().chunk_count(), expected_version,
                           crypto::SoeDecryptor::kDefaultDigestCacheCapacity,
                           /*shared_cache=*/nullptr, backend);
  auto resp = store.value().ReadRange(0, doc.size());
  CHECK_OK(resp.status());
  if (!resp.ok()) return;
  auto plain = soe.DecryptVerified(resp.value(), 0, doc.size());
  CHECK(!plain.ok());
  if (plain.ok()) {
    testing::Fail(__FILE__, __LINE__,
                  std::string("attack not rejected: ") + name);
    return;
  }
  if (plain.status().code() != StatusCode::kIntegrityError) {
    testing::Fail(__FILE__, __LINE__,
                  std::string(name) + " rejected with the wrong class: " +
                      plain.status().ToString());
  }
  CHECK(!plain.status().message().empty());
}

TEST(AttackMatrixRejectsAsIntegrityError) {
  const char* names[] = {"tampered byte", "swapped cipher blocks",
                         "transposed chunk digests", "replayed stale version",
                         "replayed stale chunk"};
  for (crypto::CipherBackendKind backend : kBackends) {
    for (int attack = 0; attack < 5; ++attack) {
      CheckAttackClass(backend, attack, names[attack]);
    }
  }
}

// Every wire-decode failure is an integrity failure: the decoder faces raw
// terminal bytes, so a frame it cannot parse *is* the attack surface. Any
// other class here would let a taxonomy-driven retry loop treat attacker
// bytes as a caller bug.
TEST(WireDecodeFailuresAreIntegrityErrors) {
  // A valid response frame to truncate: serve a batch and encode it.
  const std::vector<uint8_t> doc = TestDocumentBytes('a');
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), TestLayout(),
                                                  /*version=*/1);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::BatchRequest request;
  request.runs.push_back({0, 1024});
  request.runs.push_back({2048, 2560});
  auto resp = store.value().ReadBatch(request);
  CHECK_OK(resp.status());
  if (!resp.ok()) return;
  std::vector<uint8_t> frame;
  crypto::EncodeBatchResponse(resp.value(), &frame);

  int rejected = 0;
  for (size_t len = 0; len < frame.size(); len += 7) {
    auto decoded = crypto::DecodeBatchResponse(frame.data(), len);
    if (decoded.ok()) continue;  // A prefix that happens to parse is fine.
    ++rejected;
    if (decoded.status().code() != StatusCode::kIntegrityError) {
      testing::Fail(__FILE__, __LINE__,
                    "truncated response rejected with the wrong class: " +
                        decoded.status().ToString());
      return;
    }
  }
  CHECK(rejected > 0);

  std::vector<uint8_t> req_frame;
  crypto::EncodeBatchRequest(request, &req_frame);
  rejected = 0;
  for (size_t len = 0; len < req_frame.size(); ++len) {
    auto decoded = crypto::DecodeBatchRequest(req_frame.data(), len);
    if (decoded.ok()) continue;
    ++rejected;
    if (decoded.status().code() != StatusCode::kIntegrityError) {
      testing::Fail(__FILE__, __LINE__,
                    "truncated request rejected with the wrong class: " +
                        decoded.status().ToString());
      return;
    }
  }
  CHECK(rejected > 0);

  // Garbage that is not a frame at all.
  std::vector<uint8_t> garbage(64, 0xEE);
  auto decoded = crypto::DecodeBatchResponse(garbage.data(), garbage.size());
  CHECK(!decoded.ok());
  if (!decoded.ok()) {
    CHECK(decoded.status().code() == StatusCode::kIntegrityError);
  }
}

}  // namespace
}  // namespace csxa
