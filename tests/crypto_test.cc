// Known-answer tests for the crypto layer: DES against FIPS 46-3 style
// published vectors, SHA-1 against the NIST/FIPS 180-1 examples, Merkle
// root recomputation from partial ranges, and the secure-store integrity
// protocol against the attacks of Section 6.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/cipher_backend.h"
#include "crypto/des.h"
#include "crypto/merkle.h"
#include "crypto/position_cipher.h"
#include "crypto/secure_store.h"
#include "crypto/sha1.h"
#include "testing.h"

namespace {

using namespace csxa;          // NOLINT
using namespace csxa::crypto;  // NOLINT

uint8_t HexNibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<uint8_t>(c - 'a' + 10);
  return static_cast<uint8_t>(c - 'A' + 10);
}

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((HexNibble(hex[i]) << 4) |
                                       HexNibble(hex[i + 1])));
  }
  return out;
}

std::string ToHex(const uint8_t* data, size_t n) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

Block64 BlockFromHex(const std::string& hex) {
  Block64 b{};
  auto bytes = FromHex(hex);
  for (size_t i = 0; i < 8; ++i) b[i] = bytes[i];
  return b;
}

std::string Sha1Hex(const std::string& msg) {
  auto d = Sha1::Hash(msg);
  return ToHex(d.data(), d.size());
}

TEST(DesFipsVector) {
  // The classic worked example of FIPS 46 expositions.
  Des des(BlockFromHex("133457799BBCDFF1"));
  Block64 ct = des.EncryptBlock(BlockFromHex("0123456789ABCDEF"));
  CHECK_EQ(ToHex(ct.data(), 8), "85e813540f0ab405");
  Block64 pt = des.DecryptBlock(ct);
  CHECK_EQ(ToHex(pt.data(), 8), "0123456789abcdef");
}

TEST(DesSecondVector) {
  Des des(BlockFromHex("0E329232EA6D0D73"));
  Block64 ct = des.EncryptBlock(BlockFromHex("8787878787878787"));
  CHECK_EQ(ToHex(ct.data(), 8), "0000000000000000");
}

TEST(TripleDesDegeneratesToDes) {
  // EDE with K1 = K2 = K3 must equal single DES.
  Block64 k = BlockFromHex("133457799BBCDFF1");
  TripleDes::Key key{};
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 8; ++i) key[rep * 8 + i] = k[i];
  }
  TripleDes tdes(key);
  Des des(k);
  Block64 pt = BlockFromHex("0123456789ABCDEF");
  CHECK(tdes.EncryptBlock(pt) == des.EncryptBlock(pt));
  CHECK(tdes.DecryptBlock(des.EncryptBlock(pt)) == pt);
}

TEST(Sha1NistVectors) {
  CHECK_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  CHECK_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  CHECK_EQ(
      Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  CHECK_EQ(Sha1Hex(std::string(1000000, 'a')),
           "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1StateHandoff) {
  // The terminal hashes a prefix, ships the intermediate state, and the
  // SOE finishes the hash — the basic integrity protocol's key move.
  std::string msg(300, '\0');
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i * 7);
  for (size_t split : {0u, 1u, 63u, 64u, 65u, 128u, 299u, 300u}) {
    Sha1 terminal;
    terminal.Update(msg.substr(0, split));
    Sha1::State state = terminal.SaveState();

    Sha1 soe;
    soe.RestoreState(state);
    soe.Update(msg.substr(split));
    CHECK(soe.Finish() == Sha1::Hash(msg));
  }
}

TEST(MerkleRootFromRange) {
  std::vector<Sha1Digest> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(Sha1::Hash("leaf" + std::to_string(i)));
  }
  MerkleTree tree = MerkleTree::Build(leaves);
  for (uint64_t first = 0; first < 8; ++first) {
    for (uint64_t last = first; last < 8; ++last) {
      auto proof = tree.ProofForRange(first, last);
      std::vector<Sha1Digest> range(leaves.begin() + first,
                                    leaves.begin() + last + 1);
      auto root = MerkleTree::RootFromRange(8, first, last, range, proof);
      CHECK_OK(root.status());
      if (root.ok()) CHECK(root.value() == tree.root());
    }
  }
}

TEST(MerkleDetectsTamperedLeaf) {
  std::vector<Sha1Digest> leaves;
  for (int i = 0; i < 4; ++i) {
    leaves.push_back(Sha1::Hash("leaf" + std::to_string(i)));
  }
  MerkleTree tree = MerkleTree::Build(leaves);
  auto proof = tree.ProofForRange(1, 2);
  std::vector<Sha1Digest> range = {Sha1::Hash("tampered"), leaves[2]};
  auto root = MerkleTree::RootFromRange(4, 1, 2, range, proof);
  CHECK_OK(root.status());
  if (root.ok()) CHECK(!(root.value() == tree.root()));
}

TEST(PositionCipherDefeatsDictionaryAttacks) {
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  PositionCipher cipher(key);
  Block64 block = BlockFromHex("4141414141414141");
  // Identical plaintext at two positions must encrypt differently.
  CHECK(!(cipher.EncryptBlock(block, 0) == cipher.EncryptBlock(block, 1)));
  CHECK(cipher.DecryptBlock(cipher.EncryptBlock(block, 7), 7) == block);

  std::vector<uint8_t> buf(64, 0x41);
  CHECK(cipher.Decrypt(cipher.Encrypt(buf, 3), 3) == buf);
}

std::vector<uint8_t> TestDocument(size_t n) {
  std::vector<uint8_t> doc(n);
  for (size_t i = 0; i < n; ++i) doc[i] = static_cast<uint8_t>(i * 31 + 7);
  return doc;
}

TEST(Aes128Fips197Vector) {
  // FIPS-197 Appendix C.1. Block 0's position tweak is zero, so the
  // segment API at first_block=0 is raw AES — the KAT pins both the
  // portable path and (when the CPU has AES-NI) the hardware path.
  Aes128::Key key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  Aes128 aes(key);
  const std::vector<uint8_t> pt =
      FromHex("00112233445566778899aabbccddeeff");
  const std::string want_ct = "69c4e0d86a7b0430d8cdb78070b4c55a";

  uint8_t block[16];
  std::copy(pt.begin(), pt.end(), block);
  aes.EncryptSegmentTweaked(block, 16, 0, /*allow_hardware=*/false);
  CHECK_EQ(ToHex(block, 16), want_ct);
  aes.DecryptSegmentTweaked(block, 16, 0, /*allow_hardware=*/false);
  CHECK(std::equal(pt.begin(), pt.end(), block));

  std::copy(pt.begin(), pt.end(), block);
  aes.EncryptSegmentTweaked(block, 16, 0, /*allow_hardware=*/true);
  CHECK_EQ(ToHex(block, 16), want_ct);
  aes.DecryptSegmentTweaked(block, 16, 0, /*allow_hardware=*/true);
  CHECK(std::equal(pt.begin(), pt.end(), block));
}

TEST(AesHardwareAndPortableAgree) {
  // The NI and portable paths of one key must be interchangeable on any
  // segment shape: one machine's hardware-encrypted store must decrypt on
  // another machine's software path (and under CSXA_FORCE_PORTABLE).
  Aes128::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x8e ^ (i * 11));
  }
  Aes128 aes(key);
  for (size_t blocks : {1u, 2u, 3u, 4u, 5u, 9u, 32u}) {
    std::vector<uint8_t> buf(blocks * 16);
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<uint8_t>(i * 13 + 5);
    }
    std::vector<uint8_t> hw = buf, sw = buf;
    aes.EncryptSegmentTweaked(hw.data(), hw.size(), 77, true);
    aes.EncryptSegmentTweaked(sw.data(), sw.size(), 77, false);
    CHECK(hw == sw);
    // Identical plaintext blocks at different positions differ (tweak).
    std::vector<uint8_t> same(32, 0x41), enc = same;
    aes.EncryptSegmentTweaked(enc.data(), enc.size(), 0, true);
    CHECK(!std::equal(enc.begin(), enc.begin() + 16, enc.begin() + 16));
    aes.DecryptSegmentTweaked(hw.data(), hw.size(), 77, false);
    CHECK(hw == buf);
  }
}

const CipherBackendKind kAllBackends[] = {
    CipherBackendKind::k3Des, CipherBackendKind::kAes,
    CipherBackendKind::kAesPortable};

TEST(CipherBackendsRoundTripStore) {
  // The equivalence contract of the backend matrix: every backend serves
  // byte-identical plaintext through both the ranged and the batched
  // verified protocol, on aligned and odd-tail documents.
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x10 + i);
  }
  struct Shape {
    uint32_t chunk, fragment;
    size_t doc;
  };
  for (const Shape& shape : {Shape{256, 32, 1000}, Shape{128, 16, 515}}) {
    ChunkLayout layout;
    layout.chunk_size = shape.chunk;
    layout.fragment_size = shape.fragment;
    auto doc = TestDocument(shape.doc);
    for (CipherBackendKind kind : kAllBackends) {
      auto store = SecureDocumentStore::Build(doc, key, layout,
                                              /*version=*/0, kind);
      CHECK_OK(store.status());
      if (!store.ok()) continue;
      CHECK_EQ(std::string(CipherBackendKindName(store.value().backend())),
               std::string(CipherBackendKindName(kind)));

      SoeDecryptor soe(key, layout, store.value().plaintext_size(),
                       store.value().chunk_count(), /*expected_version=*/0,
                       SoeDecryptor::kDefaultDigestCacheCapacity, nullptr,
                       kind);
      for (auto [pos, n] : std::vector<std::pair<uint64_t, uint64_t>>{
               {0, shape.doc}, {0, 1}, {shape.doc - 1, 1}, {3, 10},
               {250, 20}, {31, 257}}) {
        auto resp = store.value().ReadRange(pos, n);
        CHECK_OK(resp.status());
        if (!resp.ok()) continue;
        auto plain = soe.DecryptVerified(resp.value(), pos, n);
        CHECK_OK(plain.status());
        if (!plain.ok()) continue;
        std::vector<uint8_t> expect(doc.begin() + pos,
                                    doc.begin() + pos + n);
        CHECK(plain.value().ToVector() == expect);
      }

      // Whole-document batched fetch: one run, one whole-segment decrypt.
      BatchRequest req;
      req.runs.push_back({0, store.value().ciphertext().size()});
      auto batch = store.value().ReadBatch(req);
      CHECK_OK(batch.status());
      if (!batch.ok()) continue;
      std::vector<uint8_t> out(shape.doc);
      SoeDecryptor batch_soe(key, layout, store.value().plaintext_size(),
                             store.value().chunk_count(), 0,
                             SoeDecryptor::kDefaultDigestCacheCapacity,
                             nullptr, kind);
      CHECK_OK(batch_soe.DecryptVerifiedBatch(req, batch.value(), out.data(),
                                              out.size()));
      CHECK(out == doc);
    }
  }
}

bool BackendRangeFailsIntegrity(const SecureDocumentStore& store,
                                const TripleDes::Key& key,
                                CipherBackendKind kind, uint32_t version,
                                uint64_t pos, uint64_t n) {
  SoeDecryptor soe(key, store.layout(), store.plaintext_size(),
                   store.chunk_count(), version,
                   SoeDecryptor::kDefaultDigestCacheCapacity, nullptr, kind);
  auto resp = store.ReadRange(pos, n);
  if (!resp.ok()) return false;
  auto plain = soe.DecryptVerified(resp.value(), pos, n);
  return plain.status().code() == StatusCode::kIntegrityError;
}

TEST(CipherBackendsDetectAttacks) {
  // Every tamper class of the 3DES reference must fire identically on
  // every backend (including the forced-portable AES path): flipped
  // ciphertext, block substitution, digest transposition, stale version.
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x21 + i);
  }
  ChunkLayout layout;
  layout.chunk_size = 128;
  layout.fragment_size = 16;
  auto doc = TestDocument(512);

  for (CipherBackendKind kind : kAllBackends) {
    {  // Random modification.
      auto store = SecureDocumentStore::Build(doc, key, layout, 0, kind);
      CHECK_OK(store.status());
      store.value().TamperByte(200, 0x01);
      CHECK(BackendRangeFailsIntegrity(store.value(), key, kind, 0, 190, 30));
    }
    {  // Block substitution inside a chunk.
      auto store = SecureDocumentStore::Build(doc, key, layout, 0, kind);
      CHECK_OK(store.status());
      store.value().SwapBlocks(2, 3);
      CHECK(BackendRangeFailsIntegrity(store.value(), key, kind, 0, 0, 64));
    }
    {  // Chunk-digest transposition.
      auto store = SecureDocumentStore::Build(doc, key, layout, 0, kind);
      CHECK_OK(store.status());
      store.value().SwapChunkDigests(0, 1);
      CHECK(BackendRangeFailsIntegrity(store.value(), key, kind, 0, 0, 32));
    }
    {  // Replayed stale version: sealed for v1, SOE expects v2.
      auto store = SecureDocumentStore::Build(doc, key, layout,
                                              /*version=*/1, kind);
      CHECK_OK(store.status());
      CHECK(BackendRangeFailsIntegrity(store.value(), key, kind,
                                       /*version=*/2, 0, 64));
    }
  }
}

TEST(Des3BackendMatchesLegacyCipher) {
  // Compatibility pin: the default backend's store bytes are exactly the
  // position-mixed 3DES ciphertext PR 1 shipped — existing stores and
  // wire-byte baselines remain valid.
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x42 ^ (i * 3));
  }
  ChunkLayout layout;
  layout.chunk_size = 128;
  layout.fragment_size = 16;
  auto doc = TestDocument(500);
  auto store = SecureDocumentStore::Build(doc, key, layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;

  PositionCipher legacy(key);
  std::vector<uint8_t> padded = doc;
  padded.resize((doc.size() + 7) / 8 * 8, 0);
  CHECK(store.value().ciphertext() == legacy.Encrypt(padded));
}

TEST(AesLayoutRequiresWiderBlocks) {
  // A fragment size that fits 3DES but not the 16-byte AES block must be
  // rejected at Build, not fail mid-serve.
  TripleDes::Key key{};
  ChunkLayout layout;
  layout.chunk_size = 192;
  layout.fragment_size = 24;  // multiple of 8, not of 16
  auto doc = TestDocument(256);
  CHECK_OK(SecureDocumentStore::Build(doc, key, layout).status());
  auto aes_store = SecureDocumentStore::Build(doc, key, layout, 0,
                                              CipherBackendKind::kAes);
  CHECK(aes_store.status().code() == StatusCode::kInvalidArgument);
}

TEST(SecureStoreRoundTrip) {
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x10 + i);
  }
  ChunkLayout layout;
  layout.chunk_size = 256;
  layout.fragment_size = 32;
  auto doc = TestDocument(1000);  // not block- or chunk-aligned
  auto store = SecureDocumentStore::Build(doc, key, layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;

  SoeDecryptor soe(key, layout, store.value().plaintext_size(),
                   store.value().chunk_count());
  // Ranges crossing block, fragment and chunk boundaries.
  for (auto [pos, n] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 1000}, {0, 1}, {999, 1}, {3, 10}, {250, 20}, {31, 257}}) {
    auto resp = store.value().ReadRange(pos, n);
    CHECK_OK(resp.status());
    if (!resp.ok()) continue;
    auto plain = soe.DecryptVerified(resp.value(), pos, n);
    CHECK_OK(plain.status());
    if (!plain.ok()) continue;
    std::vector<uint8_t> expect(doc.begin() + pos, doc.begin() + pos + n);
    CHECK(plain.value().ToVector() == expect);
  }
}

bool RangeFailsIntegrity(const SecureDocumentStore& store,
                         const TripleDes::Key& key, uint64_t pos,
                         uint64_t n) {
  SoeDecryptor soe(key, store.layout(), store.plaintext_size(),
                   store.chunk_count());
  auto resp = store.ReadRange(pos, n);
  if (!resp.ok()) return false;
  auto plain = soe.DecryptVerified(resp.value(), pos, n);
  return plain.status().code() == StatusCode::kIntegrityError;
}

TEST(RangeNarrowingAttackDetected) {
  // A malicious terminal transfers 4 fragments but claims (and proves)
  // integrity for only the first 3, tampering with the 4th: the SOE must
  // refuse to decrypt bytes outside the verified range.
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x33 + i);
  }
  ChunkLayout layout;
  layout.chunk_size = 128;
  layout.fragment_size = 32;
  auto doc = TestDocument(256);
  auto store = SecureDocumentStore::Build(doc, key, layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;

  auto wide = store.value().ReadRange(0, 128);   // fragments 0..3
  auto narrow = store.value().ReadRange(0, 96);  // fragments 0..2
  CHECK_OK(wide.status());
  CHECK_OK(narrow.status());
  if (!wide.ok() || !narrow.ok()) return;

  RangeResponse attack = narrow.value();
  attack.ciphertext = wide.value().ciphertext;
  // csxa-lint: allow(taint-release) test tampers pre-verification ciphertext
  attack.ciphertext.ReleaseUnverified()[100] ^= 0x01;  // unclaimed fragment 3

  SoeDecryptor soe(key, layout, store.value().plaintext_size(),
                   store.value().chunk_count());
  auto plain = soe.DecryptVerified(attack, 0, 128);
  CHECK(plain.status().code() == StatusCode::kIntegrityError);
}

TEST(SecureStoreDetectsAttacks) {
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x21 + i);
  }
  ChunkLayout layout;
  layout.chunk_size = 128;
  layout.fragment_size = 16;
  auto doc = TestDocument(512);

  {  // Random modification.
    auto store = SecureDocumentStore::Build(doc, key, layout);
    CHECK_OK(store.status());
    store.value().TamperByte(200, 0x01);
    CHECK(RangeFailsIntegrity(store.value(), key, 190, 30));
  }
  {  // Block substitution inside a chunk.
    auto store = SecureDocumentStore::Build(doc, key, layout);
    CHECK_OK(store.status());
    store.value().SwapBlocks(2, 3);
    CHECK(RangeFailsIntegrity(store.value(), key, 0, 64));
  }
  {  // Chunk-digest transposition.
    auto store = SecureDocumentStore::Build(doc, key, layout);
    CHECK_OK(store.status());
    store.value().SwapChunkDigests(0, 1);
    CHECK(RangeFailsIntegrity(store.value(), key, 0, 32));
    CHECK(RangeFailsIntegrity(store.value(), key, 128, 32));
  }
}

TEST(ReplayedStaleChunkRejected) {
  // Section 6's replay attack: the document is updated (and re-encrypted
  // with a bumped version), but the terminal serves one chunk — with its
  // perfectly self-consistent digest — from the previous state. The
  // version counter bound into the ChunkDigest plaintext must expose it.
  TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x77 ^ (i * 5));
  }
  ChunkLayout layout;
  layout.chunk_size = 128;
  layout.fragment_size = 16;
  auto doc_v1 = TestDocument(512);
  auto doc_v2 = TestDocument(512);
  for (size_t i = 0; i < doc_v2.size(); ++i) doc_v2[i] ^= 0x5a;  // "edited"

  auto store_v1 = SecureDocumentStore::Build(doc_v1, key, layout,
                                             /*version=*/1);
  auto store_v2 = SecureDocumentStore::Build(doc_v2, key, layout,
                                             /*version=*/2);
  CHECK_OK(store_v1.status());
  CHECK_OK(store_v2.status());
  if (!store_v1.ok() || !store_v2.ok()) return;

  {  // Honest terminal, matching versions: reads succeed.
    SoeDecryptor soe(key, layout, store_v2.value().plaintext_size(),
                     store_v2.value().chunk_count(), /*expected_version=*/2);
    auto resp = store_v2.value().ReadRange(100, 50);
    CHECK_OK(resp.status());
    if (resp.ok()) CHECK_OK(soe.DecryptVerified(resp.value(), 100, 50).status());
  }
  {  // Chunk 1 replayed from the v1 store into the v2 store.
    SecureDocumentStore attacked = store_v2.take();
    attacked.ReplayChunkFrom(store_v1.value(), 1);
    SoeDecryptor soe(key, layout, attacked.plaintext_size(),
                     attacked.chunk_count(), /*expected_version=*/2);
    // Reads confined to intact chunks still succeed...
    auto ok_resp = attacked.ReadRange(0, 64);
    CHECK_OK(ok_resp.status());
    if (ok_resp.ok()) {
      CHECK_OK(soe.DecryptVerified(ok_resp.value(), 0, 64).status());
    }
    // ...but any read touching the stale chunk is rejected as a replay.
    auto stale_resp = attacked.ReadRange(130, 30);
    CHECK_OK(stale_resp.status());
    if (stale_resp.ok()) {
      Status st = soe.DecryptVerified(stale_resp.value(), 130, 30).status();
      CHECK(st.code() == StatusCode::kIntegrityError);
      CHECK(st.message().find("stale") != std::string::npos);
    }
  }
  {  // An SOE that still expects v1 must equally reject genuine v2 data:
     // the check is version equality, not recency heuristics.
    SoeDecryptor soe(key, layout, store_v1.value().plaintext_size(),
                     store_v1.value().chunk_count(), /*expected_version=*/2);
    auto resp = store_v1.value().ReadRange(0, 64);
    CHECK_OK(resp.status());
    if (resp.ok()) {
      Status st = soe.DecryptVerified(resp.value(), 0, 64).status();
      CHECK(st.code() == StatusCode::kIntegrityError);
    }
  }
}

}  // namespace
