// Server-layer tests: one DocumentService must serve many concurrent
// SecureSessions byte-identically to single-session serves, the shared
// per-(document, version) verified-digest cache must make every session
// after the first warm (trimmed proofs, bare re-reads, zero re-shipped
// tree hashes) without weakening integrity, and a version bump must fail
// stale sessions closed while fresh sessions see the new digests — even
// when the bump races in-flight serves.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "access/access_rule.h"
#include "pipeline/secure_pipeline.h"
#include "server/document_service.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x9e ^ (i * 17));
  }
  return key;
}

std::string Payload(const char* stem, int i, size_t n) {
  std::string s = std::string(stem) + "-" + std::to_string(i) + "-";
  while (s.size() < n) s += "loremipsum";
  s.resize(n);
  return s;
}

/// Folder set with bulky denied subtrees, needle grants, and a trailing
/// clearance predicate; `tag` varies the payload text (same length) so
/// document versions differ in content but not geometry.
std::string TestDocument(int folders, const char* tag = "v0") {
  std::string xml = "<Hospital>";
  for (int f = 0; f < folders; ++f) {
    xml += "<Folder><Admin>";
    xml += "<Name>" + Payload(tag, f, 16) + "</Name>";
    xml += "<Insurance>" + Payload(tag, f + 100, 160) + "</Insurance>";
    xml += "</Admin><MedActs>";
    for (int c = 0; c < 3; ++c) {
      xml += "<Consult><Diagnostic>" + Payload(tag, f * 10 + c, 56) +
             "</Diagnostic><Prescription>rx-" + std::to_string(f * 10 + c) +
             "</Prescription></Consult>";
    }
    xml += "</MedActs>";
    xml += std::string("<Clearance>") + (f % 2 ? "closed" : "open") +
           "</Clearance></Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

const char* const kRuleSets[] = {
    "+ /Hospital/Folder/MedActs\n",
    "+ //Prescription\n",
    "+ /Hospital/Folder[Clearance = open]/MedActs\n",
};

std::string DirectView(const std::string& xml,
                       const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

server::DocumentConfig TestConfig(index::Variant variant) {
  server::DocumentConfig cfg;
  cfg.variant = variant;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  return cfg;
}

// ---------------------------------------------------------------------------
// Concurrency stress: N threads, mixed rulesets/variants/budgets, one
// service — every view byte-identical to the single-session reference.
// ---------------------------------------------------------------------------

TEST(ConcurrentServesMatchSingleSessionViews) {
  const std::string xml = TestDocument(/*folders=*/6);
  server::DocumentService service;
  CHECK_OK(service.Publish("tcsbr", xml, TestConfig(index::Variant::kTcsbr)));
  CHECK_OK(service.Publish("tcs", xml, TestConfig(index::Variant::kTcs)));

  struct Expected {
    std::vector<access::AccessRule> rules;
    std::string view;
  };
  std::vector<Expected> expected;
  for (const char* rules_text : kRuleSets) {
    auto parsed = access::ParseRuleList(rules_text);
    CHECK_OK(parsed.status());
    if (!parsed.ok()) return;
    Expected e;
    e.rules = parsed.take();
    e.view = DirectView(xml, e.rules);
    expected.push_back(std::move(e));
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 6;
  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kItersPerThread; ++i) {
        const Expected& e = expected[(t + i) % expected.size()];
        pipeline::ServeOptions opts;
        // Mix strategies: every other serve forces deferrals + re-reads.
        opts.pending_buffer_budget = (t + i) % 2 == 0 ? UINT64_MAX : 64;
        const char* doc = (t + i) % 3 == 0 ? "tcs" : "tcsbr";
        auto report = service.Serve(doc, e.rules, opts);
        if (!report.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (report.value().view != e.view) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  CHECK_EQ(failures.load(), 0);
  CHECK_EQ(mismatches.load(), 0);

  // The shared cache actually got exercised across sessions.
  auto stats = service.CacheStats("tcsbr");
  CHECK_OK(stats.status());
  if (stats.ok()) {
    CHECK(stats.value().records > 0);
    CHECK(stats.value().bare_hits > 0);
  }
}

// ---------------------------------------------------------------------------
// Warm-cache economics: the second session of a document pays no material.
// ---------------------------------------------------------------------------

TEST(WarmSessionShipsNoIntegrityMaterial) {
  const std::string xml = TestDocument(/*folders=*/6);
  server::DocumentService service;
  CHECK_OK(service.Publish("doc", xml, TestConfig(index::Variant::kTcsbr)));
  auto rules = access::ParseRuleList("+ //Prescription\n").take();
  const std::string expected = DirectView(xml, rules);

  pipeline::ServeOptions opts;
  auto cold = service.Serve("doc", rules, opts);
  auto warm = service.Serve("doc", rules, opts);
  CHECK_OK(cold.status());
  CHECK_OK(warm.status());
  if (!cold.ok() || !warm.ok()) return;
  CHECK_EQ(cold.value().view, expected);
  CHECK_EQ(warm.value().view, expected);
  // Cold pays the material once; warm serves fully from the shared cache:
  // zero tree hashes, zero digests re-shipped, strictly less wire.
  CHECK(cold.value().proof_hashes_shipped > 0 ||
        cold.value().digest_bytes_shipped > 0);
  CHECK_EQ(warm.value().proof_hashes_shipped, uint64_t{0});
  CHECK_EQ(warm.value().digest_bytes_shipped, uint64_t{0});
  CHECK(warm.value().bare_chunk_reads > 0);
  CHECK(warm.value().wire_bytes < cold.value().wire_bytes);
}

TEST(WarmDeferralRereadsAreBare) {
  // Satellite: splicer re-reads ride the planner and, on a warm shared
  // cache, verify bare — and the reread accounting reports bytes actually
  // pulled, which never exceed the decoded span.
  const std::string xml = TestDocument(/*folders=*/6);
  server::DocumentService service;
  CHECK_OK(service.Publish("doc", xml, TestConfig(index::Variant::kTcsbr)));
  auto rules =
      access::ParseRuleList("+ /Hospital/Folder[Clearance = open]/MedActs\n")
          .take();
  const std::string expected = DirectView(xml, rules);

  pipeline::ServeOptions opts;
  opts.pending_buffer_budget = 64;  // Force deferrals + re-reads.
  auto cold = service.Serve("doc", rules, opts);
  auto warm = service.Serve("doc", rules, opts);
  CHECK_OK(cold.status());
  CHECK_OK(warm.status());
  if (!cold.ok() || !warm.ok()) return;
  CHECK_EQ(warm.value().view, expected);
  CHECK(warm.value().drive.rereads > 0);
  CHECK_EQ(warm.value().proof_hashes_shipped, uint64_t{0});
  CHECK_EQ(warm.value().digest_bytes_shipped, uint64_t{0});
  // Honest accounting: fetched re-read bytes are real and bounded by the
  // decoded span (boundary fragments already held are not re-billed).
  CHECK(warm.value().drive.reread_fetched_bytes > 0);
  CHECK(cold.value().drive.reread_fetched_bytes <=
        (cold.value().drive.reread_bits + 7) / 8 +
            2 * 32 * cold.value().drive.rereads);  // fragment-rounding slack
}

// ---------------------------------------------------------------------------
// Version bumps: stale sessions fail closed, fresh sessions see the new
// digests, races never produce mixed content.
// ---------------------------------------------------------------------------

TEST(StaleSessionRejectsAfterVersionBump) {
  const std::string v0 = TestDocument(/*folders=*/6, "v0");
  const std::string v1 = TestDocument(/*folders=*/6, "v1");
  server::DocumentService service;
  CHECK_OK(service.Publish("doc", v0, TestConfig(index::Variant::kTcsbr)));
  auto rules = access::ParseRuleList("+ /Hospital/Folder/MedActs\n").take();

  // Open before the bump (the header prefetch reads v0), bump, then
  // drain: the session's remaining fetches hit v1 bytes and digests and
  // must be rejected — not silently blended into the view.
  auto session = service.OpenSession("doc", rules, pipeline::ServeOptions());
  CHECK_OK(session.status());
  if (!session.ok()) return;
  CHECK_EQ(session.value()->version(), uint32_t{0});
  CHECK_OK(service.Update("doc", v1));
  auto cv = service.CurrentVersion("doc");
  CHECK_OK(cv.status());
  if (cv.ok()) CHECK_EQ(cv.value(), uint32_t{1});
  auto drained = session.value()->Drain();
  CHECK(!drained.ok());
  if (!drained.ok()) {
    CHECK(drained.status().code() == StatusCode::kIntegrityError);
  }

  // A session opened after the bump sees the new version's digests and
  // serves the new content.
  auto fresh = service.OpenSession("doc", rules, pipeline::ServeOptions());
  CHECK_OK(fresh.status());
  if (!fresh.ok()) return;
  CHECK_EQ(fresh.value()->version(), uint32_t{1});
  auto fresh_report = fresh.value()->Drain();
  CHECK_OK(fresh_report.status());
  if (fresh_report.ok()) {
    CHECK_EQ(fresh_report.value().view, DirectView(v1, rules));
  }
}

TEST(ShrinkingUpdateStillFailsStaleSessionsClosed) {
  // A bump to a *smaller* document makes a stale session's batch ranges
  // outrun the current store. That must surface as the same
  // IntegrityError class as any other stale read — not InvalidArgument —
  // so callers retrying/reopening on integrity failures handle both.
  const std::string big = TestDocument(/*folders=*/8, "v0");
  const std::string small = TestDocument(/*folders=*/2, "v1");
  server::DocumentService service;
  CHECK_OK(service.Publish("doc", big, TestConfig(index::Variant::kTcsbr)));
  auto rules = access::ParseRuleList("+ /Hospital/Folder/MedActs\n").take();
  auto session = service.OpenSession("doc", rules, pipeline::ServeOptions());
  CHECK_OK(session.status());
  if (!session.ok()) return;
  CHECK_OK(service.Update("doc", small));
  auto drained = session.value()->Drain();
  CHECK(!drained.ok());
  if (!drained.ok()) {
    CHECK(drained.status().code() == StatusCode::kIntegrityError);
  }
}

TEST(VersionBumpRaceNeverMixesContent) {
  // Serving threads race repeated updates: every completed serve must be
  // byte-identical to *some* published version's view; every other serve
  // must fail with IntegrityError. Anything else (blended or torn views)
  // is a replay-protection hole.
  const int kVersions = 4;
  std::vector<std::string> docs, views;
  auto rules = access::ParseRuleList("+ /Hospital/Folder/MedActs\n").take();
  for (int v = 0; v < kVersions; ++v) {
    docs.push_back(
        TestDocument(/*folders=*/6, ("v" + std::to_string(v)).c_str()));
    views.push_back(DirectView(docs.back(), rules));
  }
  server::DocumentService service;
  CHECK_OK(service.Publish("doc", docs[0], TestConfig(index::Variant::kTcsbr)));

  std::atomic<bool> stop{false};
  std::atomic<int> bad_views{0}, wrong_errors{0}, completed{0};
  std::vector<std::thread> servers;
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        auto report =
            service.Serve("doc", rules, pipeline::ServeOptions());
        if (report.ok()) {
          completed.fetch_add(1);
          bool known = false;
          for (const std::string& view : views) {
            known |= report.value().view == view;
          }
          if (!known) bad_views.fetch_add(1);
        } else if (report.status().code() != StatusCode::kIntegrityError) {
          wrong_errors.fetch_add(1);
        }
      }
    });
  }
  for (int v = 1; v < kVersions; ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    CHECK_OK(service.Update("doc", docs[v]));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& th : servers) th.join();
  CHECK_EQ(bad_views.load(), 0);
  CHECK_EQ(wrong_errors.load(), 0);
  CHECK(completed.load() > 0);  // The race must not starve every serve.
}

TEST(StaleCacheNeverVouchesForBumpedContent) {
  // Defense in depth: a decryptor handed a shared cache stamped with the
  // wrong version must not consult it (it falls back to a private one) —
  // otherwise one version's authenticated hashes could waive material for
  // another's bytes.
  crypto::ChunkLayout layout;
  layout.chunk_size = 64;
  layout.fragment_size = 8;
  std::vector<uint8_t> doc(200);
  for (size_t i = 0; i < doc.size(); ++i) doc[i] = static_cast<uint8_t>(i);
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), layout,
                                                  /*version=*/0);
  CHECK_OK(store.status());
  auto stale_cache = std::make_shared<crypto::VerifiedDigestCache>(
      layout.fragments_per_chunk(), 8, /*version=*/0);
  {
    // Populate the shared cache the only way the typestate wall permits:
    // through a real version-0 verification (Record() is passkey-gated to
    // the decryptor's verification path, so a test cannot forge entries).
    crypto::SoeDecryptor v0(TestKey(), layout, store.value().plaintext_size(),
                            store.value().chunk_count(),
                            /*expected_version=*/0,
                            /*digest_cache_capacity=*/8, stale_cache);
    auto resp = store.value().ReadRange(0, 64);
    CHECK_OK(resp.status());
    CHECK_OK(v0.DecryptVerified(resp.value(), 0, 64).status());
  }
  CHECK(stale_cache->CanVerifyBare(0, 0, 7));
  // The version-1 decryptor's cache stays private: the stale shared
  // instance must not make ranges bare-verifiable for this serve.
  crypto::SoeDecryptor soe(TestKey(), layout, store.value().plaintext_size(),
                           store.value().chunk_count(),
                           /*expected_version=*/1,
                           /*digest_cache_capacity=*/8, stale_cache);
  CHECK(!soe.CanVerifyBare(0, 0, 7));
}

}  // namespace
