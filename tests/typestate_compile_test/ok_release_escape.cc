// Legitimate escape hatch: ReleaseUnverified() hands back the raw vector
// for framing/fault-injection code. (In the real tree every call site
// carries a csxa-lint waiver; this suite is exempt from the linter.)
#include <cstdint>
#include <vector>

#include "common/tainted.h"

uint8_t Tamper(csxa::common::UnverifiedBytes* tainted) {
  std::vector<uint8_t>& raw = tainted->ReleaseUnverified();
  if (raw.empty()) return 0;
  raw[0] ^= 0x01;
  return raw[0];
}
