// Laundering attempt: read the raw bytes out of an UnverifiedBytes. The
// wrapper deliberately has no data()/iterators/operator[]; raw access is
// VerifyData() (passkey-gated) or the linted ReleaseUnverified() escape.
#include <cstdint>

#include "common/tainted.h"

const uint8_t* Attack(const csxa::common::UnverifiedBytes& tainted) {
  return tainted.data();
}
