// Laundering attempt: duplicate a verification witness. VerifiedPlaintext
// is move-only — a copy would be a second witness nobody verified.
#include "common/tainted.h"

csxa::common::VerifiedPlaintext Attack(
    const csxa::common::VerifiedPlaintext& v) {
  csxa::common::VerifiedPlaintext copy = v;
  return copy;
}
