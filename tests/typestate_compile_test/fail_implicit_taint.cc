// Laundering attempt: slip a plain byte vector across the taint boundary
// implicitly. The UnverifiedBytes constructor is explicit: marking bytes
// as terminal-sourced must be a visible, greppable act.
#include <cstdint>
#include <vector>

#include "common/tainted.h"

csxa::common::UnverifiedBytes Attack(std::vector<uint8_t> bytes) {
  return bytes;
}
