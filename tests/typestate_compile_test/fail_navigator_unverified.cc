// Laundering attempt: feed raw terminal bytes straight to the navigator.
// The pre-typestate OpenBuffer(data, size, fetcher) overload no longer
// exists — a navigator only accepts a common::VerifiedPlaintext witness.
#include "index/decoder.h"

csxa::Status Attack(const csxa::common::UnverifiedBytes& tainted) {
  auto nav = csxa::index::DocumentNavigator::OpenBuffer(tainted, nullptr);
  return nav.status();
}
