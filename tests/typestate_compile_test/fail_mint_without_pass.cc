// Laundering attempt: construct a VerifiedPlaintext without the passkey.
// Every constructor demands a VerifyPass as its first argument.
#include <cstdint>
#include <vector>

#include "common/tainted.h"

csxa::common::VerifiedPlaintext Attack(std::vector<uint8_t> bytes) {
  return csxa::common::VerifiedPlaintext(std::move(bytes));
}
