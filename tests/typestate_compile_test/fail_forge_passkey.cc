// Laundering attempt: forge the passkey outside the SoeDecryptor friend.
// VerifyPass's constructor is private; only the Merkle verification path
// can mint one.
#include "common/tainted.h"

csxa::common::VerifyPass Attack() { return csxa::common::VerifyPass{}; }
