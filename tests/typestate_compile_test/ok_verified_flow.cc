// Legitimate flows: everything the typestate wall must keep compiling.
// Builds with -Wall -Wextra -Werror.
#include <cstdint>
#include <utility>
#include <vector>

#include "common/tainted.h"
#include "crypto/secure_store.h"
#include "index/decoder.h"

namespace {

// Honest pre-verification uses: sizes for framing, copying tainted bytes
// around as tainted bytes.
uint64_t FrameSize(const csxa::common::UnverifiedBytes& tainted) {
  csxa::common::UnverifiedBytes still_tainted = tainted;  // copy is fine
  return still_tainted.size() + (tainted.empty() ? 0 : 1);
}

// The verification path returns witnesses; consumers may move and read
// them freely.
csxa::Status VerifyAndOpen(csxa::crypto::SoeDecryptor* soe,
                           const csxa::crypto::RangeResponse& resp,
                           std::vector<uint8_t>* out) {
  auto plain = soe->DecryptVerified(resp, 0, 64);
  if (!plain.ok()) return plain.status();
  csxa::common::VerifiedPlaintext moved = std::move(plain.value());
  *out = moved.ToVector();
  auto nav = csxa::index::DocumentNavigator::OpenBuffer(moved, nullptr);
  return nav.status();
}

}  // namespace

csxa::Status Probe(csxa::crypto::SoeDecryptor* soe,
                   const csxa::crypto::RangeResponse& resp,
                   std::vector<uint8_t>* out) {
  if (FrameSize(resp.ciphertext) == 0) return csxa::Status::OK();
  return VerifyAndOpen(soe, resp, out);
}
