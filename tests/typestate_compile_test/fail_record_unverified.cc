// Laundering attempt: write unauthenticated Merkle material into the
// verified-digest cache. Record() demands a VerifyPass the caller cannot
// mint, so cache poisoning (the PR 6 bug class) cannot even compile.
#include <vector>

#include "crypto/digest_cache.h"

void Attack(csxa::crypto::VerifiedDigestCache* cache) {
  std::vector<csxa::crypto::Sha1Digest> leaves(8);
  cache->Record(/*chunk=*/0, csxa::crypto::Sha1Digest{}, /*first=*/0, leaves,
                {});
}
