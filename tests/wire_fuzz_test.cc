// Wire-level fuzzing of the batched verified-fetch protocol: a
// deterministic mutation corpus (bit flips, truncations, length-field
// lies, segment/material inconsistencies, tampered proofs and digests,
// stale versions) is thrown at BatchResponse/BatchRequest decoding and at
// the chunk-digest verification behind it. The contract under attack
// input is absolute: every mutation must yield a clean IntegrityError —
// never a crash, never a hang, never silent acceptance of tampered bytes.
// The whole corpus runs under the ASan/UBSan ctest jobs, so an
// out-of-bounds read on a lying length field fails loudly there.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/secure_store.h"
#include "crypto/wire_format.h"
#include "testing.h"

namespace {

using namespace csxa;  // NOLINT

int mutations_rejected = 0;  ///< Corpus size witness (gate: >= 50).

crypto::TripleDes::Key FuzzKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xa5 ^ (i * 37));
  }
  return key;
}

crypto::ChunkLayout FuzzLayout() {
  crypto::ChunkLayout layout;
  layout.chunk_size = 512;
  layout.fragment_size = 64;
  return layout;
}

std::vector<uint8_t> FuzzPlaintext() {
  std::vector<uint8_t> bytes(2000);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < bytes.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    bytes[i] = static_cast<uint8_t>(state >> 33);
  }
  return bytes;
}

const crypto::SecureDocumentStore& FuzzStore() {
  static crypto::SecureDocumentStore store = [] {
    auto built = crypto::SecureDocumentStore::Build(
        FuzzPlaintext(), FuzzKey(), FuzzLayout(), /*version=*/0);
    CHECK(built.ok());
    return built.take();
  }();
  return store;
}

/// Three fragment-aligned runs: a partial chunk (proof non-trivial), a
/// whole chunk, and a tail run ending at the document end.
crypto::BatchRequest FuzzRequest() {
  crypto::BatchRequest request;
  request.runs.push_back({64, 320});
  request.runs.push_back({512, 1024});
  request.runs.push_back({1536, 2000});
  return request;
}

std::vector<uint8_t> FuzzResponseFrame() {
  auto response = FuzzStore().ReadBatch(FuzzRequest());
  CHECK(response.ok());
  std::vector<uint8_t> frame;
  crypto::EncodeBatchResponse(response.value(), &frame);
  return frame;
}

enum class Outcome {
  kDecodeRejected,  ///< Decoder refused the frame with IntegrityError.
  kVerifyRejected,  ///< Frame parsed; digest chain refused it.
  kAccepted,        ///< Plaintext released (only the unmutated control may).
  kWrongError,      ///< Any non-IntegrityError failure: always a bug.
};

/// Decode + full digest-chain verification with a FRESH decryptor (no
/// verified material leaks between mutations through a shared cache).
Outcome RunFrame(const std::vector<uint8_t>& frame,
                 uint32_t expected_version = 0) {
  const crypto::SecureDocumentStore& store = FuzzStore();
  auto decoded = crypto::DecodeBatchResponse(
      frame.empty() ? nullptr : frame.data(), frame.size());
  if (!decoded.ok()) {
    return decoded.status().code() == StatusCode::kIntegrityError
               ? Outcome::kDecodeRejected
               : Outcome::kWrongError;
  }
  crypto::SoeDecryptor soe(FuzzKey(), FuzzLayout(), store.plaintext_size(),
                           store.chunk_count(), expected_version);
  std::vector<uint8_t> out(store.plaintext_size());
  Status status = soe.DecryptVerifiedBatch(FuzzRequest(), decoded.value(),
                                           out.data(), out.size());
  if (status.ok()) return Outcome::kAccepted;
  return status.code() == StatusCode::kIntegrityError
             ? Outcome::kVerifyRejected
             : Outcome::kWrongError;
}

void ExpectRejected(const std::vector<uint8_t>& frame, const char* what) {
  const Outcome outcome = RunFrame(frame);
  if (outcome == Outcome::kAccepted) {
    testing::Fail(__FILE__, __LINE__,
                  std::string(what) + ": tampered frame was ACCEPTED");
    return;
  }
  if (outcome == Outcome::kWrongError) {
    testing::Fail(__FILE__, __LINE__,
                  std::string(what) + ": failure was not IntegrityError");
    return;
  }
  ++mutations_rejected;
}

void PatchU32(std::vector<uint8_t>* frame, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*frame)[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PatchU64(std::vector<uint8_t>* frame, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*frame)[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

// The unmutated control: the honest frame round-trips, verifies, and
// releases exactly the requested plaintext — without this the corpus
// could pass vacuously against a decoder that rejects everything.
TEST(HonestFrameAccepted) {
  const std::vector<uint8_t> frame = FuzzResponseFrame();
  CHECK(RunFrame(frame) == Outcome::kAccepted);

  auto decoded = crypto::DecodeBatchResponse(frame.data(), frame.size());
  CHECK_OK(decoded.status());
  crypto::SoeDecryptor soe(FuzzKey(), FuzzLayout(),
                           FuzzStore().plaintext_size(),
                           FuzzStore().chunk_count(), 0);
  std::vector<uint8_t> out(FuzzStore().plaintext_size());
  CHECK_OK(soe.DecryptVerifiedBatch(FuzzRequest(), decoded.value(),
                                    out.data(), out.size()));
  const std::vector<uint8_t> plain = FuzzPlaintext();
  for (const crypto::BatchRequest::Run& run : FuzzRequest().runs) {
    CHECK(std::memcmp(out.data() + run.begin, plain.data() + run.begin,
                      run.end - run.begin) == 0);
  }
}

// The request side round-trips losslessly (hints included) — the codec
// the service routes every in-process batch through.
TEST(RequestRoundTrip) {
  crypto::BatchRequest request = FuzzRequest();
  request.bare_chunks = {1, 3};
  request.hints.push_back({2, 0x5aULL, true});
  std::vector<uint8_t> frame;
  crypto::EncodeBatchRequest(request, &frame);
  auto decoded = crypto::DecodeBatchRequest(frame.data(), frame.size());
  CHECK_OK(decoded.status());
  CHECK_EQ(decoded.value().runs.size(), request.runs.size());
  for (size_t i = 0; i < request.runs.size(); ++i) {
    CHECK_EQ(decoded.value().runs[i].begin, request.runs[i].begin);
    CHECK_EQ(decoded.value().runs[i].end, request.runs[i].end);
  }
  CHECK(decoded.value().bare_chunks == request.bare_chunks);
  CHECK_EQ(decoded.value().hints.size(), request.hints.size());
  CHECK_EQ(decoded.value().hints[0].chunk, request.hints[0].chunk);
  CHECK_EQ(decoded.value().hints[0].known_nodes,
           request.hints[0].known_nodes);
  CHECK(decoded.value().hints[0].root_known);
}

// Single-bit flips at 40 positions spread across the whole response frame:
// every byte of the frame is load-bearing (magic, counts, offsets,
// ciphertext, proof hashes, encrypted digests), so every flip must be
// rejected by the decoder or by the digest chain.
TEST(ResponseBitFlips) {
  const std::vector<uint8_t> frame = FuzzResponseFrame();
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> mutated = frame;
    const size_t pos = static_cast<size_t>(i) * (frame.size() - 1) / 39;
    mutated[pos] ^= static_cast<uint8_t>(1u << (i % 8));
    ExpectRejected(mutated, "bit flip");
  }
}

// Truncations: every proper prefix is an incomplete frame; the decoder
// must detect the missing bytes before reading them (ASan watches), and
// appended trailing bytes violate exact consumption.
TEST(ResponseTruncations) {
  const std::vector<uint8_t> frame = FuzzResponseFrame();
  const size_t cuts[] = {0,
                         1,
                         2,
                         3,
                         4,
                         5,
                         8,
                         16,
                         frame.size() / 4,
                         frame.size() / 2,
                         frame.size() - 9,
                         frame.size() - 1};
  for (size_t cut : cuts) {
    std::vector<uint8_t> mutated(frame.begin(),
                                 frame.begin() + static_cast<long>(cut));
    ExpectRejected(mutated, "truncation");
  }
  std::vector<uint8_t> extended = frame;
  extended.push_back(0);
  ExpectRejected(extended, "trailing byte");
}

// Length-field lies: counts and lengths claiming more (or fewer) bytes
// than the frame holds. The decoder validates every count against the
// bytes present before sizing any allocation from it — a 0xFFFFFFFF
// segment count must die at the bounds check, not in operator new.
TEST(ResponseLengthLies) {
  const std::vector<uint8_t> frame = FuzzResponseFrame();
  // Offsets fixed by the format: magic(4) seg_count(4) then the first
  // segment's (u64 begin)(u64 len).
  const size_t kSegCountOff = 4, kFirstBeginOff = 8, kFirstLenOff = 16;

  std::vector<uint8_t> m = frame;
  PatchU32(&m, 0, 0xdeadbeef);  // wrong magic
  ExpectRejected(m, "bad magic");

  m = frame;
  PatchU32(&m, kSegCountOff, 0xffffffffu);  // count lie: over-allocation bait
  ExpectRejected(m, "segment count lie");

  m = frame;
  PatchU32(&m, kSegCountOff, 4);  // one more segment than encoded
  ExpectRejected(m, "segment count +1");

  m = frame;
  PatchU32(&m, kSegCountOff, 2);  // one fewer: shifts all later parsing
  ExpectRejected(m, "segment count -1");

  m = frame;
  PatchU64(&m, kFirstLenOff, ~0ULL);  // segment length beyond the frame
  ExpectRejected(m, "segment length lie");

  m = frame;
  PatchU64(&m, kFirstLenOff, 256 + 8);  // steal bytes from the next field
  ExpectRejected(m, "segment length +8");

  m = frame;
  PatchU64(&m, kFirstBeginOff, 1ULL << 62);  // parses; offset is absurd
  ExpectRejected(m, "segment begin lie");
}

// Structurally valid frames carrying semantically tampered content: each
// mutation re-encodes cleanly, so the decoder passes it and the digest
// chain must be what refuses. This is the layer a wire attacker who knows
// the format perfectly would aim at.
TEST(ResponseSemanticTampering) {
  auto baseline = FuzzStore().ReadBatch(FuzzRequest());
  CHECK(baseline.ok());

  struct Mutation {
    const char* name;
    void (*apply)(crypto::BatchResponse*);
  };
  const Mutation mutations[] = {
      {"segments swapped",
       [](crypto::BatchResponse* r) {
         std::swap(r->segments[0], r->segments[1]);
       }},
      {"segment begin shifted",
       [](crypto::BatchResponse* r) { r->segments[0].begin += 64; }},
      {"segment truncated",
       [](crypto::BatchResponse* r) {
         // csxa-lint: allow(taint-release) fuzz tampers pre-verification bytes
         auto& ct = r->segments[0].ciphertext.ReleaseUnverified();
         ct.resize(ct.size() - 8);
       }},
      {"segment padded",
       [](crypto::BatchResponse* r) {
         // csxa-lint: allow(taint-release) fuzz tampers pre-verification bytes
         auto& ct = r->segments[0].ciphertext.ReleaseUnverified();
         ct.resize(ct.size() + 8);
       }},
      {"segment ciphertext block swapped",
       [](crypto::BatchResponse* r) {
         // csxa-lint: allow(taint-release) fuzz tampers pre-verification bytes
         auto& ct = r->segments[0].ciphertext.ReleaseUnverified();
         for (int i = 0; i < 8; ++i) std::swap(ct[i], ct[8 + i]);
       }},
      {"material dropped",
       [](crypto::BatchResponse* r) { r->chunks.erase(r->chunks.begin()); }},
      {"material duplicated",
       [](crypto::BatchResponse* r) { r->chunks.push_back(r->chunks[0]); }},
      {"material for wrong chunk",
       [](crypto::BatchResponse* r) { r->chunks[0].chunk_index = 2; }},
      {"fragment range narrowed",
       [](crypto::BatchResponse* r) { r->chunks[0].last_fragment -= 1; }},
      {"fragment range shifted",
       [](crypto::BatchResponse* r) { r->chunks[0].first_fragment += 1; }},
      {"fragment range inverted",
       [](crypto::BatchResponse* r) {
         r->chunks[0].last_fragment = r->chunks[0].first_fragment - 1;
       }},
      {"proof hash flipped",
       [](crypto::BatchResponse* r) { r->chunks[0].proof[0].hash[0] ^= 1; }},
      {"proof level bumped",
       [](crypto::BatchResponse* r) { r->chunks[0].proof[0].level += 1; }},
      {"proof index bumped",
       [](crypto::BatchResponse* r) { r->chunks[0].proof[0].index += 1; }},
      {"proof node dropped",
       [](crypto::BatchResponse* r) {
         r->chunks[0].proof.erase(r->chunks[0].proof.begin());
       }},
      {"proof node forged",
       [](crypto::BatchResponse* r) {
         r->chunks[0].proof.push_back({0, 7, crypto::Sha1Digest{}});
       }},
      {"proof position duplicated with forged hash",
       [](crypto::BatchResponse* r) {
         // Rides a second hash for a legitimate sibling position alongside
         // the honest one — the cache-poisoning shape: the first copy
         // satisfies the root, the second would be recorded unverified.
         crypto::ProofNode forged = r->chunks[0].proof[0];
         forged.hash[0] ^= 0xff;
         r->chunks[0].proof.push_back(forged);
       }},
      {"digest flipped",
       [](crypto::BatchResponse* r) {
         r->chunks[0].encrypted_digest[0] ^= 0x80;
       }},
      {"digest truncated",
       [](crypto::BatchResponse* r) {
         r->chunks[0].encrypted_digest.resize(23);
       }},
      {"digest padded",
       [](crypto::BatchResponse* r) {
         r->chunks[0].encrypted_digest.resize(25, 0);
       }},
      {"digests transposed",
       [](crypto::BatchResponse* r) {
         std::swap(r->chunks[0].encrypted_digest,
                   r->chunks[1].encrypted_digest);
       }},
      // Zero-length spans: every variable-length field emptied outright.
      // Beyond the rejection these pin the UBSan contract — an empty
      // vector's .data() is null, and a re-encode/decode/verify cycle over
      // it must never hand that null to memcpy (the PR 7 UBSan class; the
      // sanitizer CI job runs this file).
      {"segment ciphertext emptied",
       [](crypto::BatchResponse* r) {
         // csxa-lint: allow(taint-release) fuzz tampers pre-verification bytes
         r->segments[0].ciphertext.ReleaseUnverified().clear();
       }},
      {"segment list emptied",
       [](crypto::BatchResponse* r) { r->segments.clear(); }},
      {"digest emptied",
       [](crypto::BatchResponse* r) {
         r->chunks[0].encrypted_digest.clear();
       }},
      {"proof list emptied",
       [](crypto::BatchResponse* r) { r->chunks[0].proof.clear(); }},
      {"material list emptied",
       [](crypto::BatchResponse* r) { r->chunks.clear(); }},
  };
  CHECK(baseline.value().chunks.size() >= 2);
  CHECK(!baseline.value().chunks[0].proof.empty());
  for (const Mutation& mutation : mutations) {
    crypto::BatchResponse tampered = baseline.value();
    mutation.apply(&tampered);
    std::vector<uint8_t> frame;
    crypto::EncodeBatchResponse(tampered, &frame);
    ExpectRejected(frame, mutation.name);
  }
}

// Replay of a stale document state: an honest frame for version 0 must be
// refused by an SOE expecting version 1 — the digest seals the version.
TEST(StaleVersionRejected) {
  const std::vector<uint8_t> frame = FuzzResponseFrame();
  const Outcome outcome = RunFrame(frame, /*expected_version=*/1);
  CHECK(outcome == Outcome::kVerifyRejected);
  if (outcome == Outcome::kVerifyRejected) ++mutations_rejected;
}

// The request decoder faces the same attacker (a compromised SOE-side
// frame, or a desynchronized stream): mutations must never crash, and
// every rejection must be IntegrityError. A flipped bit that still parses
// is acceptable — it encodes a *different valid request* — so acceptance
// is not asserted against here, only failure hygiene.
TEST(RequestFrameFuzz) {
  crypto::BatchRequest request = FuzzRequest();
  request.bare_chunks = {1};
  request.hints.push_back({0, 0x3, false});
  std::vector<uint8_t> frame;
  crypto::EncodeBatchRequest(request, &frame);

  auto decode_is_clean = [](const std::vector<uint8_t>& f) {
    auto decoded =
        crypto::DecodeBatchRequest(f.empty() ? nullptr : f.data(), f.size());
    return decoded.ok() ||
           decoded.status().code() == StatusCode::kIntegrityError;
  };

  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> mutated = frame;
    const size_t pos = static_cast<size_t>(i) * (frame.size() - 1) / 15;
    mutated[pos] ^= static_cast<uint8_t>(1u << (i % 8));
    CHECK(decode_is_clean(mutated));
  }
  for (size_t cut : {size_t{0}, size_t{3}, size_t{4}, size_t{11},
                     frame.size() / 2, frame.size() - 1}) {
    std::vector<uint8_t> mutated(frame.begin(),
                                 frame.begin() + static_cast<long>(cut));
    CHECK(!crypto::DecodeBatchRequest(mutated.empty() ? nullptr
                                                      : mutated.data(),
                                      mutated.size())
               .ok());
    CHECK(decode_is_clean(mutated));
  }
  // Count lie on the run table.
  std::vector<uint8_t> lie = frame;
  PatchU32(&lie, 4, 0xffffffffu);
  CHECK(!crypto::DecodeBatchRequest(lie.data(), lie.size()).ok());
  CHECK(decode_is_clean(lie));
  // The root_known flag is the frame's last byte; anything but 0/1 is a
  // malformed frame, not a bool to be reinterpreted.
  std::vector<uint8_t> flag = frame;
  flag.back() = 2;
  CHECK(!crypto::DecodeBatchRequest(flag.data(), flag.size()).ok());
  CHECK(decode_is_clean(flag));
}

// The corpus-size witness the issue gates on: at least 50 distinct
// response-frame mutations ran and were cleanly rejected above.
TEST(FuzzCorpusSize) {
  CHECK(mutations_rejected >= 50);
}
