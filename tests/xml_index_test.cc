// XML and Skip-index layer tests: SAX parsing, serialization round-trips,
// and encode/navigate round-trips plus subtree skipping across the
// structure-encoding variants of Figure 8.

#include <memory>
#include <string>

#include "index/decoder.h"
#include "index/encoder.h"
#include "index/variants.h"
#include "testing.h"
#include "xml/node.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"
#include "xml/stats.h"

namespace {

using namespace csxa;  // NOLINT

const char kDoc[] =
    "<Folder><Admin><Name>Jane</Name><SSN>123</SSN></Admin>"
    "<MedActs><Consult><Date>2004</Date><Diagnostic>flu</Diagnostic>"
    "</Consult><Analysis><Type>G3</Type><Cholesterol>260</Cholesterol>"
    "</Analysis></MedActs></Folder>";

std::string EventDump(const std::string& xml) {
  xml::SerializingHandler handler;
  CHECK_OK(xml::SaxParser::Parse(xml, &handler));
  return handler.output();
}

TEST(SaxParseSerializeRoundTrip) {
  CHECK_EQ(EventDump(kDoc), kDoc);
}

TEST(SaxEntitiesAndMarkup) {
  CHECK_EQ(EventDump("<?xml version=\"1.0\"?><a><!-- c -->x &lt;&amp;&gt; y"
                     "<b attr=\"v\">z</b></a>"),
           "<a>x &lt;&amp;&gt; y<b>z</b></a>");
  xml::SerializingHandler sink;
  CHECK(!xml::SaxParser::Parse("<a><b></a></b>", &sink).ok());
  CHECK(!xml::SaxParser::Parse("<a>", &sink).ok());
}

TEST(DomStatsSanity) {
  auto dom = xml::SaxParser::ParseToDom(kDoc);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  auto stats = xml::ComputeStats(*dom.value());
  CHECK_EQ(stats.elements, size_t{11});
  CHECK_EQ(stats.text_nodes, size_t{6});
  CHECK_EQ(stats.max_depth, 4);
  CHECK_EQ(stats.distinct_tags, size_t{11});
}

std::string NavigateAll(const index::EncodedDocument& doc) {
  auto nav = index::DocumentNavigator::Open(&doc);
  CHECK_OK(nav.status());
  if (!nav.ok()) return "";
  xml::SerializingHandler handler;
  while (true) {
    auto item = nav.value()->Next();
    CHECK_OK(item.status());
    if (!item.ok()) return "";
    using K = index::DocumentNavigator::ItemKind;
    if (item.value().kind == K::kEnd) break;
    switch (item.value().kind) {
      case K::kOpen:
        handler.OnOpen(item.value().tag, item.value().depth);
        break;
      case K::kValue:
        handler.OnValue(item.value().value, item.value().depth);
        break;
      case K::kClose:
        handler.OnClose(item.value().tag, item.value().depth);
        break;
      case K::kEnd:
        break;
    }
  }
  return handler.output();
}

TEST(EncodeNavigateRoundTrip) {
  auto dom = xml::SaxParser::ParseToDom(kDoc);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  for (auto variant : {index::Variant::kTc, index::Variant::kTcs,
                       index::Variant::kTcsb, index::Variant::kTcsbr}) {
    auto doc = index::Encode(*dom.value(), variant);
    CHECK_OK(doc.status());
    if (!doc.ok()) continue;
    CHECK_EQ(NavigateAll(doc.value()), kDoc);
  }
}

TEST(SkipSubtree) {
  auto dom = xml::SaxParser::ParseToDom(kDoc);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  for (auto variant : {index::Variant::kTcs, index::Variant::kTcsb,
                       index::Variant::kTcsbr}) {
    auto doc = index::Encode(*dom.value(), variant);
    CHECK_OK(doc.status());
    if (!doc.ok()) continue;
    auto nav = index::DocumentNavigator::Open(&doc.value());
    CHECK_OK(nav.status());
    if (!nav.ok()) continue;
    CHECK(nav.value()->CanSkip());

    // Open <Folder>, open <Admin>, then skip Admin's content: the next
    // events must be </Admin> and <MedActs>.
    auto open_folder = nav.value()->Next();
    CHECK_OK(open_folder.status());
    auto open_admin = nav.value()->Next();
    CHECK_OK(open_admin.status());
    CHECK_EQ(open_admin.value().tag, "Admin");
    CHECK_OK(nav.value()->SkipSubtree());
    auto close_admin = nav.value()->Next();
    CHECK_OK(close_admin.status());
    CHECK(close_admin.value().kind ==
          index::DocumentNavigator::ItemKind::kClose);
    CHECK_EQ(close_admin.value().tag, "Admin");
    auto open_med = nav.value()->Next();
    CHECK_OK(open_med.status());
    CHECK_EQ(open_med.value().tag, "MedActs");
  }
}

TEST(VariantSizesOrdered) {
  auto dom = xml::SaxParser::ParseToDom(kDoc);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  uint64_t tcsbr = 0, tcsb = 0, nc = 0;
  for (auto [variant, out] :
       std::initializer_list<std::pair<index::Variant, uint64_t*>>{
           {index::Variant::kNc, &nc},
           {index::Variant::kTcsb, &tcsb},
           {index::Variant::kTcsbr, &tcsbr}}) {
    auto rep = index::MeasureVariant(*dom.value(), variant);
    CHECK_OK(rep.status());
    if (rep.ok()) *out = rep.value().total_bytes;
  }
  // The recursive encoding must not be larger than the flat bitmap one,
  // and both compress the original document.
  CHECK(tcsbr <= tcsb);
  CHECK(tcsb < nc);
}

TEST(NavigatorCheckpointRestore) {
  auto dom = xml::SaxParser::ParseToDom(kDoc);
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  auto doc = index::Encode(*dom.value(), index::Variant::kTcsbr);
  CHECK_OK(doc.status());
  if (!doc.ok()) return;
  auto nav = index::DocumentNavigator::Open(&doc.value());
  CHECK_OK(nav.status());
  if (!nav.ok()) return;

  for (int i = 0; i < 3; ++i) CHECK_OK(nav.value()->Next().status());
  auto checkpoint = nav.value()->Save();
  auto a = nav.value()->Next();
  CHECK_OK(a.status());
  CHECK_OK(nav.value()->SeekTo(checkpoint));
  auto b = nav.value()->Next();
  CHECK_OK(b.status());
  if (a.ok() && b.ok()) {
    CHECK_EQ(a.value().tag + a.value().value, b.value().tag + b.value().value);
  }
}

}  // namespace
