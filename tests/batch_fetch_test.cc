// Batched verified-fetch tests: the range-coalescing planner must leave
// every authorized view byte-identical whatever its gap threshold, batch
// horizon or readahead dynamics; coalescing must only ever reduce round
// trips; and the verified-digest cache must make re-reads cheap without
// weakening integrity — a tampered terminal must be caught even on a
// cache-hit ("bare") re-read that ships no Merkle material at all.

#include <string>
#include <vector>

#include "access/access_rule.h"
#include "crypto/secure_store.h"
#include "index/fetch_planner.h"
#include "index/secure_fetcher.h"
#include "pipeline/secure_pipeline.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xa7 ^ (i * 31));
  }
  return key;
}

std::string Payload(const char* stem, int i, size_t n) {
  std::string s = std::string(stem) + "-" + std::to_string(i) + "-";
  while (s.size() < n) s += "loremipsum";
  s.resize(n);
  return s;
}

/// Folder set with bulky denied subtrees, rare grants, and a trailing
/// clearance predicate — exercises skips, deferrals and re-reads at once.
std::string TestDocument(int folders) {
  std::string xml = "<Hospital>";
  for (int f = 0; f < folders; ++f) {
    xml += "<Folder><Admin>";
    xml += "<Name>Patient-" + std::to_string(f) + "</Name>";
    xml += "<Insurance>" + Payload("ins", f, 160) + "</Insurance>";
    xml += "</Admin><MedActs>";
    for (int c = 0; c < 3; ++c) {
      xml += "<Consult><Diagnostic>" + Payload("diag", f * 10 + c, 56) +
             "</Diagnostic><Prescription>rx-" + std::to_string(f * 10 + c) +
             "</Prescription></Consult>";
    }
    xml += "</MedActs>";
    xml += std::string("<Clearance>") + (f % 2 ? "closed" : "open") +
           "</Clearance></Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

const char* const kRuleSets[] = {
    "+ /Hospital/Folder/MedActs\n",
    "+ //Prescription\n",
    "+ /Hospital/Folder[Clearance = open]/MedActs\n",
};

std::string DirectView(const std::string& xml,
                       const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

// ---------------------------------------------------------------------------
// Coalescing equivalence matrix: gap thresholds x variants x rulesets.
// ---------------------------------------------------------------------------

TEST(CoalescingEquivalenceMatrix) {
  const std::string xml = TestDocument(/*folders=*/4);
  // Ordered gap thresholds, small to bridge-everything; requests must be
  // monotonically non-increasing along this axis (more bridging can only
  // merge round trips, never create new ones) while every view stays
  // byte-identical to the oracle-free reference.
  const uint64_t kThresholds[] = {0, 32, 256, 4096};
  for (const char* rules_text : kRuleSets) {
    auto parsed = access::ParseRuleList(rules_text);
    CHECK_OK(parsed.status());
    if (!parsed.ok()) continue;
    std::vector<access::AccessRule> rules = parsed.take();
    const std::string expected = DirectView(xml, rules);
    for (auto variant : {index::Variant::kTc, index::Variant::kTcs,
                         index::Variant::kTcsb, index::Variant::kTcsbr}) {
      pipeline::SessionConfig cfg;
      cfg.variant = variant;
      cfg.layout.chunk_size = 256;
      cfg.layout.fragment_size = 32;
      cfg.key = TestKey();
      auto session = pipeline::SecureSession::Build(xml, cfg);
      CHECK_OK(session.status());
      if (!session.ok()) continue;

      uint64_t prev_requests = UINT64_MAX;
      for (uint64_t gap : kThresholds) {
        pipeline::ServeOptions opts;
        opts.planner.gap_threshold_bytes = gap;
        auto report = session.value().Serve(rules, opts);
        CHECK_OK(report.status());
        if (!report.ok()) continue;
        CHECK_EQ(report.value().view, expected);
        CHECK(report.value().requests <= prev_requests);
        prev_requests = report.value().requests;
        // Sanity: the batch accounting stays coherent.
        CHECK(report.value().segments >= report.value().requests);
        CHECK(report.value().bytes_fetched <= session.value().encoded_bytes());
      }
    }
  }
}

TEST(BatchHorizonDoesNotChangeViews) {
  // Degenerate horizons (one fragment per batch, everything in one batch)
  // only change round-trip counts, never bytes of the view.
  const std::string xml = TestDocument(/*folders=*/3);
  auto rules = access::ParseRuleList("+ //Prescription\n").take();
  const std::string expected = DirectView(xml, rules);
  pipeline::SessionConfig cfg;
  cfg.layout.chunk_size = 128;
  cfg.layout.fragment_size = 16;
  cfg.key = TestKey();
  auto session = pipeline::SecureSession::Build(xml, cfg);
  CHECK_OK(session.status());
  if (!session.ok()) return;
  uint64_t tiny_requests = 0, huge_requests = 0;
  for (uint64_t horizon : {uint64_t{16}, uint64_t{1} << 20}) {
    pipeline::ServeOptions opts;
    opts.planner.max_batch_bytes = horizon;
    auto report = session.value().Serve(rules, opts);
    CHECK_OK(report.status());
    if (!report.ok()) continue;
    CHECK_EQ(report.value().view, expected);
    (horizon == 16 ? tiny_requests : huge_requests) = report.value().requests;
  }
  CHECK(huge_requests < tiny_requests);
}

// ---------------------------------------------------------------------------
// Verified-digest cache: bare re-reads are cheap but never trusting.
// ---------------------------------------------------------------------------

crypto::ChunkLayout SmallLayout() {
  crypto::ChunkLayout layout;
  layout.chunk_size = 64;
  layout.fragment_size = 8;
  return layout;
}

TEST(BareReReadVerifiesAgainstCache) {
  std::vector<uint8_t> doc(200);
  for (size_t i = 0; i < doc.size(); ++i) doc[i] = static_cast<uint8_t>(i);
  auto layout = SmallLayout();
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::SoeDecryptor soe(TestKey(), layout, doc.size(),
                           store.value().chunk_count());
  std::vector<uint8_t> out(doc.size(), 0);

  // First touch of chunk 0: fragments [0..3] with full material.
  crypto::BatchRequest req1;
  req1.runs.push_back({0, 32});
  auto resp1 = store.value().ReadBatch(req1);
  CHECK_OK(resp1.status());
  CHECK_OK(soe.DecryptVerifiedBatch(req1, resp1.value(), out.data(),
                                    out.size()));
  CHECK(std::equal(doc.begin(), doc.begin() + 32, out.begin()));
  CHECK_EQ(resp1.value().chunks.size(), size_t{1});

  // Re-read of the chunk's other half: the cache holds the sibling
  // hashes, so the read is waived bare — ciphertext only.
  CHECK(soe.CanVerifyBare(0, 4, 7));
  crypto::BatchRequest req2;
  req2.runs.push_back({32, 64});
  req2.bare_chunks.push_back(0);
  auto resp2 = store.value().ReadBatch(req2);
  CHECK_OK(resp2.status());
  CHECK_EQ(resp2.value().chunks.size(), size_t{0});  // No material shipped.
  CHECK_EQ(resp2.value().WireBytes(), uint64_t{32});
  CHECK_OK(soe.DecryptVerifiedBatch(req2, resp2.value(), out.data(),
                                    out.size()));
  CHECK(std::equal(doc.begin() + 32, doc.begin() + 64, out.begin() + 32));
  CHECK(soe.cache_stats().bare_hits > 0);
}

TEST(TamperedBareReReadIsRejected) {
  // The cache must not weaken integrity: a terminal that tampers with
  // bytes served bare (no proof, no digest on the wire) is still caught,
  // because the recomputed leaf hashes no longer combine to the cached,
  // already-authenticated root.
  std::vector<uint8_t> doc(200);
  for (size_t i = 0; i < doc.size(); ++i) doc[i] = static_cast<uint8_t>(i * 3);
  auto layout = SmallLayout();
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::SoeDecryptor soe(TestKey(), layout, doc.size(),
                           store.value().chunk_count());
  std::vector<uint8_t> out(doc.size(), 0);

  crypto::BatchRequest req1;
  req1.runs.push_back({0, 32});
  auto resp1 = store.value().ReadBatch(req1);
  CHECK_OK(resp1.status());
  CHECK_OK(soe.DecryptVerifiedBatch(req1, resp1.value(), out.data(),
                                    out.size()));

  // The terminal tampers with a byte of the not-yet-read half...
  store.value().TamperByte(40, 0x42);
  CHECK(soe.CanVerifyBare(0, 4, 7));
  crypto::BatchRequest req2;
  req2.runs.push_back({32, 64});
  req2.bare_chunks.push_back(0);
  auto resp2 = store.value().ReadBatch(req2);
  CHECK_OK(resp2.status());
  Status st =
      soe.DecryptVerifiedBatch(req2, resp2.value(), out.data(), out.size());
  CHECK(st.code() == StatusCode::kIntegrityError);

  // ... and omitting material without the SOE's waiver also fails.
  crypto::BatchRequest req3;
  req3.runs.push_back({64, 128});
  auto resp3 = store.value().ReadBatch(req3);
  CHECK_OK(resp3.status());
  resp3.value().chunks.clear();  // Terminal withholds integrity evidence.
  st = soe.DecryptVerifiedBatch(req3, resp3.value(), out.data(), out.size());
  CHECK(st.code() == StatusCode::kIntegrityError);
}

TEST(TinyCacheCannotEvictClaimsMidBatch) {
  // A batch whose waivers/hints were built against the cache must stay
  // valid while the same batch records other chunks: with capacity 1, a
  // Record() for chunk 0 must not evict chunk 1's pinned entry that the
  // request's bare claim depends on — an honest response would fail.
  std::vector<uint8_t> doc(200);
  for (size_t i = 0; i < doc.size(); ++i) doc[i] = static_cast<uint8_t>(i);
  auto layout = SmallLayout();
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::SoeDecryptor soe(TestKey(), layout, doc.size(),
                           store.value().chunk_count(),
                           /*expected_version=*/0,
                           /*digest_cache_capacity=*/1);
  std::vector<uint8_t> out(doc.size(), 0);

  // Touch chunk 1 (fragments 0..3) — the single cache slot holds it.
  crypto::BatchRequest req1;
  req1.runs.push_back({64, 96});
  auto resp1 = store.value().ReadBatch(req1);
  CHECK_OK(resp1.status());
  CHECK_OK(soe.DecryptVerifiedBatch(req1, resp1.value(), out.data(),
                                    out.size()));
  CHECK(soe.CanVerifyBare(1, 4, 7));

  // One batch: chunk 0 with material (verified first, would evict) and
  // chunk 1's other half bare.
  crypto::BatchRequest req2;
  req2.runs.push_back({0, 64});
  req2.runs.push_back({96, 128});
  req2.bare_chunks.push_back(1);
  auto resp2 = store.value().ReadBatch(req2);
  CHECK_OK(resp2.status());
  CHECK_OK(soe.DecryptVerifiedBatch(req2, resp2.value(), out.data(),
                                    out.size()));
  CHECK(std::equal(doc.begin(), doc.begin() + 128, out.begin()));
}

TEST(TamperedTrimmedProofIsRejected) {
  // Proof trimming (the terminal omits hashes the SOE declared cached)
  // must not open a substitution hole: tampered fragments under a trimmed
  // proof still fail against the cached nodes.
  std::vector<uint8_t> doc(200);
  for (size_t i = 0; i < doc.size(); ++i) doc[i] = static_cast<uint8_t>(i ^ 7);
  auto layout = SmallLayout();
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::SoeDecryptor soe(TestKey(), layout, doc.size(),
                           store.value().chunk_count());
  std::vector<uint8_t> out(doc.size(), 0);

  crypto::BatchRequest req1;
  req1.runs.push_back({0, 16});  // Fragments [0..1] only.
  auto resp1 = store.value().ReadBatch(req1);
  CHECK_OK(resp1.status());
  CHECK_OK(soe.DecryptVerifiedBatch(req1, resp1.value(), out.data(),
                                    out.size()));

  store.value().TamperByte(20, 0x80);  // Inside fragment 2.
  crypto::BatchRequest req2;
  req2.runs.push_back({16, 32});  // Fragments [2..3], trimmed material.
  req2.hints.push_back(soe.CacheHintFor(0));
  CHECK(req2.hints[0].known_nodes != 0);
  CHECK(req2.hints[0].root_known);
  auto resp2 = store.value().ReadBatch(req2);
  CHECK_OK(resp2.status());
  // The trimmed material carries no digest (root waived)...
  CHECK(!resp2.value().chunks.empty());
  CHECK(resp2.value().chunks[0].encrypted_digest.empty());
  Status st =
      soe.DecryptVerifiedBatch(req2, resp2.value(), out.data(), out.size());
  CHECK(st.code() == StatusCode::kIntegrityError);
}

// ---------------------------------------------------------------------------
// Deferral re-reads through the pipeline: cheap with the cache, still
// tamper-proof, and never double-fetching.
// ---------------------------------------------------------------------------

TEST(DeferralRereadsUseDigestCache) {
  const std::string xml = TestDocument(/*folders=*/6);
  auto rules =
      access::ParseRuleList("+ /Hospital/Folder[Clearance = open]/MedActs\n")
          .take();
  const std::string expected = DirectView(xml, rules);
  pipeline::SessionConfig cfg;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  auto session = pipeline::SecureSession::Build(xml, cfg);
  CHECK_OK(session.status());
  if (!session.ok()) return;

  pipeline::ServeOptions deferred;
  deferred.pending_buffer_budget = 64;  // Force deferrals + re-reads.
  auto with_cache = session.value().Serve(rules, deferred);
  pipeline::ServeOptions no_cache = deferred;
  no_cache.digest_cache_capacity = 0;
  auto without_cache = session.value().Serve(rules, no_cache);
  CHECK_OK(with_cache.status());
  CHECK_OK(without_cache.status());
  if (!with_cache.ok() || !without_cache.ok()) return;
  CHECK_EQ(with_cache.value().view, expected);
  CHECK_EQ(without_cache.value().view, expected);
  CHECK(with_cache.value().drive.rereads > 0);
  // The cache turns re-read verification material-free: bare chunk reads
  // happen, and the wire total strictly beats the cache-less serve.
  CHECK(with_cache.value().bare_chunk_reads > 0);
  CHECK_EQ(without_cache.value().bare_chunk_reads, uint64_t{0});
  CHECK(with_cache.value().wire_bytes < without_cache.value().wire_bytes);
}

TEST(TamperedDeferralRereadIsRejectedThroughPipeline) {
  const std::string xml = TestDocument(/*folders=*/6);
  auto rules =
      access::ParseRuleList("+ /Hospital/Folder[Clearance = open]/MedActs\n")
          .take();
  pipeline::SessionConfig cfg;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  auto session = pipeline::SecureSession::Build(xml, cfg);
  CHECK_OK(session.status());
  if (!session.ok()) return;
  pipeline::ServeOptions deferred;
  deferred.pending_buffer_budget = 64;
  auto clean = session.value().Serve(rules, deferred);
  CHECK_OK(clean.status());
  // Tamper somewhere in the first granted folder's MedActs region (the
  // re-read bytes): every 8th byte of the first third, to be sure at
  // least one lands in a deferred subtree whichever way it was encoded.
  for (uint64_t pos = 64; pos < session.value().encoded_bytes() / 3;
       pos += 8) {
    session.value().mutable_store()->TamperByte(pos, 0x10);
  }
  auto tampered = session.value().Serve(rules, deferred);
  CHECK(!tampered.ok());
  if (!tampered.ok()) {
    CHECK(tampered.status().code() == StatusCode::kIntegrityError);
  }
}

TEST(FullStreamFetchesEveryFragmentExactlyOnce) {
  // The no-double-fetch invariant behind the header-prefetch alignment
  // fix: across header growth, batching, readahead and chunk completion,
  // a full stream materializes every plaintext byte exactly once —
  // bytes_fetched exceeding the document would mean a straddled fragment
  // was paid for twice.
  const std::string xml = TestDocument(/*folders=*/4);
  for (auto layout_pair : {std::pair<uint32_t, uint32_t>{256, 32},
                           {192, 24},   // 256-byte header prefetch unaligned
                           {64, 8}}) {
    pipeline::SessionConfig cfg;
    cfg.variant = index::Variant::kTc;  // Streams everything.
    cfg.layout.chunk_size = layout_pair.first;
    cfg.layout.fragment_size = layout_pair.second;
    cfg.key = TestKey();
    auto session = pipeline::SecureSession::Build(xml, cfg);
    CHECK_OK(session.status());
    if (!session.ok()) continue;
    auto report = session.value().Serve(
        std::vector<access::AccessRule>{}, pipeline::ServeOptions{});
    CHECK_OK(report.status());
    if (!report.ok()) continue;
    CHECK_EQ(report.value().bytes_fetched,
             session.value().store().plaintext_size());
  }
}

// ---------------------------------------------------------------------------
// Planner unit tests.
// ---------------------------------------------------------------------------

TEST(PlannerHonoursHintsAndValidity) {
  index::PlannerOptions opts;
  opts.gap_threshold_bytes = 0;
  opts.max_batch_bytes = 1 << 20;
  index::FetchPlanner planner(/*document_bytes=*/1024, /*fragment_size=*/32,
                              /*chunk_size=*/256, opts);
  std::vector<bool> valid(planner.fragment_count(), false);

  // Unknown fragments beyond the demand are not speculated into a cold
  // batch (first demand: no sequential streak yet beyond its own span).
  auto runs = planner.Plan(0, 32, valid);
  CHECK_EQ(runs.size(), size_t{1});
  CHECK_EQ(runs[0].begin_frag, uint64_t{0});
  CHECK_EQ(runs[0].end_frag, uint64_t{1});

  // Wanted ranges extend the batch; excluded ranges cut it.
  planner.HintWanted(64, 256);
  planner.HintExcluded(128, 192);
  valid[0] = true;
  runs = planner.Plan(32, 64, valid);
  // Demand frag 1, wanted frags 2..7 minus excluded 4..5.
  CHECK_EQ(runs.size(), size_t{2});
  CHECK_EQ(runs[0].begin_frag, uint64_t{1});
  CHECK_EQ(runs[0].end_frag, uint64_t{4});
  CHECK_EQ(runs[1].begin_frag, uint64_t{6});
  CHECK_EQ(runs[1].end_frag, uint64_t{8});

  // A demanded range is fetched even through exclusions, but held
  // fragments are never re-planned.
  for (auto& r : runs) {
    for (uint64_t f = r.begin_frag; f < r.end_frag; ++f) valid[f] = true;
  }
  runs = planner.Plan(128, 192, valid);
  CHECK_EQ(runs.size(), size_t{1});
  CHECK_EQ(runs[0].begin_frag, uint64_t{4});
  CHECK_EQ(runs[0].end_frag, uint64_t{6});
}

TEST(PlannerProofCostsAreCacheAware) {
  // Satellite regression (PR 4 known gap): completion estimates priced
  // proofs pre-trimming. The planner must fill a coverage hole when the
  // *shipped* proof hashes it removes outweigh the hole's ciphertext —
  // and must NOT fill it when the digest cache already holds those hashes
  // (they cost no wire either way). Layout: one 256-byte chunk of eight
  // 32-byte fragments; demand frags 0..2, wanted frags 5..7, hole 3..4.
  index::PlannerOptions opts;
  opts.gap_threshold_bytes = 0;  // Isolate pass 3 from gap bridging.
  opts.max_batch_bytes = 1 << 20;

  {
    // Cold cache (no probe): the two covered ranges ship 4 sibling
    // hashes (80 bytes) — dearer than the 64-byte hole, so it is filled
    // and the chunk goes out as one full-coverage run with empty proof.
    index::FetchPlanner planner(/*document_bytes=*/256, /*fragment_size=*/32,
                                /*chunk_size=*/256, opts);
    std::vector<bool> valid(planner.fragment_count(), false);
    planner.HintWanted(160, 256);
    auto runs = planner.Plan(0, 96, valid);
    CHECK_EQ(runs.size(), size_t{1});
    CHECK_EQ(runs[0].begin_frag, uint64_t{0});
    CHECK_EQ(runs[0].end_frag, uint64_t{8});
    CHECK(planner.stats().proof_holes_filled +
              planner.stats().chunks_completed >=
          1);
  }
  {
    // Warm cache (probe says every hash is already held): the hole saves
    // 64 ciphertext bytes and costs nothing — it must survive. This is
    // the over-fetch the pre-trimming estimate used to cause.
    index::FetchPlanner planner(/*document_bytes=*/256, /*fragment_size=*/32,
                                /*chunk_size=*/256, opts);
    std::vector<bool> valid(planner.fragment_count(), false);
    planner.HintWanted(160, 256);
    auto runs = planner.Plan(0, 96, valid,
                             [](uint64_t, uint32_t, uint32_t) -> uint64_t {
                               return 0;  // Everything cached.
                             });
    CHECK_EQ(runs.size(), size_t{2});
    CHECK_EQ(runs[0].begin_frag, uint64_t{0});
    CHECK_EQ(runs[0].end_frag, uint64_t{3});
    CHECK_EQ(runs[1].begin_frag, uint64_t{5});
    CHECK_EQ(runs[1].end_frag, uint64_t{8});
    CHECK_EQ(planner.stats().proof_holes_filled, uint64_t{0});
    CHECK_EQ(planner.stats().chunks_completed, uint64_t{0});
  }
}

TEST(DecryptorMissingProofNodesTracksCache) {
  // The decryptor-side probe feeding the planner: a cold chunk prices the
  // full sibling set, a verified one prices zero.
  std::vector<uint8_t> doc(200);
  for (size_t i = 0; i < doc.size(); ++i) doc[i] = static_cast<uint8_t>(i);
  auto layout = SmallLayout();  // 64-byte chunks, 8-byte fragments.
  auto store = crypto::SecureDocumentStore::Build(doc, TestKey(), layout);
  CHECK_OK(store.status());
  if (!store.ok()) return;
  crypto::SoeDecryptor soe(TestKey(), layout, doc.size(),
                           store.value().chunk_count());

  // Cold: fragments [1..2] of chunk 0 need their two flanking leaves plus
  // the sibling of the upper half — 3 hashes.
  CHECK_EQ(soe.MissingProofNodes(0, 1, 2), uint64_t{3});

  crypto::BatchRequest req;
  req.runs.push_back({0, 64});  // Whole chunk 0.
  auto resp = store.value().ReadBatch(req);
  CHECK_OK(resp.status());
  std::vector<uint8_t> out(doc.size(), 0);
  CHECK_OK(soe.DecryptVerifiedBatch(req, resp.value(), out.data(),
                                    out.size()));

  // Warm: every node of chunk 0 is now authenticated — nothing to ship.
  CHECK_EQ(soe.MissingProofNodes(0, 1, 2), uint64_t{0});
  CHECK_EQ(soe.MissingProofNodes(0, 4, 7), uint64_t{0});
  // Chunk 1 stays cold.
  CHECK_EQ(soe.MissingProofNodes(1, 1, 2), uint64_t{3});
}

TEST(PlannerBridgesSubThresholdGaps) {
  index::PlannerOptions opts;
  opts.gap_threshold_bytes = 64;  // Two 32-byte fragments.
  opts.max_batch_bytes = 1 << 20;
  index::FetchPlanner planner(/*document_bytes=*/1024, /*fragment_size=*/32,
                              /*chunk_size=*/1024, opts);
  std::vector<bool> valid(planner.fragment_count(), false);
  planner.HintWanted(0, 64);     // frags 0..1
  planner.HintWanted(128, 192);  // frags 4..5 (gap of 2 = threshold)
  planner.HintWanted(320, 352);  // frag 10 (gap of 4 > threshold)
  auto runs = planner.Plan(0, 32, valid);
  CHECK_EQ(runs.size(), size_t{2});
  CHECK_EQ(runs[0].begin_frag, uint64_t{0});
  CHECK_EQ(runs[0].end_frag, uint64_t{6});  // Gap 2..3 bridged.
  CHECK_EQ(runs[1].begin_frag, uint64_t{10});
  CHECK(planner.stats().gap_fragments_bridged >= 2);
}

}  // namespace
