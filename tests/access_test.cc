// Semantics tests for the streaming access-control evaluator: propagation,
// most-specific-takes-precedence, denial-takes-precedence, closed-world
// default, structure preservation, pending predicates, and the
// containment-based rule-set minimization.

#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT
using csxa::access::AccessRule;

/// Runs `rules_text` (for `subject`) over `xml` and returns the serialized
/// authorized view.
std::string View(const std::string& xml, const std::string& rules_text,
                 const std::string& subject = "u") {
  auto rules = access::ParseRuleList(rules_text);
  CHECK_OK(rules.status());
  if (!rules.ok()) return "<error>";
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(
      access::RulesForSubject(rules.value(), subject), &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

TEST(ClosedWorldDefault) {
  // No rule reaches the document: nothing is disclosed.
  CHECK_EQ(View("<r><a>x</a></r>", ""), "");
  CHECK_EQ(View("<r><a>x</a></r>", "+ other: /r"), "");
}

TEST(GrantPropagatesToSubtree) {
  CHECK_EQ(View("<r><a>x</a><b><c>y</c></b></r>", "+ /r"),
           "<r><a>x</a><b><c>y</c></b></r>");
}

TEST(SubjectSelection) {
  CHECK_EQ(View("<r><a>x</a></r>", "+ u: /r"), "<r><a>x</a></r>");
  CHECK_EQ(View("<r><a>x</a></r>", "+ v: /r\n+ u: /r/a"), "<r><a>x</a></r>");
}

TEST(NegativeOverridesAtDeeperTarget) {
  // - /r/secret is more specific (deeper target) than + /r.
  CHECK_EQ(View("<r><pub>1</pub><secret>2</secret></r>",
                "+ /r\n- /r/secret"),
           "<r><pub>1</pub></r>");
}

TEST(PositiveRegrantBelowNegative) {
  // The paper's cascade: grant the folder, deny Admin, re-grant the name.
  CHECK_EQ(View("<r><adm><name>jane</name><ssn>123</ssn></adm>"
                "<data>d</data></r>",
                "+ /r\n- /r/adm\n+ /r/adm/name"),
           "<r><adm><name>jane</name></adm><data>d</data></r>");
}

TEST(DenialTakesPrecedenceAtEqualSpecificity) {
  CHECK_EQ(View("<r><x>v</x></r>", "+ /r/x\n- /r/x"), "");
  // Two paths targeting the same node at the same depth.
  CHECK_EQ(View("<r><x>v</x></r>", "+ /r/x\n- //x"), "");
}

TEST(StructurePreservationHidesAncestorText) {
  // The denied ancestor's tag is visible (it leads to a permitted node)
  // but its own text is not.
  CHECK_EQ(View("<r>top<a>hidden<ok>yes</ok></a></r>", "+ //ok"),
           "<r><a><ok>yes</ok></a></r>");
}

TEST(DeniedBranchFullyPruned) {
  // A denied subtree with no permitted descendant disappears entirely,
  // including its tags.
  CHECK_EQ(View("<r><keep>k</keep><drop><x>1</x></drop></r>",
                "+ /r\n- /r/drop"),
           "<r><keep>k</keep></r>");
}

TEST(WildcardStep) {
  CHECK_EQ(View("<r><a><pub>1</pub></a><b><pub>2</pub><prv>3</prv></b></r>",
                "+ /r/*/pub"),
           "<r><a><pub>1</pub></a><b><pub>2</pub></b></r>");
}

TEST(DescendantAxis) {
  CHECK_EQ(View("<r><name>n1</name><a><b><name>n2</name></b></a></r>",
                "+ //name"),
           "<r><name>n1</name><a><b><name>n2</name></b></a></r>");
  CHECK_EQ(View("<r><a><a><x>deep</x></a></a></r>", "+ /r//a/x"),
           "<r><a><a><x>deep</x></a></a></r>");
}

TEST(ExistencePredicate) {
  const char* rules = "+ /r/pat[flag]";
  CHECK_EQ(View("<r><pat><flag/><d>1</d></pat></r>", rules),
           "<r><pat><flag></flag><d>1</d></pat></r>");
  CHECK_EQ(View("<r><pat><d>1</d></pat></r>", rules), "");
}

TEST(ComparisonPredicateValueBefore) {
  const char* rules = "- //an[type = G3]/cmt\n+ /r";
  CHECK_EQ(View("<r><an><type>G3</type><cmt>x</cmt></an></r>", rules),
           "<r><an><type>G3</type></an></r>");
  CHECK_EQ(View("<r><an><type>G2</type><cmt>x</cmt></an></r>", rules),
           "<r><an><type>G2</type><cmt>x</cmt></an></r>");
}

TEST(ComparisonPredicateValueAfterStaysPending) {
  // The predicate decides only after <cmt> has been seen: the evaluator
  // must buffer and still emit in document order.
  const char* rules = "- //an[type = G3]/cmt\n+ /r";
  CHECK_EQ(View("<r><an><cmt>x</cmt><type>G3</type></an></r>", rules),
           "<r><an><type>G3</type></an></r>");
  CHECK_EQ(View("<r><an><cmt>x</cmt><type>G2</type></an></r>", rules),
           "<r><an><cmt>x</cmt><type>G2</type></an></r>");
}

TEST(NumericComparisonPredicate) {
  const char* rules = "+ //an[chol > 250]";
  CHECK_EQ(View("<r><an><chol>260</chol></an><an><chol>180</chol></an></r>",
                rules),
           "<r><an><chol>260</chol></an></r>");
}

TEST(PredicateWithPathSteps) {
  const char* rules = "+ /r/pat[ins/plan = gold]";
  CHECK_EQ(View("<r><pat><ins><plan>gold</plan></ins><d>1</d></pat></r>",
                rules),
           "<r><pat><ins><plan>gold</plan></ins><d>1</d></pat></r>");
  CHECK_EQ(View("<r><pat><ins><plan>base</plan></ins><d>1</d></pat></r>",
                rules),
           "");
}

TEST(NestedPredicate) {
  const char* rules = "+ /r/pat[ins[gold]]";
  CHECK_EQ(View("<r><pat><ins><gold/></ins><d>1</d></pat></r>", rules),
           "<r><pat><ins><gold></gold></ins><d>1</d></pat></r>");
  CHECK_EQ(View("<r><pat><ins><iron/></ins><d>1</d></pat></r>", rules), "");
}

TEST(DescendantPredicate) {
  const char* rules = "+ /r/pat[//gold]";
  CHECK_EQ(View("<r><pat><a><b><gold/></b></a></pat></r>", rules),
           "<r><pat><a><b><gold></gold></b></a></pat></r>");
  CHECK_EQ(View("<r><pat><a><b><lead/></b></a></pat></r>", rules), "");
}

TEST(PendingNegativeBlocksEarlyEmission) {
  // + /r grants <d> but a *pending* deeper denial on it must hold the
  // event back until the predicate resolves false, then emit.
  const char* rules = "+ /r\n- /r/pat[bad]/d";
  CHECK_EQ(View("<r><pat><d>v</d><x/></pat></r>", rules),
           "<r><pat><d>v</d><x></x></pat></r>");
  CHECK_EQ(View("<r><pat><d>v</d><bad/></pat></r>", rules),
           "<r><pat><bad></bad></pat></r>");
}

TEST(MultipleRulesAndDocumentOrder) {
  const char* rules =
      "+ /lib//book[price < 20]\n"
      "- /lib/shelf[restricted]//book\n";
  const char* doc =
      "<lib>"
      "<shelf><book><price>10</price></book>"
      "<book><price>30</price></book></shelf>"
      "<shelf><restricted/><book><price>5</price></book></shelf>"
      "</lib>";
  CHECK_EQ(View(doc, rules),
           "<lib><shelf><book><price>10</price></book></shelf></lib>");
}

TEST(EvaluatorStats) {
  auto rules = access::ParseRuleList("+ /r\n- /r/b");
  CHECK_OK(rules.status());
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules.take(), &ser);
  CHECK_OK(xml::SaxParser::Parse("<r><a>1</a><b>2</b></r>", &eval));
  CHECK_OK(eval.Finish());
  CHECK_EQ(eval.stats().events_in, uint64_t{8});
  CHECK_EQ(eval.stats().events_emitted, uint64_t{5});   // r, a, "1"
  CHECK_EQ(eval.stats().events_pruned, uint64_t{3});    // b, "2"
  CHECK_EQ(eval.stats().rule_hits, uint64_t{2});
}

TEST(WatcherRegistrationDeduped) {
  // //a//b[c] over <r><a><a><b>…: two descendant tokens cross the same
  // predicated step during b's open event. The spawn memo makes them share
  // one predicate instance, so b carries two hits blocked on the *same*
  // instance — each blocked event must register one watcher with it, not
  // one per hit (and a re-examination must not re-register).
  auto rules = access::ParseRuleList("+ /r\n- //a//b[c]\n");
  CHECK_OK(rules.status());
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules.take(), &ser);
  CHECK_OK(xml::SaxParser::Parse("<r><a><a><b>secret</b></a></a></r>",
                                 &eval));
  CHECK_OK(eval.Finish());
  // One shared instance, despite two tokens crossing the step.
  CHECK_EQ(eval.stats().predicates_spawned, uint64_t{1});
  // Exactly two blocked events (b's open, its text) × one instance.
  CHECK_EQ(eval.stats().watcher_subscriptions, uint64_t{2});
  // [c] never matched: the pending denial dissolves and b is disclosed.
  CHECK_EQ(ser.output(), "<r><a><a><b>secret</b></a></a></r>");
}

TEST(RuleParsing) {
  auto r = access::ParseRule("+ doctor: /Folder//MedActs");
  CHECK_OK(r.status());
  if (r.ok()) {
    CHECK(r.value().sign == access::Sign::kPermit);
    CHECK_EQ(r.value().subject, "doctor");
    CHECK_EQ(r.value().path.ToString(), "/Folder//MedActs");
    CHECK_EQ(r.value().ToString(), "+ doctor: /Folder//MedActs");
  }
  auto bare = access::ParseRule("- /a/b");
  CHECK_OK(bare.status());
  if (bare.ok()) {
    CHECK(bare.value().sign == access::Sign::kDeny);
    CHECK_EQ(bare.value().subject, "");
  }
  CHECK(!access::ParseRule("/a/b").ok());
  CHECK(!access::ParseRule("+ ").ok());
}

std::vector<AccessRule> Rules(const std::string& text) {
  auto r = access::ParseRuleList(text);
  CHECK_OK(r.status());
  return r.ok() ? r.take() : std::vector<AccessRule>{};
}

TEST(RedundantRuleElimination) {
  // Same-sign rule with a contained node set is dropped.
  auto out = access::EliminateRedundantRules(Rules("+ //b\n+ /a/b"));
  CHECK_EQ(out.size(), size_t{1});
  if (!out.empty()) CHECK_EQ(out[0].path.ToString(), "//b");
  out = access::EliminateRedundantRules(Rules("+ /a//b\n+ /a/c/b"));
  CHECK_EQ(out.size(), size_t{1});

  // /a does NOT make /a/b redundant: they target different nodes, and the
  // deeper rule has higher specificity (e.g. against "- /a" it decides).
  out = access::EliminateRedundantRules(Rules("+ /a\n+ /a/b"));
  CHECK_EQ(out.size(), size_t{2});

  // Opposite sign is never dropped.
  out = access::EliminateRedundantRules(Rules("+ //b\n- /a/b"));
  CHECK_EQ(out.size(), size_t{2});

  // Different subject is never dropped.
  out = access::EliminateRedundantRules(Rules("+ u: //b\n+ v: /a/b"));
  CHECK_EQ(out.size(), size_t{2});

  // Equivalent rules keep the first.
  out = access::EliminateRedundantRules(Rules("+ /a//b\n+ /a//b"));
  CHECK_EQ(out.size(), size_t{1});

  // Elimination must not change any decision.
  const char* doc = "<a><b><c>1</c></b><d>2</d></a>";
  const char* rules = "+ /a\n+ /a/b\n- /a/b/c\n+ //c\n- /a/d\n- /a/d";
  auto full = Rules(rules);
  auto reduced = access::EliminateRedundantRules(full);
  CHECK(reduced.size() < full.size());
  xml::SerializingHandler s1, s2;
  access::RuleEvaluator e1(full, &s1);
  access::RuleEvaluator e2(reduced, &s2);
  CHECK_OK(xml::SaxParser::Parse(doc, &e1));
  CHECK_OK(xml::SaxParser::Parse(doc, &e2));
  CHECK_OK(e1.Finish());
  CHECK_OK(e2.Finish());
  CHECK_EQ(s1.output(), s2.output());
}

}  // namespace
