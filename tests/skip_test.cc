// Skip-navigation tests: the evaluator-driven skip path must serialize a
// byte-identical authorized view to full streaming for every encoding
// variant and rule set, the Skip-index variants (TCSB/TCSBR) must
// strictly reduce transferred/decrypted bytes on bitmap-pruning
// scenarios, and the skip oracle itself must distinguish "denied forever"
// from "denied but a deeper target rule might grant".

#include <string>
#include <unordered_set>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "pipeline/secure_pipeline.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x5a ^ (i * 13));
  }
  return key;
}

std::string TestDocument() {
  std::string xml = "<Hospital>";
  for (int f = 0; f < 3; ++f) {
    xml += "<Folder><Admin><Name>Patient-" + std::to_string(f) + "</Name>";
    xml += "<SSN>123-45-" + std::to_string(f) + "</SSN>";
    xml += "<Insurance>provider notes provider notes provider notes "
           "provider notes for folder " + std::to_string(f) + "</Insurance>";
    xml += "<Billing><Item>invoice-a</Item><Item>invoice-b</Item>"
           "<Item>invoice-c</Item></Billing></Admin>";
    xml += "<MedActs>";
    for (int c = 0; c < 2; ++c) {
      xml += "<Consult><Date>2004-01-1" + std::to_string(c) + "</Date>";
      if (f == 1 && c == 0) xml += "<Protocol>double-blind</Protocol>";
      xml += "<Diagnostic>seasonal flu, bed rest advised</Diagnostic>";
      xml += "<Prescription>rx-" + std::to_string(f * 10 + c) +
             "</Prescription></Consult>";
    }
    // Type after Comments in odd folders: pending parts under skipping.
    std::string type = std::string("<Type>") + (f % 2 ? "G3" : "G2") +
                       "</Type>";
    std::string comments = "<Comments>cholesterol is borderline high, "
                           "recheck in six months</Comments>";
    xml += "<Analysis>" +
           (f % 2 ? comments + "<Cholesterol>260</Cholesterol>" + type
                  : type + "<Cholesterol>180</Cholesterol>" + comments) +
           "</Analysis>";
    xml += "</MedActs></Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

const char* const kRuleSets[] = {
    // Closed world, child-axis grant only.
    "+ /Hospital/Folder/MedActs\n",
    // Descendant-axis needle.
    "+ //Prescription\n",
    // The running example: specific re-grant inside a denial + comparison
    // predicate.
    "+ /Hospital/Folder\n"
    "- /Hospital/Folder/Admin\n"
    "+ /Hospital/Folder/Admin/Name\n"
    "- //Analysis[Type = G3]/Comments\n",
    // Wildcard step.
    "+ /Hospital/*/MedActs/Consult/Prescription\n",
    // Deny-all with a rare descendant grant.
    "- /Hospital\n"
    "+ //Protocol\n",
    // Existence predicate over a subtree.
    "+ //Consult[Protocol]\n",
    // No rules at all: everything denied, everything skippable.
    "",
};

std::vector<access::AccessRule> ParseRules(const std::string& text) {
  auto rules = access::ParseRuleList(text);
  CHECK_OK(rules.status());
  return rules.ok() ? rules.take() : std::vector<access::AccessRule>{};
}

/// Oracle-free reference: evaluate straight from the SAX parser.
std::string DirectView(const std::string& xml,
                       const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

Result<pipeline::ServeReport> Serve(const std::string& xml,
                                    index::Variant variant, bool enable_skip,
                                    const std::vector<access::AccessRule>&
                                        rules) {
  pipeline::SessionConfig cfg;
  cfg.variant = variant;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  CSXA_ASSIGN_OR_RETURN(auto session, pipeline::SecureSession::Build(xml, cfg));
  return session.Serve(rules, enable_skip);
}

TEST(SkipViewIdenticalAcrossVariantsAndRuleSets) {
  const std::string xml = TestDocument();
  for (const char* rules_text : kRuleSets) {
    auto rules = ParseRules(rules_text);
    const std::string expected = DirectView(xml, rules);
    for (auto variant : {index::Variant::kTc, index::Variant::kTcs,
                         index::Variant::kTcsb, index::Variant::kTcsbr}) {
      auto skip = Serve(xml, variant, /*enable_skip=*/true, rules);
      auto full = Serve(xml, variant, /*enable_skip=*/false, rules);
      CHECK_OK(skip.status());
      CHECK_OK(full.status());
      if (!skip.ok() || !full.ok()) continue;
      CHECK_EQ(skip.value().view, expected);
      CHECK_EQ(full.value().view, expected);
      // Skipping can only reduce what crosses the wire.
      CHECK(skip.value().wire_bytes <= full.value().wire_bytes);
      CHECK(skip.value().soe.bytes_decrypted <=
            full.value().soe.bytes_decrypted);
    }
  }
}

TEST(BitmapVariantsStrictlyReduceTransferOnPruningScenarios) {
  const std::string xml = TestDocument();
  // //Prescription keeps a live descendant token everywhere, so size
  // fields alone (TCS) prune nothing; only the descendant-tag bitmap
  // proves Admin/Analysis subtrees inert.
  for (const char* rules_text : {"+ //Prescription\n",
                                 "- /Hospital\n+ //Protocol\n"}) {
    auto rules = ParseRules(rules_text);
    auto tcs = Serve(xml, index::Variant::kTcs, true, rules);
    auto tcsb = Serve(xml, index::Variant::kTcsb, true, rules);
    auto tcsbr = Serve(xml, index::Variant::kTcsbr, true, rules);
    CHECK_OK(tcs.status());
    CHECK_OK(tcsb.status());
    CHECK_OK(tcsbr.status());
    if (!tcs.ok() || !tcsb.ok() || !tcsbr.ok()) continue;
    CHECK(tcs.value().drive.skips == 0);
    CHECK(tcsb.value().drive.skips > 0);
    CHECK(tcsbr.value().drive.skips > 0);
    CHECK(tcsb.value().wire_bytes < tcs.value().wire_bytes);
    CHECK(tcsbr.value().wire_bytes < tcs.value().wire_bytes);
    CHECK(tcsb.value().soe.bytes_decrypted < tcs.value().soe.bytes_decrypted);
    CHECK(tcsbr.value().soe.bytes_decrypted <
          tcs.value().soe.bytes_decrypted);
    CHECK(tcsb.value().soe.bytes_hashed < tcs.value().soe.bytes_hashed);
    // Identical views regardless.
    CHECK_EQ(tcsb.value().view, tcs.value().view);
    CHECK_EQ(tcsbr.value().view, tcs.value().view);
  }
}

TEST(SizeFieldsAlonePruneWhenNoTokenSurvives) {
  // Child-axis-only rules: under a denied Admin no positive token is
  // alive, so even TCS (no bitmap) skips its subtrees.
  const std::string xml = TestDocument();
  auto rules = ParseRules("+ /Hospital/Folder/MedActs\n");
  auto tc = Serve(xml, index::Variant::kTc, true, rules);
  auto tcs = Serve(xml, index::Variant::kTcs, true, rules);
  CHECK_OK(tc.status());
  CHECK_OK(tcs.status());
  if (!tc.ok() || !tcs.ok()) return;
  CHECK(tc.value().drive.skips == 0);  // TC has no size fields to jump by.
  CHECK(tcs.value().drive.skips > 0);
  CHECK(tcs.value().wire_bytes < tc.value().wire_bytes);
  CHECK_EQ(tcs.value().view, tc.value().view);
}

// ---------------------------------------------------------------------------
// Skip-oracle unit tests: drive the evaluator by hand and inspect
// SubtreeDecision's answers against hand-built subtree facts.
// ---------------------------------------------------------------------------

access::SubtreeFacts KnownTags(std::unordered_set<std::string> tags) {
  access::SubtreeFacts facts;
  facts.tags_known = true;
  facts.no_elements_below = tags.empty();
  facts.may_contain = [tags = std::move(tags)](const std::string& t) {
    return tags.count(t) != 0;
  };
  return facts;
}

access::SubtreeFacts UnknownTags() { return access::SubtreeFacts{}; }

TEST(OracleDistinguishesDeniedForeverFromDeeperGrant) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(ParseRules("+ /a/b\n"), &ser);
  eval.OnOpen("a", 1);
  // `a` is denied (closed world) but the /a/b token is live: a <b> child
  // would be granted. Without tag knowledge the oracle must descend; a
  // bitmap without `b` proves the denial irrevocable.
  CHECK(eval.SubtreeDecision(UnknownTags(), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"b", "z"}), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"z", "y"}), 1) ==
        access::SkipDecision::kSkip);
  CHECK(eval.SubtreeDecision(KnownTags({}), 1) ==
        access::SkipDecision::kSkip);

  // Inside <a><z>: the b-token did not survive into z's subtree — denied
  // forever even with tags unknown.
  eval.OnOpen("z", 2);
  CHECK(eval.SubtreeDecision(UnknownTags(), 2) ==
        access::SkipDecision::kSkip);
  eval.OnClose("z", 2);
  eval.OnClose("a", 1);
  CHECK_OK(eval.Finish());
  CHECK_EQ(ser.output(), "");
}

TEST(OracleRespectsDescendantAxisAndWildcards) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(ParseRules("+ //x/*/y\n"), &ser);
  eval.OnOpen("r", 1);
  // //x keeps a token alive everywhere: only a bitmap missing x or y can
  // prune (the wildcard step matches anything, so it never prunes).
  CHECK(eval.SubtreeDecision(UnknownTags(), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"x", "q", "y"}), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"x", "q"}), 1) ==
        access::SkipDecision::kSkip);  // no y anywhere below
  CHECK(eval.SubtreeDecision(KnownTags({"q", "y"}), 1) ==
        access::SkipDecision::kSkip);  // no x anywhere below
  eval.OnClose("r", 1);
  CHECK_OK(eval.Finish());
}

TEST(OracleNeverSkipsPermittedOrPendingElements) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(
      ParseRules("+ /a\n- /a/b[Flag]\n"), &ser);
  eval.OnOpen("a", 1);
  // Permitted: content must stream even though no deeper rule exists.
  CHECK(eval.SubtreeDecision(KnownTags({"c"}), 1) ==
        access::SkipDecision::kDescend);
  eval.OnOpen("b", 2);
  // Pending: [Flag] is undecided, so b may yet be denied — and the
  // predicate's evidence lives below. Must descend.
  CHECK(eval.SubtreeDecision(KnownTags({"Flag"}), 2) ==
        access::SkipDecision::kDescend);
  eval.OnClose("b", 2);
  eval.OnClose("a", 1);
  CHECK_OK(eval.Finish());
  CHECK_EQ(ser.output(), "<a><b></b></a>");
}

TEST(OracleDescendsWhilePredicateEvidencePossible) {
  // A denied sibling subtree can still hold the Type element that decides
  // a predicate governing already-buffered events elsewhere.
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(
      ParseRules("+ /r/keep\n- /r[//probe]/keep\n"), &ser);
  eval.OnOpen("r", 1);
  eval.OnOpen("keep", 2);
  eval.OnClose("keep", 2);
  eval.OnOpen("junk", 2);
  // `junk` is denied and no positive rule reaches below it — but the
  // pending [//probe] predicate of /r could match inside: must descend if
  // the bitmap admits a probe, may skip if it provably cannot.
  CHECK(eval.SubtreeDecision(KnownTags({"probe"}), 2) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"noise"}), 2) ==
        access::SkipDecision::kSkip);
  eval.OnOpen("probe", 3);
  eval.OnClose("probe", 3);
  eval.OnClose("junk", 2);
  eval.OnClose("r", 1);
  CHECK_OK(eval.Finish());
  // probe existed, so the denial of keep applied.
  CHECK_EQ(ser.output(), "");
}

TEST(PipelineNeverFetchesSkippedFragments) {
  // One small permitted element before a large denied one: the large
  // subtree's fragments must never be requested from the terminal.
  std::string xml = "<r><head>h</head><big>";
  for (int i = 0; i < 200; ++i) {
    xml += "<item>payload-" + std::to_string(i) + "</item>";
  }
  xml += "</big></r>";
  auto rules = ParseRules("+ /r/head\n");
  auto skip = Serve(xml, index::Variant::kTcsbr, true, rules);
  auto full = Serve(xml, index::Variant::kTcsbr, false, rules);
  CHECK_OK(skip.status());
  CHECK_OK(full.status());
  if (!skip.ok() || !full.ok()) return;
  CHECK_EQ(skip.value().view, "<r><head>h</head></r>");
  CHECK_EQ(skip.value().view, full.value().view);
  CHECK(skip.value().drive.skips > 0);
  // The skipped subtree dominates the document: the skip run must fetch
  // a small fraction of what full streaming fetches.
  CHECK(skip.value().bytes_fetched * 4 < full.value().bytes_fetched);
  CHECK(skip.value().soe.bytes_decrypted * 4 <
        full.value().soe.bytes_decrypted);
}

}  // namespace
