// Skip-navigation tests: the evaluator-driven skip path must serialize a
// byte-identical authorized view to full streaming for every encoding
// variant and rule set, the Skip-index variants (TCSB/TCSBR) must
// strictly reduce transferred/decrypted bytes on bitmap-pruning
// scenarios, and the skip oracle itself must distinguish "denied forever"
// from "denied but a deeper target rule might grant".

#include <string>
#include <unordered_set>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "pipeline/secure_pipeline.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x5a ^ (i * 13));
  }
  return key;
}

/// `bulk` scales the denied administrative subtrees: the strict
/// wire-reduction tests use a bulk where pruned regions span whole chunks
/// (the paper's setting — its skipped subtrees dwarf the chunk size);
/// the default keeps the semantic matrix fast.
std::string TestDocument(int bulk = 1) {
  std::string xml = "<Hospital>";
  for (int f = 0; f < 3; ++f) {
    xml += "<Folder><Admin><Name>Patient-" + std::to_string(f) + "</Name>";
    xml += "<SSN>123-45-" + std::to_string(f) + "</SSN>";
    xml += "<Insurance>";
    for (int b = 0; b < bulk; ++b) {
      xml += "provider notes provider notes provider notes provider notes ";
    }
    xml += "for folder " + std::to_string(f) + "</Insurance>";
    xml += "<Billing>";
    for (int b = 0; b < bulk; ++b) {
      xml += "<Item>invoice-a</Item><Item>invoice-b</Item>"
             "<Item>invoice-c</Item>";
    }
    xml += "</Billing></Admin>";
    xml += "<MedActs>";
    for (int c = 0; c < 2; ++c) {
      xml += "<Consult><Date>2004-01-1" + std::to_string(c) + "</Date>";
      if (f == 1 && c == 0) xml += "<Protocol>double-blind</Protocol>";
      xml += "<Diagnostic>seasonal flu, bed rest advised</Diagnostic>";
      xml += "<Prescription>rx-" + std::to_string(f * 10 + c) +
             "</Prescription></Consult>";
    }
    // Type after Comments in odd folders: pending parts under skipping.
    std::string type = std::string("<Type>") + (f % 2 ? "G3" : "G2") +
                       "</Type>";
    std::string comments = "<Comments>cholesterol is borderline high, "
                           "recheck in six months</Comments>";
    xml += "<Analysis>" +
           (f % 2 ? comments + "<Cholesterol>260</Cholesterol>" + type
                  : type + "<Cholesterol>180</Cholesterol>" + comments) +
           "</Analysis>";
    xml += "</MedActs></Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

const char* const kRuleSets[] = {
    // Closed world, child-axis grant only.
    "+ /Hospital/Folder/MedActs\n",
    // Descendant-axis needle.
    "+ //Prescription\n",
    // The running example: specific re-grant inside a denial + comparison
    // predicate.
    "+ /Hospital/Folder\n"
    "- /Hospital/Folder/Admin\n"
    "+ /Hospital/Folder/Admin/Name\n"
    "- //Analysis[Type = G3]/Comments\n",
    // Wildcard step.
    "+ /Hospital/*/MedActs/Consult/Prescription\n",
    // Deny-all with a rare descendant grant.
    "- /Hospital\n"
    "+ //Protocol\n",
    // Existence predicate over a subtree.
    "+ //Consult[Protocol]\n",
    // No rules at all: everything denied, everything skippable.
    "",
};

std::vector<access::AccessRule> ParseRules(const std::string& text) {
  auto rules = access::ParseRuleList(text);
  CHECK_OK(rules.status());
  return rules.ok() ? rules.take() : std::vector<access::AccessRule>{};
}

/// Oracle-free reference: evaluate straight from the SAX parser.
std::string DirectView(const std::string& xml,
                       const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

Result<pipeline::ServeReport> Serve(const std::string& xml,
                                    index::Variant variant, bool enable_skip,
                                    const std::vector<access::AccessRule>&
                                        rules) {
  pipeline::SessionConfig cfg;
  cfg.variant = variant;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  CSXA_ASSIGN_OR_RETURN(auto session, pipeline::SecureSession::Build(xml, cfg));
  return session.Serve(rules, enable_skip);
}

TEST(SkipViewIdenticalAcrossVariantsAndRuleSets) {
  const std::string xml = TestDocument();
  for (const char* rules_text : kRuleSets) {
    auto rules = ParseRules(rules_text);
    const std::string expected = DirectView(xml, rules);
    for (auto variant : {index::Variant::kTc, index::Variant::kTcs,
                         index::Variant::kTcsb, index::Variant::kTcsbr}) {
      auto skip = Serve(xml, variant, /*enable_skip=*/true, rules);
      auto full = Serve(xml, variant, /*enable_skip=*/false, rules);
      CHECK_OK(skip.status());
      CHECK_OK(full.status());
      if (!skip.ok() || !full.ok()) continue;
      CHECK_EQ(skip.value().view, expected);
      CHECK_EQ(full.value().view, expected);
      // Skipping can only reduce what the SOE decrypts, and what crosses
      // the wire up to the integrity overhead partial chunk coverage can
      // force: a full stream covers chunks whole (empty Merkle proofs),
      // while a skip-pruned read may pay one trimmed sibling set plus one
      // digest per touched chunk — at most 2·log2(m) hashes + 24 bytes, m
      // fragments per chunk. On documents whose pruned regions span
      // chunks the skip run wins outright (asserted strictly below); this
      // matrix also contains sub-chunk prunes where only the bound holds.
      const uint64_t chunks =
          (skip.value().encoded_bytes + 255) / 256;  // layout: 256-byte chunks
      const uint64_t proof_slack = chunks * (2 * 3 * 20 + 24);  // m = 8
      CHECK(skip.value().wire_bytes <=
            full.value().wire_bytes + proof_slack);
      CHECK(skip.value().soe.bytes_decrypted <=
            full.value().soe.bytes_decrypted);
    }
  }
}

TEST(BitmapVariantsStrictlyReduceTransferOnPruningScenarios) {
  const std::string xml = TestDocument(/*bulk=*/4);
  // //Prescription keeps a live descendant token everywhere, so size
  // fields alone (TCS) prune nothing; only the descendant-tag bitmap
  // proves Admin/Analysis subtrees inert.
  for (const char* rules_text : {"+ //Prescription\n",
                                 "- /Hospital\n+ //Protocol\n"}) {
    auto rules = ParseRules(rules_text);
    auto tcs = Serve(xml, index::Variant::kTcs, true, rules);
    auto tcsb = Serve(xml, index::Variant::kTcsb, true, rules);
    auto tcsbr = Serve(xml, index::Variant::kTcsbr, true, rules);
    CHECK_OK(tcs.status());
    CHECK_OK(tcsb.status());
    CHECK_OK(tcsbr.status());
    if (!tcs.ok() || !tcsb.ok() || !tcsbr.ok()) continue;
    CHECK(tcs.value().drive.skips == 0);
    CHECK(tcsb.value().drive.skips > 0);
    CHECK(tcsbr.value().drive.skips > 0);
    CHECK(tcsb.value().wire_bytes < tcs.value().wire_bytes);
    CHECK(tcsbr.value().wire_bytes < tcs.value().wire_bytes);
    CHECK(tcsb.value().soe.bytes_decrypted < tcs.value().soe.bytes_decrypted);
    CHECK(tcsbr.value().soe.bytes_decrypted <
          tcs.value().soe.bytes_decrypted);
    CHECK(tcsb.value().soe.bytes_hashed < tcs.value().soe.bytes_hashed);
    // Identical views regardless.
    CHECK_EQ(tcsb.value().view, tcs.value().view);
    CHECK_EQ(tcsbr.value().view, tcs.value().view);
  }
}

TEST(SizeFieldsAlonePruneWhenNoTokenSurvives) {
  // Child-axis-only rules: under a denied Admin no positive token is
  // alive, so even TCS (no bitmap) skips its subtrees.
  const std::string xml = TestDocument(/*bulk=*/4);
  auto rules = ParseRules("+ /Hospital/Folder/MedActs\n");
  auto tc = Serve(xml, index::Variant::kTc, true, rules);
  auto tcs = Serve(xml, index::Variant::kTcs, true, rules);
  CHECK_OK(tc.status());
  CHECK_OK(tcs.status());
  if (!tc.ok() || !tcs.ok()) return;
  CHECK(tc.value().drive.skips == 0);  // TC has no size fields to jump by.
  CHECK(tcs.value().drive.skips > 0);
  CHECK(tcs.value().wire_bytes < tc.value().wire_bytes);
  CHECK_EQ(tcs.value().view, tc.value().view);
}

// ---------------------------------------------------------------------------
// Skip-oracle unit tests: drive the evaluator by hand and inspect
// SubtreeDecision's answers against hand-built subtree facts.
// ---------------------------------------------------------------------------

access::SubtreeFacts KnownTags(std::unordered_set<std::string> tags) {
  access::SubtreeFacts facts;
  facts.tags_known = true;
  facts.no_elements_below = tags.empty();
  facts.may_contain = [tags = std::move(tags)](const std::string& t) {
    return tags.count(t) != 0;
  };
  return facts;
}

access::SubtreeFacts UnknownTags() { return access::SubtreeFacts{}; }

TEST(OracleDistinguishesDeniedForeverFromDeeperGrant) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(ParseRules("+ /a/b\n"), &ser);
  eval.OnOpen("a", 1);
  // `a` is denied (closed world) but the /a/b token is live: a <b> child
  // would be granted. Without tag knowledge the oracle must descend; a
  // bitmap without `b` proves the denial irrevocable.
  CHECK(eval.SubtreeDecision(UnknownTags(), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"b", "z"}), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"z", "y"}), 1) ==
        access::SkipDecision::kSkip);
  CHECK(eval.SubtreeDecision(KnownTags({}), 1) ==
        access::SkipDecision::kSkip);

  // Inside <a><z>: the b-token did not survive into z's subtree — denied
  // forever even with tags unknown.
  eval.OnOpen("z", 2);
  CHECK(eval.SubtreeDecision(UnknownTags(), 2) ==
        access::SkipDecision::kSkip);
  eval.OnClose("z", 2);
  eval.OnClose("a", 1);
  CHECK_OK(eval.Finish());
  CHECK_EQ(ser.output(), "");
}

TEST(OracleRespectsDescendantAxisAndWildcards) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(ParseRules("+ //x/*/y\n"), &ser);
  eval.OnOpen("r", 1);
  // //x keeps a token alive everywhere: only a bitmap missing x or y can
  // prune (the wildcard step matches anything, so it never prunes).
  CHECK(eval.SubtreeDecision(UnknownTags(), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"x", "q", "y"}), 1) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"x", "q"}), 1) ==
        access::SkipDecision::kSkip);  // no y anywhere below
  CHECK(eval.SubtreeDecision(KnownTags({"q", "y"}), 1) ==
        access::SkipDecision::kSkip);  // no x anywhere below
  eval.OnClose("r", 1);
  CHECK_OK(eval.Finish());
}

TEST(OracleNeverSkipsPermittedOrPendingElements) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(
      ParseRules("+ /a\n- /a/b[Flag]\n"), &ser);
  eval.OnOpen("a", 1);
  // Permitted: content must stream even though no deeper rule exists.
  CHECK(eval.SubtreeDecision(KnownTags({"c"}), 1) ==
        access::SkipDecision::kDescend);
  eval.OnOpen("b", 2);
  // Pending: [Flag] is undecided, so b may yet be denied — and the
  // predicate's evidence lives below. Must descend.
  CHECK(eval.SubtreeDecision(KnownTags({"Flag"}), 2) ==
        access::SkipDecision::kDescend);
  eval.OnClose("b", 2);
  eval.OnClose("a", 1);
  CHECK_OK(eval.Finish());
  CHECK_EQ(ser.output(), "<a><b></b></a>");
}

TEST(OracleDescendsWhilePredicateEvidencePossible) {
  // A denied sibling subtree can still hold the Type element that decides
  // a predicate governing already-buffered events elsewhere.
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(
      ParseRules("+ /r/keep\n- /r[//probe]/keep\n"), &ser);
  eval.OnOpen("r", 1);
  eval.OnOpen("keep", 2);
  eval.OnClose("keep", 2);
  eval.OnOpen("junk", 2);
  // `junk` is denied and no positive rule reaches below it — but the
  // pending [//probe] predicate of /r could match inside: must descend if
  // the bitmap admits a probe, may skip if it provably cannot.
  CHECK(eval.SubtreeDecision(KnownTags({"probe"}), 2) ==
        access::SkipDecision::kDescend);
  CHECK(eval.SubtreeDecision(KnownTags({"noise"}), 2) ==
        access::SkipDecision::kSkip);
  eval.OnOpen("probe", 3);
  eval.OnClose("probe", 3);
  eval.OnClose("junk", 2);
  eval.OnClose("r", 1);
  CHECK_OK(eval.Finish());
  // probe existed, so the denial of keep applied.
  CHECK_EQ(ser.output(), "");
}

// ---------------------------------------------------------------------------
// Deferred pending subtrees (skip-now-reread-later).
// ---------------------------------------------------------------------------

Result<pipeline::ServeReport> ServeOpts(const std::string& xml,
                                        index::Variant variant,
                                        const pipeline::ServeOptions& opts,
                                        const std::vector<access::AccessRule>&
                                            rules) {
  pipeline::SessionConfig cfg;
  cfg.variant = variant;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  CSXA_ASSIGN_OR_RETURN(auto session, pipeline::SecureSession::Build(xml, cfg));
  return session.Serve(rules, opts);
}

/// A document whose largest subtree (MedActs) is guarded by a predicate
/// whose evidence (Clearance) arrives only *after* it in document order —
/// the adversarial pending-part workload. `grant` decides whether the
/// predicate resolves to permit or deny.
std::string GuardedDocument(bool grant, int items = 120) {
  std::string xml = "<Hospital><Folder><MedActs>";
  for (int i = 0; i < items; ++i) {
    xml += "<Consult><Diagnostic>finding-" + std::to_string(i) +
           " lorem ipsum dolor sit amet</Diagnostic></Consult>";
  }
  xml += "</MedActs><Clearance>";
  xml += grant ? "open" : "closed";
  xml += "</Clearance></Folder></Hospital>";
  return xml;
}

const char kGuardRules[] = "+ /Hospital/Folder[Clearance = open]/MedActs\n";

TEST(DeferredViewIdenticalToBufferedAndFullStreaming) {
  // Equivalence matrix: every variant × rule set × pending-budget must
  // serve the byte-identical authorized view; the budget only changes the
  // buffering strategy, never the output.
  for (const std::string& xml :
       {TestDocument(), GuardedDocument(true), GuardedDocument(false)}) {
    for (const char* rules_text : kRuleSets) {
      auto rules = ParseRules(rules_text);
      const std::string expected = DirectView(xml, rules);
      for (auto variant : {index::Variant::kTcs, index::Variant::kTcsb,
                           index::Variant::kTcsbr}) {
        for (uint64_t budget : {uint64_t{0}, uint64_t{64}, UINT64_MAX}) {
          pipeline::ServeOptions opts;
          opts.enable_skip = true;
          opts.pending_buffer_budget = budget;
          auto report = ServeOpts(xml, variant, opts, rules);
          CHECK_OK(report.status());
          if (report.ok()) CHECK_EQ(report.value().view, expected);
        }
      }
    }
  }
  // The guarded rule set across the guarded documents, all variants.
  for (bool grant : {true, false}) {
    const std::string xml = GuardedDocument(grant);
    auto rules = ParseRules(kGuardRules);
    const std::string expected = DirectView(xml, rules);
    for (auto variant : {index::Variant::kTcs, index::Variant::kTcsb,
                         index::Variant::kTcsbr}) {
      pipeline::ServeOptions deferred{/*enable_skip=*/true,
                                      /*pending_buffer_budget=*/128};
      pipeline::ServeOptions buffered{/*enable_skip=*/true, UINT64_MAX};
      auto d = ServeOpts(xml, variant, deferred, rules);
      auto b = ServeOpts(xml, variant, buffered, rules);
      CHECK_OK(d.status());
      CHECK_OK(b.status());
      if (!d.ok() || !b.ok()) continue;
      CHECK_EQ(d.value().view, expected);
      CHECK_EQ(b.value().view, expected);
      CHECK(d.value().drive.deferrals > 0);
      CHECK(b.value().drive.deferrals == 0);
    }
  }
}

TEST(DeferralKeepsPeakBufferedBytesUnderBudget) {
  // The SOE memory bound the architecture exists to honor: with the
  // deferral budget on, the huge pending subtree is never buffered, so
  // peak buffered bytes stay below the budget — while classic buffering
  // blows straight through it.
  const uint64_t kBudget = 512;
  const std::string xml = GuardedDocument(true);
  auto rules = ParseRules(kGuardRules);
  pipeline::ServeOptions deferred{true, kBudget};
  pipeline::ServeOptions buffered{true, UINT64_MAX};
  auto d = ServeOpts(xml, index::Variant::kTcsbr, deferred, rules);
  auto b = ServeOpts(xml, index::Variant::kTcsbr, buffered, rules);
  CHECK_OK(d.status());
  CHECK_OK(b.status());
  if (!d.ok() || !b.ok()) return;
  CHECK(d.value().eval.peak_buffered_bytes < kBudget);
  CHECK(b.value().eval.peak_buffered_bytes > kBudget);
  CHECK_EQ(d.value().view, b.value().view);
  // The granted subtree was re-read: bytes were fetched for it exactly
  // once, after the grant.
  CHECK(d.value().drive.rereads == 1);
  CHECK(d.value().drive.reread_bits > 0);
}

TEST(BudgetIsGlobalAcrossPendingSiblings) {
  // Many pending sibling subtrees, each individually under the budget:
  // only what fits in the *remaining* budget may buffer, the rest must
  // defer — otherwise the siblings accumulate past the bound the budget
  // exists to enforce.
  std::string xml = "<Hospital><Folder>";
  for (int s = 0; s < 8; ++s) {
    xml += "<Consult>";
    for (int i = 0; i < 4; ++i) {
      xml += "<Diagnostic>case-" + std::to_string(s * 10 + i) +
             " lorem ipsum dolor</Diagnostic>";
    }
    xml += "</Consult>";
  }
  xml += "<Clearance>open</Clearance></Folder></Hospital>";
  auto rules = ParseRules("+ /Hospital/Folder[Clearance = open]/Consult\n");
  const std::string expected = DirectView(xml, rules);
  const uint64_t kBudget = 256;  // Each Consult is ~150 encoded bytes.
  pipeline::ServeOptions deferred{true, kBudget};
  auto d = ServeOpts(xml, index::Variant::kTcsbr, deferred, rules);
  CHECK_OK(d.status());
  if (!d.ok()) return;
  CHECK_EQ(d.value().view, expected);
  // At least one sibling buffered (fits the fresh budget) and most
  // deferred once the buffer filled up.
  CHECK(d.value().drive.deferrals >= 6);
  // Peak stays within budget + one subtree's decode-expansion slack.
  CHECK(d.value().eval.peak_buffered_bytes < 2 * kBudget);
}

TEST(DeniedDeferralsCostZeroRereads) {
  const std::string xml = GuardedDocument(false);
  auto rules = ParseRules(kGuardRules);
  pipeline::ServeOptions deferred{true, 128};
  auto d = ServeOpts(xml, index::Variant::kTcsbr, deferred, rules);
  pipeline::ServeOptions full{false, UINT64_MAX};
  auto f = ServeOpts(xml, index::Variant::kTcsbr, full, rules);
  CHECK_OK(d.status());
  CHECK_OK(f.status());
  if (!d.ok() || !f.ok()) return;
  CHECK_EQ(d.value().view, f.value().view);
  CHECK_EQ(d.value().view, "");
  CHECK(d.value().drive.deferrals == 1);
  CHECK(d.value().drive.rereads == 0);
  CHECK(d.value().drive.reread_bits == 0);
  CHECK(d.value().eval.deferrals_denied == 1);
  // The denied subtree dominates the document; deferring it means almost
  // nothing crossed the wire or was decrypted.
  CHECK(d.value().wire_bytes * 4 < f.value().wire_bytes);
  CHECK(d.value().soe.bytes_decrypted * 4 < f.value().soe.bytes_decrypted);
}

TEST(OracleDefersOnlyWhenPendingSafeAndOverBudget) {
  auto facts_with = [](std::unordered_set<std::string> tags,
                       uint64_t subtree_bytes) {
    access::SubtreeFacts facts = KnownTags(std::move(tags));
    facts.subtree_bytes = subtree_bytes;
    return facts;
  };
  access::RuleEvaluator::Options opts;
  opts.pending_buffer_budget = 10;
  {
    xml::SerializingHandler ser;
    access::RuleEvaluator eval(ParseRules("+ /r[Flag]/big\n"), &ser, opts);
    eval.OnOpen("r", 1);
    eval.OnOpen("big", 2);
    // Pending ([Flag] undecided, evidence outside the subtree), no rule can
    // match inside: defer over budget, buffer under it.
    CHECK(eval.SubtreeDecision(facts_with({"item"}, 1000), 2) ==
          access::SkipDecision::kDefer);
    CHECK(eval.SubtreeDecision(facts_with({"item"}, 5), 2) ==
          access::SkipDecision::kDescend);
    // [Flag] is child-axis on r: a Flag *inside* big can never satisfy it,
    // so even a bitmap containing Flag keeps the deferral safe.
    CHECK(eval.SubtreeDecision(facts_with({"Flag"}, 1000), 2) ==
          access::SkipDecision::kDefer);
    // No bitmap (TCS): token liveness alone still proves safety here — the
    // rule fully matched at big and [Flag]'s matcher holds no live token.
    access::SubtreeFacts unknown;
    unknown.subtree_bytes = 1000;
    CHECK(eval.SubtreeDecision(unknown, 2) == access::SkipDecision::kDefer);
    eval.OnClose("big", 2);
    eval.OnClose("r", 1);
    CHECK_OK(eval.Finish());
  }
  {
    // Descendant-axis predicate: [//Flag]'s evidence *can* lie anywhere
    // below r, including inside big — must descend whatever the size,
    // unless the bitmap rules a Flag out.
    xml::SerializingHandler ser;
    access::RuleEvaluator eval(ParseRules("+ /r[//Flag]/big\n"), &ser, opts);
    eval.OnOpen("r", 1);
    eval.OnOpen("big", 2);
    CHECK(eval.SubtreeDecision(facts_with({"Flag", "item"}, 1000), 2) ==
          access::SkipDecision::kDescend);
    CHECK(eval.SubtreeDecision(facts_with({"item"}, 1000), 2) ==
          access::SkipDecision::kDefer);
    access::SubtreeFacts unknown;
    unknown.subtree_bytes = 1000;
    CHECK(eval.SubtreeDecision(unknown, 2) == access::SkipDecision::kDescend);
    eval.OnClose("big", 2);
    eval.OnClose("r", 1);
    CHECK_OK(eval.Finish());
  }
  {
    // A rule of *either sign* that could match inside forbids deferral: a
    // granted deferral is emitted verbatim, so no inside node may be
    // re-decided by a deeper target.
    xml::SerializingHandler ser;
    access::RuleEvaluator eval(
        ParseRules("+ /r[Flag]/big\n- //big/item\n"), &ser, opts);
    eval.OnOpen("r", 1);
    eval.OnOpen("big", 2);
    CHECK(eval.SubtreeDecision(facts_with({"item"}, 1000), 2) ==
          access::SkipDecision::kDescend);
    CHECK(eval.SubtreeDecision(facts_with({"noise"}, 1000), 2) ==
          access::SkipDecision::kDefer);
    eval.OnClose("big", 2);
    eval.OnClose("r", 1);
    CHECK_OK(eval.Finish());
  }
}

TEST(PipelineNeverFetchesSkippedFragments) {
  // One small permitted element before a large denied one: the large
  // subtree's fragments must never be requested from the terminal.
  std::string xml = "<r><head>h</head><big>";
  for (int i = 0; i < 200; ++i) {
    xml += "<item>payload-" + std::to_string(i) + "</item>";
  }
  xml += "</big></r>";
  auto rules = ParseRules("+ /r/head\n");
  auto skip = Serve(xml, index::Variant::kTcsbr, true, rules);
  auto full = Serve(xml, index::Variant::kTcsbr, false, rules);
  CHECK_OK(skip.status());
  CHECK_OK(full.status());
  if (!skip.ok() || !full.ok()) return;
  CHECK_EQ(skip.value().view, "<r><head>h</head></r>");
  CHECK_EQ(skip.value().view, full.value().view);
  CHECK(skip.value().drive.skips > 0);
  // The skipped subtree dominates the document: the skip run must fetch
  // a small fraction of what full streaming fetches.
  CHECK(skip.value().bytes_fetched * 4 < full.value().bytes_fetched);
  CHECK(skip.value().soe.bytes_decrypted * 4 <
        full.value().soe.bytes_decrypted);
}

}  // namespace
