#ifndef CSXA_TESTS_TESTING_H_
#define CSXA_TESTS_TESTING_H_

// Minimal dependency-free test harness: TEST(name) registers a function;
// CHECK* macros record failures without aborting the test; main() runs
// every registered test and exits nonzero if any check failed.

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace csxa::testing {

struct TestCase {
  const char* name;
  std::function<void()> fn;
};

inline std::vector<TestCase>& Registry() {
  static std::vector<TestCase> tests;
  return tests;
}

inline int failures = 0;
inline const char* current_test = "";

struct Registrar {
  Registrar(const char* name, std::function<void()> fn) {
    Registry().push_back({name, std::move(fn)});
  }
};

template <typename T>
std::string Repr(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

inline void Fail(const char* file, int line, const std::string& msg) {
  ++failures;
  std::fprintf(stderr, "  FAIL %s:%d [%s] %s\n", file, line, current_test,
               msg.c_str());
}

}  // namespace csxa::testing

#define TEST(name)                                                       \
  static void test_##name();                                             \
  static ::csxa::testing::Registrar registrar_##name(#name, test_##name); \
  static void test_##name()

#define CHECK(cond)                                                   \
  do {                                                                \
    if (!(cond)) ::csxa::testing::Fail(__FILE__, __LINE__, #cond);    \
  } while (0)

#define CHECK_EQ(a, b)                                                     \
  do {                                                                     \
    auto va_ = (a);                                                        \
    auto vb_ = (b);                                                        \
    if (!(va_ == vb_)) {                                                   \
      ::csxa::testing::Fail(__FILE__, __LINE__,                            \
                            std::string(#a " == " #b "\n    lhs: ") +      \
                                ::csxa::testing::Repr(va_) +               \
                                "\n    rhs: " + ::csxa::testing::Repr(vb_)); \
    }                                                                      \
  } while (0)

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto st_ = (expr);                                                    \
    if (!st_.ok()) {                                                      \
      ::csxa::testing::Fail(__FILE__, __LINE__,                           \
                            std::string(#expr " not OK: ") +              \
                                st_.ToString());                          \
    }                                                                     \
  } while (0)

int main() {
  for (const auto& t : ::csxa::testing::Registry()) {
    ::csxa::testing::current_test = t.name;
    int before = ::csxa::testing::failures;
    t.fn();
    std::printf("[%s] %s\n",
                ::csxa::testing::failures == before ? "PASS" : "FAIL", t.name);
  }
  if (::csxa::testing::failures > 0) {
    std::printf("%d check(s) failed\n", ::csxa::testing::failures);
    return 1;
  }
  std::printf("all tests passed\n");
  return 0;
}

#endif  // CSXA_TESTS_TESTING_H_
