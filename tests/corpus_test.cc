// Property tests of the corpus generator: every family is deterministic,
// reaches its target size, parses, and — the property the whole pipeline
// hangs on — serves the same authorized view through every encoding
// variant and serve mode as a direct SAX pass over the plaintext, for
// every matched rule family. Growing the rule set with absent-tag rules
// (the paper's rule-set-complexity axis) must never change a view.

#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "bench/corpus.h"
#include "common/status.h"
#include "pipeline/secure_pipeline.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

std::string DirectView(const std::string& xml,
                       const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

bench::Corpus SmallCorpus(bench::CorpusFamily family, uint64_t seed = 1) {
  bench::CorpusSpec spec;
  spec.family = family;
  spec.seed = seed;
  spec.target_bytes = 6 << 10;
  return bench::GenerateCorpus(spec);
}

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x3c ^ (i * 41));
  }
  return key;
}

}  // namespace

TEST(FamilyNamesRoundTrip) {
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    auto parsed = bench::ParseFamily(bench::FamilyName(family));
    CHECK_OK(parsed.status());
    CHECK(parsed.value() == family);
  }
  CHECK(!bench::ParseFamily("no_such_family").ok());
  CHECK_EQ(bench::PaperFamilies().size(), size_t{3});
  CHECK_EQ(bench::AllFamilies().size(), size_t{6});
}

TEST(GenerationIsDeterministic) {
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    const bench::Corpus a = SmallCorpus(family);
    const bench::Corpus b = SmallCorpus(family);
    CHECK(a.xml == b.xml);
    CHECK_EQ(a.records, b.records);
    CHECK_EQ(a.max_depth, b.max_depth);
    // A different seed must actually change the content (same shape).
    CHECK(a.xml != SmallCorpus(family, /*seed=*/2).xml);
  }
}

TEST(StreamingMatchesBatchByteForByte) {
  // The sink API is the primary generator and GenerateCorpus its
  // degenerate wrapper — so streamed pieces concatenated must be the
  // batch string exactly, the summary must match the batch metadata, and
  // the emission must actually be piecewise (holding one record, not the
  // document).
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    const bench::CorpusSpec spec{family, /*seed=*/1,
                                 /*target_bytes=*/32768, /*depth=*/0};
    const bench::Corpus batch = bench::GenerateCorpus(spec);
    std::string streamed;
    size_t pieces = 0;
    size_t largest_piece = 0;
    const bench::CorpusSummary summary =
        bench::StreamCorpus(spec, [&](std::string_view piece) {
          streamed.append(piece.data(), piece.size());
          ++pieces;
          largest_piece = std::max(largest_piece, piece.size());
        });
    CHECK(streamed == batch.xml);
    CHECK_EQ(summary.total_bytes, batch.xml.size());
    CHECK_EQ(summary.records, batch.records);
    CHECK_EQ(summary.max_depth, batch.max_depth);
    CHECK(pieces > 2);  // Root tag + records + closing, not one blob.
    CHECK(largest_piece < batch.xml.size() / 4);
  }
}

TEST(TargetSizeReached) {
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    for (uint64_t target : {uint64_t{4} << 10, uint64_t{32} << 10}) {
      bench::CorpusSpec spec;
      spec.family = family;
      spec.target_bytes = target;
      const bench::Corpus corpus = bench::GenerateCorpus(spec);
      CHECK(corpus.xml.size() >= target);
      CHECK(corpus.records >= 1);
      // Overshoot is bounded by one record: a corpus stopped growing as
      // soon as it crossed the target.
      CHECK(corpus.xml.size() < target + target / 2 + 4096);
    }
  }
}

TEST(EveryCorpusParses) {
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    const bench::Corpus corpus = SmallCorpus(family);
    auto dom = xml::SaxParser::ParseToDom(corpus.xml);
    CHECK_OK(dom.status());
    CHECK(corpus.max_depth >= 2);
  }
}

TEST(DeepNestHonorsDepth) {
  for (uint32_t depth : {8u, 24u}) {
    bench::CorpusSpec spec;
    spec.family = bench::CorpusFamily::kDeepNest;
    spec.target_bytes = 4 << 10;
    spec.depth = depth;
    const bench::Corpus corpus = bench::GenerateCorpus(spec);
    // The nesting spine dominates the depth; wrappers add a few levels.
    CHECK(corpus.max_depth >= depth);
    CHECK(corpus.max_depth <= depth + 6);
  }
  // The adversarial default is deeper than any Table 2 shape.
  CHECK(SmallCorpus(bench::CorpusFamily::kDeepNest).max_depth >= 40);
}

// The central property: family × rule family × variant × serve mode all
// produce the byte-identical authorized view of a direct SAX pass.
TEST(AllFamiliesAllVariantsMatchDirectView) {
  const auto variants = {index::Variant::kTc, index::Variant::kTcs,
                         index::Variant::kTcsb, index::Variant::kTcsbr};
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    const bench::Corpus corpus = SmallCorpus(family);
    for (index::Variant variant : variants) {
      pipeline::SessionConfig cfg;
      cfg.variant = variant;
      cfg.key = TestKey();
      cfg.layout.chunk_size = 1024;
      cfg.layout.fragment_size = 64;
      auto session = pipeline::SecureSession::Build(corpus.xml, cfg);
      CHECK_OK(session.status());
      if (!session.ok()) continue;
      for (bench::RuleFamily rf : bench::AllRuleFamilies()) {
        auto rules = access::ParseRuleList(bench::RulesFor(family, rf));
        CHECK_OK(rules.status());
        const std::string reference = DirectView(corpus.xml, rules.value());

        pipeline::ServeOptions full{/*enable_skip=*/false, UINT64_MAX};
        pipeline::ServeOptions skip{/*enable_skip=*/true, UINT64_MAX};
        pipeline::ServeOptions deferred{/*enable_skip=*/true, 2048};
        for (const pipeline::ServeOptions& opts : {full, skip, deferred}) {
          auto report = session.value().Serve(rules.value(), opts);
          CHECK_OK(report.status());
          if (report.ok() && report.value().view != reference) {
            testing::Fail(
                __FILE__, __LINE__,
                std::string(bench::FamilyName(family)) + "/" +
                    bench::RuleFamilyName(rf) + "/" + VariantName(variant) +
                    ": view diverges from the direct SAX pass");
          }
        }
      }
    }
  }
}

// Rule-set-size invariance: absent-tag rules grow the token automata but
// can never change what is served.
TEST(AbsentRulesNeverChangeTheView) {
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    const bench::Corpus corpus = SmallCorpus(family);
    for (bench::RuleFamily rf : bench::AllRuleFamilies()) {
      auto base = access::ParseRuleList(bench::RulesFor(family, rf));
      auto grown = access::ParseRuleList(
          bench::RulesFor(family, rf, /*extra_absent_rules=*/12));
      CHECK_OK(base.status());
      CHECK_OK(grown.status());
      CHECK(grown.value().size() == base.value().size() + 12);
      CHECK(DirectView(corpus.xml, base.value()) ==
            DirectView(corpus.xml, grown.value()));
    }
  }
}

// The matched rule families are not vacuous: on every family, at least
// the closed-world and guarded sets select something, and no rule set
// grants the whole document verbatim.
TEST(RuleFamiliesAreDiscriminating) {
  for (bench::CorpusFamily family : bench::AllFamilies()) {
    const bench::Corpus corpus = SmallCorpus(family);
    for (bench::RuleFamily rf :
         {bench::RuleFamily::kClosedWorld, bench::RuleFamily::kGuarded,
          bench::RuleFamily::kPredicateHeavy}) {
      auto rules = access::ParseRuleList(bench::RulesFor(family, rf));
      CHECK_OK(rules.status());
      const std::string view = DirectView(corpus.xml, rules.value());
      if (view.empty()) {
        testing::Fail(__FILE__, __LINE__,
                      std::string(bench::FamilyName(family)) + "/" +
                          bench::RuleFamilyName(rf) + ": empty view");
      }
      if (view.size() >= corpus.xml.size()) {
        testing::Fail(__FILE__, __LINE__,
                      std::string(bench::FamilyName(family)) + "/" +
                          bench::RuleFamilyName(rf) + ": view prunes nothing");
      }
    }
  }
}
