// Transport robustness matrix: every injectable fault, against both
// cipher backends, against cold and warm shared-digest caches, must end
// in exactly one of two contracted outcomes — a byte-identical authorized
// view after typed retries, or a clean error of a contracted class
// (kUnavailable / kDeadlineExceeded / kIntegrityError). Never a mismatched
// view, never a partial view, never a raw errno class. The fault proxy is
// seeded/programmed, so any failure here replays deterministically.

#include <memory>
#include <string>
#include <vector>

#include "access/access_rule.h"
#include "access/rule_evaluator.h"
#include "net/fault_proxy.h"
#include "net/remote_source.h"
#include "net/terminal_server.h"
#include "server/document_service.h"
#include "testing.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace {

using namespace csxa;  // NOLINT

crypto::TripleDes::Key TestKey() {
  crypto::TripleDes::Key key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x51 ^ (i * 29));
  }
  return key;
}

std::string Payload(const char* stem, int i, size_t n) {
  std::string s = std::string(stem) + "-" + std::to_string(i) + "-";
  while (s.size() < n) s += "transportum";
  s.resize(n);
  return s;
}

std::string TestDocument(int folders) {
  std::string xml = "<Hospital>";
  for (int f = 0; f < folders; ++f) {
    xml += "<Folder><Admin><Insurance>" + Payload("adm", f, 160) +
           "</Insurance></Admin><MedActs>";
    for (int c = 0; c < 3; ++c) {
      xml += "<Consult><Diagnostic>" + Payload("dx", f * 10 + c, 56) +
             "</Diagnostic><Prescription>rx-" + std::to_string(f * 10 + c) +
             "</Prescription></Consult>";
    }
    xml += "</MedActs><Clearance>" + std::string(f % 2 ? "closed" : "open") +
           "</Clearance></Folder>";
  }
  xml += "</Hospital>";
  return xml;
}

std::string DirectView(const std::string& xml,
                       const std::vector<access::AccessRule>& rules) {
  xml::SerializingHandler ser;
  access::RuleEvaluator eval(rules, &ser);
  CHECK_OK(xml::SaxParser::Parse(xml, &eval));
  CHECK_OK(eval.Finish());
  return ser.output();
}

server::DocumentConfig TestConfig(crypto::CipherBackendKind backend) {
  server::DocumentConfig cfg;
  cfg.layout.chunk_size = 256;
  cfg.layout.fragment_size = 32;
  cfg.key = TestKey();
  cfg.backend = backend;
  return cfg;
}

net::RemoteBatchSource::Options RemoteOptions(uint16_t port) {
  net::RemoteBatchSource::Options opts;
  opts.port = port;
  opts.doc_id = "doc";
  opts.deadline_ns = 250'000'000;  // Trips well inside one test run.
  opts.max_attempts = 4;
  opts.backoff_initial_ns = 1'000'000;
  opts.backoff_max_ns = 8'000'000;
  return opts;
}

struct FaultCase {
  net::FaultProxy::Fault fault;
  const char* name;
  uint64_t arg;
  /// true: the serve must succeed byte-identically after typed retries;
  /// false: the serve must fail with a terminal IntegrityError.
  bool survivable;
};

const FaultCase kFaultCases[] = {
    // Survivable weather: the client's deadline or reconnect machinery
    // turns each into retries ending in a byte-identical view.
    {net::FaultProxy::Fault::kDropAfterBytes, "drop_after_bytes", 13, true},
    {net::FaultProxy::Fault::kStall, "stall", 700'000'000, true},
    {net::FaultProxy::Fault::kCloseMidResponse, "close_mid_response", 0, true},
    {net::FaultProxy::Fault::kDuplicateResponse, "duplicate_response", 0,
     true},
    // Tampering: a response that arrives but no longer decodes is
    // indistinguishable from an attack — terminal, never retried.
    {net::FaultProxy::Fault::kTruncateFrame, "truncate_frame", 0, false},
    {net::FaultProxy::Fault::kCorruptByte, "corrupt_byte", 9, false},
};

/// Runs one (fault, backend, temperature) cell. `warm` first drains a
/// clean remote serve through a fault-free path so the shared digest
/// cache holds every chunk before the faulted serve runs.
void RunFaultCell(const FaultCase& fc, crypto::CipherBackendKind backend,
                  bool warm) {
  const std::string xml = TestDocument(/*folders=*/4);
  auto rules = access::ParseRuleList("+ //Prescription\n").take();
  const std::string expected = DirectView(xml, rules);

  server::DocumentService service;
  CHECK_OK(service.Publish("doc", xml, TestConfig(backend)));
  net::TerminalServer server;
  auto link = service.TerminalLink("doc");
  CHECK_OK(link.status());
  if (!link.ok()) return;
  server.RegisterDocument("doc", link.take());
  CHECK_OK(server.Start());

  if (warm) {
    // Warm the shared cache over a clean remote path first.
    auto direct = std::make_shared<net::RemoteBatchSource>(
        RemoteOptions(server.port()));
    CHECK_OK(service.AttachTransport("doc", direct));
    auto primed = service.Serve("doc", rules, pipeline::ServeOptions{});
    CHECK_OK(primed.status());
    if (primed.ok()) CHECK_EQ(primed.value().view, expected);
    CHECK_OK(service.AttachTransport("doc", nullptr));
  }

  net::FaultProxy::Options proxy_opts;
  proxy_opts.upstream_port = server.port();
  // Response 0 is the bind ack; 1 is the first real batch response.
  proxy_opts.program = {{fc.fault, /*response_index=*/1, fc.arg}};
  net::FaultProxy proxy(proxy_opts);
  CHECK_OK(proxy.Start());
  auto remote =
      std::make_shared<net::RemoteBatchSource>(RemoteOptions(proxy.port()));
  CHECK_OK(service.AttachTransport("doc", remote));

  auto report = service.Serve("doc", rules, pipeline::ServeOptions{});
  const std::string cell = std::string(fc.name) + "/" +
                           crypto::CipherBackendKindName(backend) +
                           (warm ? "/warm" : "/cold");
  if (fc.survivable) {
    if (!report.ok()) {
      csxa::testing::Fail(__FILE__, __LINE__,
                          cell + " should survive, got " +
                              report.status().ToString());
    } else {
      CHECK_EQ(report.value().view, expected);
      if (fc.fault != net::FaultProxy::Fault::kDuplicateResponse) {
        // The fault really fired and really cost a typed retry or a
        // reconnect — it did not pass unnoticed.
        CHECK(report.value().retries > 0 || report.value().reconnects > 0);
      }
    }
  } else {
    if (report.ok()) {
      // Tampering must not produce a view — but if it does, it must at
      // the very least be the correct one (a retry that re-verified).
      csxa::testing::Fail(__FILE__, __LINE__,
                          cell + " should fail terminally, got a view");
    } else {
      CHECK_EQ(static_cast<int>(report.status().code()),
               static_cast<int>(StatusCode::kIntegrityError));
    }
  }
  CHECK_EQ(proxy.faults_fired(), uint64_t{1});

  // The faulted serve — success or terminal failure — must leave no
  // poisoned shared state behind: a clean follow-up serve over a fresh
  // fault-free link still produces the exact view.
  CHECK_OK(service.AttachTransport(
      "doc",
      std::make_shared<net::RemoteBatchSource>(RemoteOptions(server.port()))));
  auto after = service.Serve("doc", rules, pipeline::ServeOptions{});
  CHECK_OK(after.status());
  if (after.ok()) CHECK_EQ(after.value().view, expected);

  proxy.Stop();
  server.Stop();
}

TEST(FaultMatrixEveryFaultBackendTemperature) {
  for (const FaultCase& fc : kFaultCases) {
    for (crypto::CipherBackendKind backend :
         {crypto::CipherBackendKind::k3Des, crypto::CipherBackendKind::kAes}) {
      for (bool warm : {false, true}) {
        RunFaultCell(fc, backend, warm);
      }
    }
  }
}

TEST(ConnectRefusedIsTypedAndBounded) {
  // Nothing listens on the port the (stopped) server vacated: every
  // attempt is refused, the ladder runs out, and the serve fails closed
  // with the retryable class — not a crash, not a raw errno surface.
  net::TerminalServer server;
  CHECK_OK(server.Start());
  const uint16_t vacated = server.port();
  server.Stop();

  net::RemoteBatchSource::Options opts = RemoteOptions(vacated);
  opts.max_attempts = 3;
  net::RemoteBatchSource source(opts);
  crypto::BatchRequest request;
  request.runs.push_back({0, 32});
  auto response = source.ReadBatch(request);
  CHECK(!response.ok());
  if (!response.ok()) {
    CHECK_EQ(static_cast<int>(response.status().code()),
             static_cast<int>(StatusCode::kUnavailable));
    // The message is ours, not strerror()'s.
    CHECK(response.status().message().find("errno") == std::string::npos);
  }
  CHECK_EQ(source.transport_stats().retries, uint64_t{2});
}

TEST(UnknownDocumentFailsWithoutRetry) {
  net::TerminalServer server;
  CHECK_OK(server.Start());
  net::RemoteBatchSource::Options opts = RemoteOptions(server.port());
  opts.doc_id = "nonexistent";
  net::RemoteBatchSource source(opts);
  crypto::BatchRequest request;
  request.runs.push_back({0, 32});
  auto response = source.ReadBatch(request);
  CHECK(!response.ok());
  if (!response.ok()) {
    // The server's InvalidArgument relays as itself and is not retried.
    CHECK_EQ(static_cast<int>(response.status().code()),
             static_cast<int>(StatusCode::kInvalidArgument));
  }
  CHECK_EQ(source.transport_stats().retries, uint64_t{0});
  server.Stop();
}

TEST(SeededProgramIsDeterministic) {
  auto a = net::FaultProxy::SeededProgram(/*seed=*/7, /*count=*/16,
                                          /*horizon=*/64);
  auto b = net::FaultProxy::SeededProgram(7, 16, 64);
  CHECK_EQ(a.size(), size_t{16});
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    CHECK(a[i].fault == b[i].fault);
    CHECK_EQ(a[i].response_index, b[i].response_index);
    CHECK_EQ(a[i].arg, b[i].arg);
  }
  auto c = net::FaultProxy::SeededProgram(8, 16, 64);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].fault != c[i].fault || a[i].response_index != c[i].response_index)
      differs = true;
  }
  CHECK(differs);
}

TEST(StaleSessionFailsClosedOverTheWire) {
  // The replay-protection contract survives the process boundary: a
  // session opened before a version bump, reading through TCP, still
  // fails with the same IntegrityError class as in-process.
  const std::string xml = TestDocument(/*folders=*/4);
  auto rules = access::ParseRuleList("+ //Prescription\n").take();
  server::DocumentService service;
  CHECK_OK(
      service.Publish("doc", xml, TestConfig(crypto::CipherBackendKind::k3Des)));
  net::TerminalServer server;
  server.RegisterDocument("doc", service.TerminalLink("doc").take());
  CHECK_OK(server.Start());
  CHECK_OK(service.AttachTransport(
      "doc",
      std::make_shared<net::RemoteBatchSource>(RemoteOptions(server.port()))));

  auto session = service.OpenSession("doc", rules, pipeline::ServeOptions{});
  CHECK_OK(session.status());
  if (!session.ok()) return;
  CHECK_OK(service.Update("doc", TestDocument(/*folders=*/5)));
  auto stale = session.value()->Drain();
  CHECK(!stale.ok());
  if (!stale.ok()) {
    CHECK_EQ(static_cast<int>(stale.status().code()),
             static_cast<int>(StatusCode::kIntegrityError));
  }
  server.Stop();
}

}  // namespace
