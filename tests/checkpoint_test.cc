// Checkpoint round-trip property tests: for every element-open position of
// every encoding variant, a checkpoint saved there must re-enter the
// stream via SeekTo() and decode a byte-identical subtree — the contract
// the deferred-subtree re-reads (skip-now-reread-later) are built on.

#include <string>
#include <vector>

#include "index/decoder.h"
#include "index/encoder.h"
#include "testing.h"
#include "xml/sax_parser.h"

namespace {

using namespace csxa;  // NOLINT

using Nav = index::DocumentNavigator;

/// Canonical one-line rendering of a navigator item, for byte-exact
/// subtree comparison.
std::string Render(const Nav::Item& item) {
  switch (item.kind) {
    case Nav::ItemKind::kOpen:
      return "<" + item.tag + "@" + std::to_string(item.depth) + ">";
    case Nav::ItemKind::kValue:
      return "[" + item.value + "@" + std::to_string(item.depth) + "]";
    case Nav::ItemKind::kClose:
      return "</" + item.tag + "@" + std::to_string(item.depth) + ">";
    case Nav::ItemKind::kEnd:
      return "<eof>";
  }
  return "?";
}

const char* const kDocs[] = {
    // The running example's shape: nesting, repeated tags, mixed text.
    "<Folder><Admin><Name>Jane</Name><SSN>123-45</SSN></Admin>"
    "<MedActs>"
    "<Analysis><Type>G3</Type><Cholesterol>260</Cholesterol>"
    "<Comments>bad</Comments></Analysis>"
    "<Analysis><Comments>fine</Comments><Type>G2</Type></Analysis>"
    "</MedActs></Folder>",
    // Deep recursion with the same tag (stresses relative decoding).
    "<a><a><a><b>x</b><a>y</a></a><b><a>z</a></b></a><b>t</b></a>",
    // Wide and flat with empty elements.
    "<r><p/><q>1</q><p/><q>2</q><p><q>3</q></p></r>",
};

TEST(EveryOpenCheckpointRoundTrips) {
  for (const char* xml : kDocs) {
    auto dom = xml::SaxParser::ParseToDom(xml);
    CHECK_OK(dom.status());
    if (!dom.ok()) continue;
    for (auto variant : {index::Variant::kTc, index::Variant::kTcs,
                         index::Variant::kTcsb, index::Variant::kTcsbr}) {
      auto doc = index::Encode(*dom.value(), variant);
      CHECK_OK(doc.status());
      if (!doc.ok()) continue;
      auto nav = Nav::Open(&doc.value());
      CHECK_OK(nav.status());
      if (!nav.ok()) continue;

      // One streaming pass. At each element open, save a checkpoint; every
      // event is appended to the transcript of each still-open element, so
      // afterwards checkpoint #i pairs with the exact event sequence of its
      // children region (close of the element itself excluded).
      struct Pending {
        Nav::Checkpoint cp;
        int depth;
        std::string transcript;
      };
      std::vector<Pending> open_stack;
      std::vector<Pending> finished;
      while (true) {
        auto item = nav.value()->Next();
        CHECK_OK(item.status());
        if (!item.ok() || item.value().kind == Nav::ItemKind::kEnd) break;
        if (item.value().kind == Nav::ItemKind::kClose &&
            !open_stack.empty() &&
            open_stack.back().depth == item.value().depth) {
          finished.push_back(std::move(open_stack.back()));
          open_stack.pop_back();
        }
        for (Pending& p : open_stack) p.transcript += Render(item.value());
        if (item.value().kind == Nav::ItemKind::kOpen) {
          open_stack.push_back(
              {nav.value()->Save(), item.value().depth, std::string()});
        }
      }
      CHECK_EQ(open_stack.size(), size_t{0});
      CHECK(!finished.empty());

      // Re-enter each checkpoint on a fresh navigator and re-decode: the
      // subtree must be byte-identical to what streaming produced.
      for (const Pending& p : finished) {
        auto renav = Nav::Open(&doc.value());
        CHECK_OK(renav.status());
        if (!renav.ok()) continue;
        CHECK_OK(renav.value()->SeekTo(p.cp));
        std::string replay;
        while (true) {
          auto item = renav.value()->Next();
          CHECK_OK(item.status());
          if (!item.ok() || item.value().kind == Nav::ItemKind::kEnd) break;
          if (item.value().kind == Nav::ItemKind::kClose &&
              item.value().depth == p.depth) {
            break;
          }
          replay += Render(item.value());
        }
        CHECK_EQ(replay, p.transcript);
      }

      // A checkpoint can also be re-entered on the *same* navigator after
      // it ran to the end (the splicer's exact usage pattern).
      if (!finished.empty()) {
        const Pending& p = finished.front();
        CHECK_OK(nav.value()->SeekTo(p.cp));
        std::string replay;
        while (true) {
          auto item = nav.value()->Next();
          CHECK_OK(item.status());
          if (!item.ok() || item.value().kind == Nav::ItemKind::kEnd) break;
          if (item.value().kind == Nav::ItemKind::kClose &&
              item.value().depth == p.depth) {
            break;
          }
          replay += Render(item.value());
        }
        CHECK_EQ(replay, p.transcript);
      }
    }
  }
}

TEST(SeekToRejectsOutOfRangeCheckpoints) {
  auto dom = xml::SaxParser::ParseToDom("<a><b>x</b></a>");
  CHECK_OK(dom.status());
  if (!dom.ok()) return;
  auto doc = index::Encode(*dom.value(), index::Variant::kTcsbr);
  CHECK_OK(doc.status());
  if (!doc.ok()) return;
  auto nav = Nav::Open(&doc.value());
  CHECK_OK(nav.status());
  if (!nav.ok()) return;
  Nav::Checkpoint bogus;
  bogus.bit_pos = static_cast<size_t>(-1) / 2;
  bogus.started = true;
  CHECK(!nav.value()->SeekTo(bogus).ok());
}

}  // namespace
