// XPath fragment tests: parser round-trips, comparison coercion, and the
// homomorphism-based containment/equivalence checks (the static analysis
// behind rule-set minimization, Section 3.3).

#include <string>

#include "testing.h"
#include "xpath/ast.h"
#include "xpath/containment.h"
#include "xpath/parser.h"

namespace {

using namespace csxa;         // NOLINT
using namespace csxa::xpath;  // NOLINT

Path MustParse(const std::string& text) {
  auto p = ParsePath(text);
  CHECK_OK(p.status());
  return p.ok() ? p.take() : Path{};
}

bool C(const std::string& outer, const std::string& inner) {
  return Contains(MustParse(outer), MustParse(inner));
}

TEST(ParserRoundTrip) {
  for (const char* text : {
           "/a",
           "/a/b/c",
           "//a",
           "/a//b",
           "/a/*/b",
           "/Folder/MedActs//Analysis",
           "/a[b]",
           "/a[b=1]/c",
           "/a[b!=x]//d",
           "/a[//b>250]",
           "/a[b/c=G3]",
           "/a[b[c]/d]",
       }) {
    Path p = MustParse(text);
    CHECK_EQ(p.ToString(), text);
  }
  // Whitespace around comparison operators is accepted and canonicalized.
  CHECK_EQ(MustParse("/a[ b = 1 ]/c").ToString(), "/a[b=1]/c");
}

TEST(ParserRejectsMalformed) {
  for (const char* text : {"", "a/b", "/", "/a[", "/a]b", "/a[b=]", "/a//"}) {
    CHECK(!ParsePath(text).ok());
  }
}

TEST(PathIntrospection) {
  Path p = MustParse("/a[b[c]/d]//e[f = 1]");
  CHECK_EQ(p.CountPredicates(), size_t{3});
  CHECK(p.UsesDescendantAxis());
  CHECK(!MustParse("/a/b[c]").UsesDescendantAxis());
}

TEST(EvalCompareCoercion) {
  // Numeric comparison when both sides parse as numbers.
  CHECK(EvalCompare(CompareOp::kGt, "260", "250"));
  CHECK(!EvalCompare(CompareOp::kGt, "99", "250"));
  CHECK(EvalCompare(CompareOp::kLe, "9", "10"));  // "9" < "10" numerically
  CHECK(EvalCompare(CompareOp::kEq, "1.5", "1.50"));
  // String comparison otherwise.
  CHECK(EvalCompare(CompareOp::kEq, "G3", "G3"));
  CHECK(EvalCompare(CompareOp::kNe, "G3", "G2"));
  CHECK(EvalCompare(CompareOp::kLt, "abc", "abd"));
}

TEST(ContainmentBasics) {
  CHECK(C("/a", "/a"));
  CHECK(C("//a", "/a"));
  CHECK(C("//b", "/a/b"));
  CHECK(C("/a//b", "/a/b"));
  CHECK(C("/a//b", "/a/c/b"));
  CHECK(C("/a//b", "/a/c/d/b"));
  CHECK(!C("/a/b", "/a//b"));
  CHECK(!C("/a/b", "/a"));
  CHECK(!C("/a", "/b"));
  CHECK(!C("/a/c", "/a/b"));
}

TEST(ContainmentWildcards) {
  CHECK(C("/a/*", "/a/b"));
  CHECK(!C("/a/b", "/a/*"));
  CHECK(C("/a//b", "/a/*/b"));
  CHECK(!C("/a/*/b", "/a//b"));
  CHECK(C("/*", "/a"));
  CHECK(C("//*", "/a/b/c"));
}

TEST(ContainmentPredicates) {
  // Dropping a predicate widens the selection.
  CHECK(C("/a", "/a[b]"));
  CHECK(!C("/a[b]", "/a"));
  CHECK(C("/a[b]", "/a[b]"));
  CHECK(C("/a[b]/c", "/a[b]/c"));
  // A child predicate is implied by the same predicate with more structure.
  CHECK(C("/a[b]", "/a[b[c]]"));
  CHECK(!C("/a[b[c]]", "/a[b]"));
  // Descendant predicate contains child predicate.
  CHECK(C("/a[//b]", "/a[b]"));
  CHECK(!C("/a[b]", "/a[//b]"));
}

TEST(Equivalence) {
  CHECK(Equivalent(MustParse("/a//b"), MustParse("/a//b")));
  CHECK(Equivalent(MustParse("/a[b = 1]"), MustParse("/a[b = 1]")));
  CHECK(!Equivalent(MustParse("/a//b"), MustParse("/a/b")));
  CHECK(!Equivalent(MustParse("/a"), MustParse("/b")));
}

}  // namespace
